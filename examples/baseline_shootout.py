#!/usr/bin/env python3
"""Seven collectors, one job: a 2-site garbage cycle in an 8-site system.

Runs the paper's scheme (back tracing) against the six baseline collectors
of section 7 -- controlled migration, group tracing, trial deletion (cyclic
reference counting), the central service, Hughes timestamps, and global
tracing -- on identical workloads, then again with one *bystander* site
crashed.  Prints the locality/fault-tolerance comparison table (the code
behind benchmark E6).

Run:  python examples/baseline_shootout.py
"""

from repro.harness.comparison import run_with_collector
from repro.harness.report import Table


def main() -> None:
    table = Table(
        "Collecting a 2-site cycle in an 8-site system",
        [
            "collector",
            "rounds",
            "protocol msgs",
            "sites involved",
            "collected",
            "collected w/ bystander crash",
        ],
    )
    for name in ("backtrace", "migration", "group", "trial", "central", "hughes", "global"):
        healthy = run_with_collector(name)
        crashed = run_with_collector(name, crash_bystander=True)
        table.add_row(
            name,
            healthy["rounds"] if healthy["rounds"] is not None else "-",
            healthy["messages"],
            len(healthy["involved"]),
            "yes" if healthy["collected"] else "NO",
            "yes" if crashed["collected"] else "NO",
        )
        print(f"ran {name:10s} healthy={healthy['collected']} crashed={crashed['collected']}")
    table.print()
    print(
        "\nReading guide: back tracing and migration have the locality\n"
        "property (2 sites involved, failure-immune); migration's messages\n"
        "carry whole objects though.  Hughes and global tracing involve all\n"
        "8 sites and a single crashed bystander freezes them system-wide."
    )


if __name__ == "__main__":
    main()
