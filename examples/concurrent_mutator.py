#!/usr/bin/env python3
"""Everything at once: mutators, non-atomic local traces, back traces.

Four sites run automatic jittered local traces (each taking nonzero simulated
time, so messages land mid-trace); three random mutators traverse, copy,
delete, stash and ship references (firing transfer and insert barriers); the
detector chases the cycles the churn strands.  An omniscient oracle audits
safety continuously -- if the collector ever deleted a reachable object the
run would abort.

Run:  python examples/concurrent_mutator.py
"""

from repro.api import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.mutator import RandomWorkload, WorkloadConfig
from repro.workloads import build_random_clustered_graph, build_ring_cycle

SITES = ["s0", "s1", "s2", "s3"]


def main() -> None:
    gc = GcConfig(
        suspicion_threshold=1,          # suspect aggressively: max barrier traffic
        assumed_cycle_length=4,
        local_trace_period=60.0,
        local_trace_period_jitter=20.0,
        local_trace_duration=5.0,       # non-atomic traces (section 6.2)
        backtrace_timeout=200.0,
    )
    sim = Simulation.create(SimulationConfig(seed=1, gc=gc))
    sim.add_sites(SITES, auto_gc=True)
    graph = build_random_clustered_graph(sim, SITES, objects_per_site=25, seed=1)
    rings = [build_ring_cycle(sim, SITES[k:] + SITES[:k]) for k in range(3)]
    oracle = Oracle(sim)

    mutators = [
        RandomWorkload(
            sim, f"m{i}", graph.roots[i % len(graph.roots)],
            config=WorkloadConfig(mean_interval=3.0),
        )
        for i in range(3)
    ]
    for mutator in mutators:
        mutator.start()

    print(f"{'time':>6} {'objects':>8} {'swept':>6} {'traces g/l':>10} "
          f"{'barriers':>9} {'ops':>6}  safety")
    for slice_number in range(1, 21):
        sim.run_for(200.0)
        if slice_number == 5:
            rings[0].make_garbage(sim)
        if slice_number == 10:
            rings[1].make_garbage(sim)
            rings[2].make_garbage(sim)
        oracle.check_safety()
        print(
            f"{sim.now:>6.0f} {sim.total_objects():>8} "
            f"{sim.metrics.count('gc.objects_swept'):>6} "
            f"{sim.metrics.count('backtrace.completed_garbage'):>4}/"
            f"{sim.metrics.count('backtrace.completed_live'):<5} "
            f"{sim.metrics.count('barrier.transfer_applied'):>9} "
            f"{sum(m.ops_executed for m in mutators):>6}  OK"
        )

    print("\nstopping mutators; draining to zero garbage ...")
    for mutator in mutators:
        mutator.stop()
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    for round_number in range(1, 121):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            print(f"all garbage collected {round_number} rounds after quiesce.")
            break
    else:
        raise SystemExit("garbage persisted -- completeness violated!")
    print("safety violations observed: 0")


if __name__ == "__main__":
    main()
