#!/usr/bin/env python3
"""The paper's deployment target: a partitioned object database (Thor-like).

Entity classes shard across sites -- customers, orders, products -- and the
schema's *bidirectional associations* (order -> customer, customer's order
list -> order) form inter-site reference cycles by construction.  Deleting a
customer from its class extent strands its whole cluster as distributed
cyclic garbage.

The run deletes customers one by one and shows, with a protocol event log,
how each deletion plays out: distances climb, one back trace confirms the
cluster, and the next local traces reclaim it -- involving only the customer
and order partitions.

Run:  python examples/object_database.py
"""

from repro.api import Simulation, SimulationConfig
from repro.analysis import Oracle, TraceLog
from repro.workloads import build_object_database

SITES = ["customers", "orders", "products"]


def main() -> None:
    sim = Simulation.create(SimulationConfig(seed=3))
    sim.add_sites(SITES, auto_gc=False)
    log = TraceLog(sim)
    db = build_object_database(
        sim, "customers", "orders", "products",
        n_customers=4, orders_per_customer=3, n_products=6, seed=3,
    )
    oracle = Oracle(sim)
    print(f"schema: {len(db.customers)} customers x {len(db.orders)} orders "
          f"x {len(db.products)} products over {len(SITES)} partitions")
    print(f"objects total: {sim.total_objects()}, garbage: {len(oracle.garbage_set())}\n")

    for _ in range(2):
        sim.run_gc_round()

    for index in range(len(db.customers)):
        cluster = db.customer_cluster_objects(index)
        db.delete_customer(sim, index)
        print(f"DELETE customer #{index}: {len(cluster)} objects stranded "
              f"(cyclic: {len(oracle.distributed_cyclic_garbage())})")
        for round_number in range(1, 30):
            sim.run_gc_round()
            oracle.check_safety()
            if not any(
                sim.site(oid.site).heap.contains(oid) for oid in cluster
            ):
                print(f"  cluster reclaimed after {round_number} rounds")
                break

    print("\nprotocol event summary:", dict(sorted(log.kinds().items())))
    print("\nback-trace lifecycle events:")
    print(log.render(kinds=["backtrace-start", "backtrace-outcome"]))
    assert not oracle.garbage_set()
    print(f"\nfinal state: {sim.total_objects()} objects, zero garbage, "
          "products partition never participated in a back trace.")


if __name__ == "__main__":
    main()
