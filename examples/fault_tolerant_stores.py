#!/usr/bin/env python3
"""Locality under failure: crashes delay only the garbage they can reach.

Six sites.  Two independent garbage cycles exist: one on (a, b), one on
(c, d).  Site e crashes early, site c crashes midway.  Watch:

- the (a, b) cycle is collected on schedule -- neither crash touches it;
- the (c, d) cycle waits (back traces to c time out and conservatively
  answer Live -- never an unsafe collection) and is collected promptly after
  c recovers;
- the bystander crash of e never matters at all.

Contrast with global tracing or Hughes' algorithm, where *either* crash
would freeze collection everywhere (see benchmarks/bench_e6_*).

Run:  python examples/fault_tolerant_stores.py
"""

from repro.api import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.workloads import build_ring_cycle

SITES = ["a", "b", "c", "d", "e", "f"]


def cycle_status(sim, workload) -> str:
    alive = [m for m in workload.cycle if sim.site(m.site).heap.contains(m)]
    return "collected" if not alive else f"{len(alive)} objects remain"


def main() -> None:
    gc = GcConfig(backtrace_timeout=30.0)
    sim = Simulation.create(SimulationConfig(seed=11, gc=gc))
    sim.add_sites(SITES, auto_gc=False)

    cycle_ab = build_ring_cycle(sim, ["a", "b"])
    cycle_cd = build_ring_cycle(sim, ["c", "d"])
    oracle = Oracle(sim)

    for _ in range(2):
        sim.run_gc_round()

    print("cutting both cycles loose; crashing bystander e")
    cycle_ab.make_garbage(sim)
    cycle_cd.make_garbage(sim)
    sim.site("e").crash()

    for round_number in range(1, 16):
        if round_number == 3:
            print(">> site c crashes (a member of the c-d cycle)")
            sim.site("c").crash()
        sim.run_gc_round()
        oracle.check_safety()
        print(
            f"round {round_number}: cycle(a,b) {cycle_status(sim, cycle_ab):>12} | "
            f"cycle(c,d) {cycle_status(sim, cycle_cd)}"
        )
        if round_number == 10:
            # With c down, d's distance estimates freeze below the trigger
            # threshold, so the detector politely waits.  Force a back trace
            # into the void to show what *would* happen: the call to c gets
            # no reply, times out, and conservatively decides Live.
            suspects = sim.site("d").outrefs.suspected_entries()
            if suspects:
                print(">> forcing a back trace from d toward crashed c ...")
                sim.site("d").engine.start_trace(suspects[0].target)
                sim.run_for(5 * gc.backtrace_timeout)
                oracle.check_safety()

    print(">> site c recovers")
    sim.site("c").recover()
    for round_number in range(16, 40):
        sim.run_gc_round()
        oracle.check_safety()
        print(
            f"round {round_number}: cycle(a,b) {cycle_status(sim, cycle_ab):>12} | "
            f"cycle(c,d) {cycle_status(sim, cycle_cd)}"
        )
        remaining = {o for o in oracle.garbage_set() if o.site != "e"}
        if not remaining:
            break

    timeouts = sim.metrics.count("backtrace.frame_timeouts")
    live_verdicts = sim.metrics.count("backtrace.completed_live")
    print(f"\nconservative timeouts taken: {timeouts} "
          f"(each safely decided 'Live'; abortive traces: {live_verdicts})")
    print("site e is still crashed and nobody ever needed it.")


if __name__ == "__main__":
    main()
