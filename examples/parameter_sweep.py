#!/usr/bin/env python3
"""Sweep the paper's two tuning knobs with the experiment runner.

Question: how do the suspicion threshold T and the assumed cycle length L
(together setting the first trigger T2 = T + L) shape detection latency and
wasted work?  The sweep measures, for a 4-site garbage ring under each
(T, L) cell and three seeds:

- rounds from "becomes garbage" to "fully collected";
- abortive (Live) back traces before the confirming one.

Expected shape (paper section 4.3): larger T2 trades latency for precision;
L at least the true cycle length eliminates abortive traces entirely.
Results also land in ``sweep_results.csv`` for external analysis.

Run:  python examples/parameter_sweep.py
"""

from repro.api import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.harness.experiment import ExperimentRunner
from repro.workloads import build_ring_cycle

N_SITES = 4


def measure(parameters, seed):
    gc = GcConfig(
        suspicion_threshold=parameters["T"],
        assumed_cycle_length=parameters["L"],
    )
    sim = Simulation.create(SimulationConfig(seed=seed, gc=gc))
    sites = [f"s{i}" for i in range(N_SITES)]
    sim.add_sites(sites, auto_gc=False)
    workload = build_ring_cycle(sim, sites)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    oracle = Oracle(sim)
    for round_number in range(1, 80):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            return {
                "rounds": round_number,
                "abortive": sim.metrics.count("backtrace.completed_live"),
            }
    raise AssertionError("cycle not collected")


def main() -> None:
    runner = ExperimentRunner(
        name="T/L sweep: 4-site garbage ring (means over 3 seeds)",
        run=measure,
        parameters={"T": [2, 4, 8], "L": [1, 4, 8, 16]},
        repeats=3,
    )
    results = runner.execute()
    results.to_table("rounds", "abortive").print()
    results.write_csv("sweep_results.csv")
    print("\nraw cells written to sweep_results.csv")
    print("reading guide: abortive traces vanish once L >= the ring length "
          f"({N_SITES}); larger T2 = T + L costs extra detection rounds.")


if __name__ == "__main__":
    main()
