#!/usr/bin/env python3
"""The paper's motivating workload: hypertext documents.

"Hypertext documents often form large, complex cycles.  Collection of such
cycles is particularly important in long-lived systems because even small
amounts of uncollected garbage can accumulate over time to cause a
significant storage loss." (section 1)

This example builds a web of cross-linked documents over four sites, then
slowly drops documents from the catalog -- the long-lived-system scenario.
Two systems run side by side on identical webs:

- plain local tracing (inter-site reference listing only), which leaks every
  citation cycle;
- the paper's system with back tracing, which collects them.

The printed series is the accumulated storage loss over time.

Run:  python examples/hypertext_web.py
"""

from repro.api import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.workloads import build_hypertext_web

SITES = ["lib0", "lib1", "lib2", "lib3"]


def build(enable_backtracing: bool):
    gc = GcConfig(enable_backtracing=enable_backtracing)
    sim = Simulation.create(SimulationConfig(seed=7, gc=gc))
    sim.add_sites(SITES, auto_gc=False)
    web = build_hypertext_web(
        sim,
        SITES,
        documents_per_site=3,
        sections_per_document=3,
        citations_per_document=2,
        back_link_probability=0.8,
        catalog_fraction=1.0,
        seed=7,
    )
    return sim, web


def main() -> None:
    sim_leaky, web_leaky = build(enable_backtracing=False)
    sim_fixed, web_fixed = build(enable_backtracing=True)
    oracle_leaky = Oracle(sim_leaky)
    oracle_fixed = Oracle(sim_fixed)

    total_docs = len(web_leaky.documents)
    print(f"{total_docs} documents across {len(SITES)} sites, "
          f"{len(web_leaky.links)} citation links\n")
    print(f"{'epoch':>5} {'dropped':>8} | {'local-only: objects':>20} {'leaked':>7} "
          f"| {'back-tracing: objects':>22} {'leaked':>7}")

    epochs = list(web_leaky.catalog_entries)
    for epoch, index in enumerate(epochs, start=1):
        web_leaky.unlink_from_catalog(sim_leaky, index)
        web_fixed.unlink_from_catalog(sim_fixed, index)
        for _ in range(6):
            sim_leaky.run_gc_round()
            sim_fixed.run_gc_round()
            oracle_fixed.check_safety()
            oracle_leaky.check_safety()
        leak_leaky = len(oracle_leaky.garbage_set())
        leak_fixed = len(oracle_fixed.garbage_set())
        print(
            f"{epoch:>5} {epoch:>8} | {sim_leaky.total_objects():>20} {leak_leaky:>7} "
            f"| {sim_fixed.total_objects():>22} {leak_fixed:>7}"
        )

    # The citation web is dense, so most documents stay transitively
    # reachable until the last catalog entries go; now let both systems keep
    # running (the "long-lived system" part of the story).
    print("\ndraining: both systems keep running their GC rounds ...")
    drained_after = None
    for round_number in range(1, 41):
        sim_leaky.run_gc_round()
        sim_fixed.run_gc_round()
        oracle_fixed.check_safety()
        oracle_leaky.check_safety()
        if drained_after is None and not oracle_fixed.garbage_set():
            drained_after = round_number
            break

    print("\nfinal storage:")
    print(f"  local tracing only : {sim_leaky.total_objects()} objects "
          f"({len(oracle_leaky.garbage_set())} of them uncollectable cyclic garbage)")
    print(f"  with back tracing  : {sim_fixed.total_objects()} objects "
          f"({len(oracle_fixed.garbage_set())} garbage; "
          f"clean {drained_after} rounds after the last unlink)")
    traces = sim_fixed.metrics.count("backtrace.started")
    confirmed = sim_fixed.metrics.count("backtrace.completed_garbage")
    print(f"  back traces: {traces} started, {confirmed} confirmed garbage")
    assert not oracle_fixed.garbage_set()
    assert oracle_leaky.garbage_set()


if __name__ == "__main__":
    main()
