#!/usr/bin/env python3
"""Quickstart: watch a distributed garbage cycle die.

Builds two sites whose heaps hold a mutually-referencing pair of objects
(an inter-site cycle), anchors it to a persistent root, then cuts the anchor
and runs GC rounds.  Plain local tracing can never collect the pair; the
distance heuristic suspects it, a back trace confirms it, and the next local
traces delete it -- involving only the two sites that contain it.

Run:  python examples/quickstart.py
"""

from repro.api import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.workloads import GraphBuilder


def main() -> None:
    sim = Simulation.create(SimulationConfig(seed=42, gc=GcConfig()))
    sim.add_sites(["P", "Q"], auto_gc=False)

    build = GraphBuilder(sim)
    root = build.obj("P", "root", root=True)
    p = build.obj("P", "p")
    q = build.obj("Q", "q")
    build.link(root, p)   # root -> p keeps the cycle alive ... for now
    build.link(p, q)      # p -> q crosses P -> Q
    build.link(q, p)      # q -> p crosses Q -> P: an inter-site cycle

    oracle = Oracle(sim)
    print("objects:", sim.total_objects(), "| garbage:", len(oracle.garbage_set()))

    print("\n-- warm-up: distances converge while everything is live --")
    for _ in range(3):
        sim.run_gc_round()
    for site_id in ("P", "Q"):
        for entry in sim.sites[site_id].inrefs.entries():
            print(f"  {site_id}: inref {entry.target} distance={entry.distance}")

    print("\n-- cut the anchor: the cycle p <-> q is now garbage --")
    sim.site("P").mutator_remove_ref(root, p)
    print("garbage objects:", sorted(str(o) for o in oracle.garbage_set()))

    threshold = sim.config.gc.suspicion_threshold
    trigger = sim.config.gc.initial_back_threshold
    print(f"(suspicion threshold T={threshold}, first back trace at distance {trigger})")

    for round_number in range(1, 40):
        sim.run_gc_round()
        oracle.check_safety()  # the omniscient oracle: no live object lost
        distances = [
            entry.distance
            for site in sim.sites.values()
            for entry in site.inrefs.entries()
        ]
        started = sim.metrics.count("backtrace.started")
        confirmed = sim.metrics.count("backtrace.completed_garbage")
        print(
            f"round {round_number:2d}: cycle distance estimates {distances or '-'} "
            f"| back traces started={started} confirmed-garbage={confirmed}"
        )
        if not oracle.garbage_set():
            print(f"\ncycle collected after {round_number} rounds.")
            break

    calls = sim.metrics.count("messages.BackCall")
    replies = sim.metrics.count("messages.BackReply")
    reports = sim.metrics.count("messages.BackOutcome")
    print(
        f"back-trace cost: {calls} calls + {replies} replies + {reports} report "
        f"= {calls + replies + reports} messages (paper: 2E+N with E=2, N=2)"
    )
    assert sim.site("P").heap.contains(root), "the live root must survive"
    print("root object survived; no live object was ever collected.")


if __name__ == "__main__":
    main()
