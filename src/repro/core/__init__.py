"""The paper's primary contribution: cycle collection by back tracing.

Submodules:

- :mod:`.distance` -- the distance heuristic (section 3) that finds suspects;
- :mod:`.backinfo` -- computing insets/outsets during local traces (section 5);
- :mod:`.backtrace` -- the distributed back-trace protocol (section 4);
- :mod:`.barriers` -- transfer/insert barriers and the clean rule (section 6);
- :mod:`.detector` -- trigger policy (back thresholds) and outcome handling.
"""

from .backinfo import BackInfoResult, compute_outsets_bottom_up, compute_outsets_independent
from .backtrace import BackTraceEngine, TraceOutcome

__all__ = [
    "BackInfoResult",
    "compute_outsets_bottom_up",
    "compute_outsets_independent",
    "BackTraceEngine",
    "TraceOutcome",
]
