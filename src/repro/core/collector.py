"""The pluggable distributed-cycle-collector strategy boundary.

Historically the back tracer was the only distributed cycle collector and
its wiring was baked straight into :class:`repro.site.site.Site`: the site
constructed a :class:`BackTraceEngine` by hand, registered its message
handlers, ran its trigger scan after every local trace, and special-cased
it in the quiet-tick predictor.  Nothing could cross-validate what garbage
it found or when (ROADMAP: "Second collector backend for differential
testing").

This module extracts that boundary.  A :class:`Collector` is the per-site
strategy for the *distributed cycle detection* layer -- everything above
the shared substrate of local traces, ioref tables, distance propagation,
and barriers, which stays in :class:`~repro.gc.localtrace.LocalCollector`
and :class:`~repro.core.barriers.TransferBarrier` unchanged.  The strategy
owns:

- the inter-site GC message handlers it needs (:meth:`Collector.handlers`),
  merged into the site's dispatch table at construction;
- which of its payloads need at-least-once sequence stamping and dedup
  (:meth:`Collector.sequenced_payload_types`);
- the suspicion-trigger scan run after every local trace or skipped tick
  (:meth:`Collector.check_triggers`);
- a side-effect-free quiet prediction consumed by the parallel engine's
  earliest-output-time scan (:meth:`Collector.predict_quiet`);
- barrier hooks fired on reference arrival and outref cleaning, so a
  backend can dirty in-flight decisions the way the clean rule repairs the
  back tracer's (:meth:`Collector.on_reference_arrival` /
  :meth:`Collector.on_outref_cleaned`);
- its metrics/introspection export (:meth:`Collector.stats`).

Backends register in a process-global registry keyed by the
``GcConfig.collector`` name; :class:`~repro.sim.simulation.Simulation`
resolves the name once and hands every new site the per-site factory.
Built-in backends (the back tracer, the termination-detection rival, and
the six baseline schemes) lazy-import so that configuring one never pays
for the others.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import ConfigError
from ..ids import ObjectId
from .backtrace.engine import BackTraceEngine
from .backtrace.messages import (
    BackCall,
    BackCallBatch,
    BackOutcome,
    BackReply,
    BackReplyBatch,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..net.message import Message, Payload
    from ..site.site import Site


class Collector:
    """Per-site strategy for one distributed cycle-collection backend.

    Subclasses are constructed by :class:`~repro.site.site.Site` through the
    factory resolved from ``GcConfig.collector``; at construction time the
    site's heap, ioref tables, local collector, scheduler, and ``send`` are
    ready, while the transfer barrier is built *after* the strategy (it
    needs the strategy's optional back-trace engine).  Every method has a
    safe no-op default so minimal backends only override what they use.
    """

    #: Registry name; also used in error messages and stats exports.
    name: ClassVar[str] = "null"

    def __init__(self, site: "Site"):
        self.site = site

    # -- wiring ------------------------------------------------------------------

    def handlers(self) -> Mapping[type, Callable[["Message"], None]]:
        """Payload type -> handler, merged into the site dispatch table."""
        return {}

    def sequenced_payload_types(self) -> Tuple[type, ...]:
        """Payload types needing per-(sender, receiver) seq stamping/dedup.

        Returned types are unioned with the site's base sequenced-mutation
        set: their deliveries are stamped by :meth:`Site.send` and replayed
        duplicates suppressed by :meth:`Site.receive`.  Backends whose
        redeliveries are not idempotent (e.g. credit-carrying termination
        messages -- a duplicated ack would double-recover credit) declare
        them here instead of re-implementing dedup.
        """
        return ()

    # -- triggers / quiescence -----------------------------------------------------

    def check_triggers(self) -> List[ObjectId]:
        """Scan for suspects past threshold; start collection activity.

        Called by the site after every local trace commit *and* after every
        skipped incremental tick, mirroring the paper's section 4.3 trigger
        placement.  Returns the roots for which new activity started (used
        by tests and the tuner).
        """
        return []

    def predict_quiet(self) -> bool:
        """True only if upcoming gc ticks provably start no activity.

        Must be free of side effects (no metrics, no cache touches): the
        parallel engine's earliest-output-time scan calls it speculatively.
        Returning False merely costs a window; returning True wrongly would
        let the planner jump over real traffic, so default to False in any
        backend with in-flight state.
        """
        return True

    # -- barrier hooks ------------------------------------------------------------

    def on_reference_arrival(self, target: ObjectId) -> None:
        """A reference to local object ``target`` arrived (or was handed out).

        Fired at every transfer-barrier call site -- insert requests, remote
        copies, mutator hops, and the owner pinning its own object for an
        outbound send -- *before* the barrier runs.  Backends with in-flight
        decisions about ``target`` must treat this as a mutation.
        """

    def on_outref_cleaned(self, target: ObjectId) -> None:
        """The clean rule just cleaned our suspected outref on ``target``."""

    # -- lifecycle ----------------------------------------------------------------

    def on_recover(self) -> None:
        """Site recovered from a crash: drop in-flight collection state."""

    # -- introspection ------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Backend counters for dashboards/tests (merged into exports)."""
        return {}


class NullCollector(Collector):
    """No distributed cycle collection (plain local tracing).

    The counterfactual backend of Figure 1 -- acyclic distributed garbage
    still dies through reference listing, cross-site cycles float.  Also the
    per-site strategy under the sim-driven baseline collectors, which do
    their own message registration against the running simulation.
    """

    name = "null"


class BackTracingCollector(Collector):
    """The paper's back tracer behind the strategy boundary.

    This is a pure relocation of the wiring that used to live inline in
    ``Site``: the engine construction, the back-trace message handlers, the
    section 4.3 trigger scan, and the backtrace leg of the quiet-tick
    prediction moved here verbatim so the extraction is byte-identical
    (proven by the twin tests in ``tests/integration``).
    """

    name = "backtrace"

    def __init__(self, site: "Site"):
        super().__init__(site)
        self.engine = BackTraceEngine(
            site.site_id,
            site.inrefs,
            site.outrefs,
            site.config,
            site.scheduler,
            send=site.send,
            metrics=site.metrics,
            on_outcome=site._trace_outcome,
            on_outcome_applied=site._trace_outcome_applied,
        )

    def handlers(self) -> Mapping[type, Callable[["Message"], None]]:
        return {
            BackCall: self._on_back_call,
            BackCallBatch: self._on_back_call_batch,
            BackReply: self._on_back_reply,
            BackReplyBatch: self._on_back_reply_batch,
            BackOutcome: self._on_back_outcome,
        }

    def _on_back_call(self, message: "Message") -> None:
        self.engine.handle_back_call(message.src, message.payload)

    def _on_back_call_batch(self, message: "Message") -> None:
        self.engine.handle_back_call_batch(message.src, message.payload)

    def _on_back_reply(self, message: "Message") -> None:
        self.engine.handle_back_reply(message.src, message.payload)

    def _on_back_reply_batch(self, message: "Message") -> None:
        self.engine.handle_back_reply_batch(message.src, message.payload)

    def _on_back_outcome(self, message: "Message") -> None:
        self.engine.handle_back_outcome(message.src, message.payload)

    def check_triggers(self) -> List[ObjectId]:
        """Start a back trace from each suspected outref past its threshold."""
        site = self.site
        started: List[ObjectId] = []
        if not site.config.enable_backtracing:
            return started
        # suspected_entries() is already deterministically ordered by target.
        for entry in site.outrefs.suspected_entries():
            if entry.distance > entry.back_threshold:
                # A still-valid cached Live verdict answers the trigger
                # without consuming this check's trace budget: re-tracing
                # could only re-derive the cached verdict.
                if self.engine.cached_live(entry.target):
                    continue
                if self.engine.start_trace(entry.target) is not None:
                    started.append(entry.target)
                    if len(started) >= site.config.max_traces_per_trigger_check:
                        break
        return started

    def predict_quiet(self) -> bool:
        site = self.site
        if site.config.enable_backtracing:
            # The verdict cache is deliberately ignored: consulting it counts
            # metrics, and this prediction must be free of side effects.
            for entry in site.outrefs.suspected_entries():
                if entry.distance > entry.back_threshold:
                    return False
        return True

    def stats(self) -> Dict[str, int]:
        return {"active_traces": self.engine.active_trace_count}


# -- registry ---------------------------------------------------------------------


@dataclass(frozen=True)
class CollectorSpec:
    """One registered backend.

    ``site_factory`` builds the per-site strategy (called once per site by
    the simulation).  ``driver_factory``, when present, builds a sim-level
    round driver (the baseline collectors' model: handlers registered
    against a running simulation plus an explicit ``run_round``), constructed
    lazily by :attr:`Simulation.collector_driver` once sites exist.
    """

    name: str
    site_factory: Callable[["Site"], Collector]
    driver_factory: Optional[Callable[..., object]] = None


_REGISTRY: Dict[str, CollectorSpec] = {}

#: Backends resolved on first use so configuring one never imports the rest.
#: Importing the named module must register the spec (module side effect).
_LAZY_BUILTINS: Dict[str, str] = {
    "termination": "repro.core.termination",
    "baseline.global": "repro.baselines.globaltrace",
    "baseline.hughes": "repro.baselines.hughes",
    "baseline.migration": "repro.baselines.migration",
    "baseline.group": "repro.baselines.grouptrace",
    "baseline.central": "repro.baselines.centralservice",
    "baseline.trial": "repro.baselines.trialdeletion",
}


def register_collector(spec: CollectorSpec) -> None:
    """Add (or replace) a backend in the registry."""
    if not spec.name:
        raise ConfigError("collector spec needs a non-empty name")
    _REGISTRY[spec.name] = spec


def resolve_collector(name: str) -> CollectorSpec:
    """Look up a backend by its ``GcConfig.collector`` name.

    Unknown names raise :class:`ConfigError` listing what is available --
    resolution happens at simulation construction, the earliest point where
    the registry (including lazily imported backends) is meaningful.
    """
    spec = _REGISTRY.get(name)
    if spec is None and name in _LAZY_BUILTINS:
        importlib.import_module(_LAZY_BUILTINS[name])
        spec = _REGISTRY.get(name)
    if spec is None:
        known = sorted(set(_REGISTRY) | set(_LAZY_BUILTINS))
        raise ConfigError(
            f"unknown collector {name!r}; available: {', '.join(known)}"
        )
    return spec


def available_collectors() -> Tuple[str, ...]:
    """Sorted names of every registered or built-in backend."""
    return tuple(sorted(set(_REGISTRY) | set(_LAZY_BUILTINS)))


register_collector(CollectorSpec(name="null", site_factory=NullCollector))
register_collector(
    CollectorSpec(name="backtrace", site_factory=BackTracingCollector)
)
