"""Decentralized trial-deletion collector with termination detection.

The second first-class cycle-collection backend (``GcConfig.collector =
"termination"``), built as a differential-testing rival for the paper's
back tracer (ROADMAP: "Second collector backend for differential
testing").  It follows the Plyukhin-Agha school of actor GC: no global
coordinator, reference listing as the ground truth, and exact
credit-recovery termination detection (Mattern's scheme, reused from
:mod:`repro.baselines.termination`) to decide when a distributed phase has
drained.  Unlike the sim-driven :class:`TrialDeletionCollector` baseline --
which keeps one global trial in collector-object state -- every piece of
state here lives at a site and every transition is a message, so the
backend runs under the parallel engine, the packed wire format, and the
fault-injection plans like any other protocol in the tree.

One *trial*, initiated by the owner of a suspected inref (distance past
the back threshold, the same section 4.3 trigger timing the back tracer
uses), runs three phases:

1. **mark** -- walk the forward closure of the suspect.  Each member site
   records its local members, which *remote sites* sent it mark arrivals
   per member, and the remote targets its members reference; cross-site
   edges carry exact credit shares and every site acks its kept credit to
   the initiator.  Credit fully recovered == the closure is delineated.
2. **rescue** -- each member site seeds from external support: local
   persistent/variable roots, local non-member holders, inref sources
   outside the recorded mark sources, plus in-flight insurance (its own
   pinned or variable-held outrefs to remote targets of the trial --
   closing the reference-listing multiplicity gap where one site holds
   both member and non-member references to the same target).  Seeds'
   closures are rescued across sites with credit-tracked
   :class:`TrialRescue` fan-out restricted to member sites.
3. **collect** -- the initiator broadcasts; each member flags its
   never-rescued members' inrefs ``garbage`` so death flows through the
   *shared* local-trace sweep path, exactly as a Garbage back-trace
   verdict does.  No direct sweeping: both backends reclaim through one
   code path, which is what makes the differential oracle sharp.

Safety under concurrency and faults:

- every member snapshots ``(heap.mutation_epoch, inrefs.structure_epoch)``
  when it joins and re-validates at every later trial message; any drift
  (or a barrier arrival touching a member -- the site fires
  :meth:`Collector.on_reference_arrival` at every transfer-barrier call
  site) marks the trial *dirty*, which aborts it at the initiator or
  suppresses the member's collect.  Distance-only churn does not dirty --
  distances of a garbage cycle grow every round by design;
- all six payloads ride the site's sequenced-mutation dedup (credit is not
  idempotent: a replayed ack would double-recover it), declared via
  :meth:`Collector.sequenced_payload_types`;
- a lost message starves the credit pool; the initiator's trial timer
  (``GcConfig.effective_trial_timeout``) then aborts the trial --
  collecting nothing is always safe, and the still-suspected inref
  re-triggers after an exponential back-off.  Crashes wipe site state via
  :meth:`Collector.on_recover`; a member that lost its state answers any
  rescue-phase message with ``dirty`` and its full credit, aborting cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..baselines.termination import FULL_CREDIT, CreditPool, split_credit
from ..ids import ObjectId, SiteId
from ..metrics import names
from ..net.message import Message, Payload
from .collector import Collector, CollectorSpec, register_collector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..site.site import Site

#: A trial is globally identified by (initiator site, per-site serial).
TrialKey = Tuple[SiteId, int]


# -- payloads ----------------------------------------------------------------------


@dataclass(frozen=True)
class TrialMark(Payload):
    """Mark phase: walk these local objects (reached via internal edges)."""

    trial: TrialKey
    targets: Tuple[ObjectId, ...]
    credit: Fraction = Fraction(0)
    seq: int = -1

    def size_units(self) -> int:
        return max(1, len(self.targets))


@dataclass(frozen=True)
class TrialRescueStart(Payload):
    """Rescue phase opener: compute external seeds and rescue their closures."""

    trial: TrialKey
    member_sites: Tuple[SiteId, ...]
    credit: Fraction = Fraction(0)
    seq: int = -1


@dataclass(frozen=True)
class TrialRescue(Payload):
    """Rescue these members (reachable from an external survivor)."""

    trial: TrialKey
    targets: Tuple[ObjectId, ...]
    member_sites: Tuple[SiteId, ...]
    credit: Fraction = Fraction(0)
    seq: int = -1

    def size_units(self) -> int:
        return max(1, len(self.targets))


@dataclass(frozen=True)
class TrialAck(Payload):
    """Credit return to the initiator, with join/dirty observations."""

    trial: TrialKey
    phase: str
    credit: Fraction
    joined: bool = False
    dirty: bool = False
    seq: int = -1


@dataclass(frozen=True)
class TrialCollect(Payload):
    """Flag never-rescued members garbage (the shared sweep path kills them)."""

    trial: TrialKey
    seq: int = -1


@dataclass(frozen=True)
class TrialAbort(Payload):
    """Drop all member state for this trial; nothing is collected."""

    trial: TrialKey
    seq: int = -1


TRIAL_PAYLOADS = (
    TrialMark,
    TrialRescueStart,
    TrialRescue,
    TrialAck,
    TrialCollect,
    TrialAbort,
)


# -- per-site state ----------------------------------------------------------------


@dataclass
class _InitiatorTrial:
    suspect: ObjectId
    phase: str = "mark"
    pool: CreditPool = field(default_factory=CreditPool)
    member_sites: Set[SiteId] = field(default_factory=set)
    dirty: bool = False
    timer: Optional[object] = None


@dataclass
class _MemberTrial:
    heap_epoch: int
    inref_epoch: int
    started_at: float
    members: Set[ObjectId] = field(default_factory=set)
    #: member -> remote sites whose mark arrivals named it (internal sources).
    mark_sources: Dict[ObjectId, Set[SiteId]] = field(default_factory=dict)
    #: remote objects our members reference (this site's mark fan-out set).
    remote_targets: Set[ObjectId] = field(default_factory=set)
    rescued: Set[ObjectId] = field(default_factory=set)
    member_sites: Set[SiteId] = field(default_factory=set)
    dirty: bool = False


class TerminationCollector(Collector):
    """Per-site strategy: decentralized trial deletion, credit-terminated."""

    name = "termination"

    def __init__(self, site: "Site"):
        super().__init__(site)
        self._serial = 0
        self._initiated: Dict[TrialKey, _InitiatorTrial] = {}
        self._active: Optional[TrialKey] = None
        self._member: Dict[TrialKey, _MemberTrial] = {}
        #: suspect -> (earliest re-initiation time, current back-off delay).
        self._not_before: Dict[ObjectId, Tuple[float, float]] = {}
        self.trials_started = 0
        self.trials_garbage = 0
        self.trials_live = 0
        self.trials_aborted = 0

    # -- strategy wiring ----------------------------------------------------------

    def handlers(self) -> Mapping[type, Callable[[Message], None]]:
        return {
            TrialMark: self._on_mark,
            TrialRescueStart: self._on_rescue_start,
            TrialRescue: self._on_rescue,
            TrialAck: self._on_ack,
            TrialCollect: self._on_collect,
            TrialAbort: self._on_abort,
        }

    def sequenced_payload_types(self) -> Tuple[type, ...]:
        return TRIAL_PAYLOADS

    def on_reference_arrival(self, target: ObjectId) -> None:
        for state in self._member.values():
            if target in state.members:
                state.dirty = True

    def on_outref_cleaned(self, target: ObjectId) -> None:
        # The clean rule firing on our suspected outref means the reference
        # moved; any trial whose mark fan-out included it may be deciding on
        # stale support.
        for state in self._member.values():
            if target in state.remote_targets:
                state.dirty = True

    def on_recover(self) -> None:
        for state in self._initiated.values():
            if state.timer is not None:
                state.timer.cancel()
        self._initiated.clear()
        self._member.clear()
        self._active = None
        self._not_before.clear()

    def predict_quiet(self) -> bool:
        site = self.site
        if self._initiated or self._member:
            return False
        if not site.config.enable_backtracing:
            return True
        # Back-off deliberately ignored: a backed-off suspect still triggers
        # on a *future* tick, so the tick chain is not provably quiet.
        for entry in site.inrefs.entries():
            if (
                not entry.garbage
                and entry.distance > entry.back_threshold
                and site.heap.contains(entry.target)
            ):
                return False
        return True

    def stats(self) -> Dict[str, int]:
        return {
            "trials_started": self.trials_started,
            "trials_garbage": self.trials_garbage,
            "trials_live": self.trials_live,
            "trials_aborted": self.trials_aborted,
            "active_member_trials": len(self._member),
        }

    # -- initiation (section 4.3 trigger timing, owner side) -----------------------

    def check_triggers(self) -> List[ObjectId]:
        site = self.site
        if not site.config.enable_backtracing:
            return []
        self._expire_member_state()
        if self._active is not None:
            return []
        now = site.scheduler.now
        suspects = sorted(
            entry.target
            for entry in site.inrefs.entries()
            if not entry.garbage
            and entry.distance > entry.back_threshold
            and site.heap.contains(entry.target)
        )
        for suspect in suspects:
            held = self._not_before.get(suspect)
            if held is not None and now < held[0]:
                continue
            self._start_trial(suspect)
            return [suspect]
        return []

    def _start_trial(self, suspect: ObjectId) -> None:
        site = self.site
        self._serial += 1
        trial: TrialKey = (site.site_id, self._serial)
        state = _InitiatorTrial(suspect=suspect)
        state.pool.reset()
        state.timer = site.scheduler.schedule(
            site.config.effective_trial_timeout,
            lambda: self._on_timeout(trial),
            label=f"trial-timeout:{site.site_id}",
            site=site.site_id,
        )
        self._initiated[trial] = state
        self._active = trial
        self.trials_started += 1
        site.metrics.incr(names.TERMINATION_TRIALS_STARTED)
        (seed_credit,) = state.pool.hand_out(1)
        site.send(
            site.site_id,
            TrialMark(trial=trial, targets=(suspect,), credit=seed_credit),
        )

    # -- mark phase ----------------------------------------------------------------

    def _member_state(self, trial: TrialKey) -> _MemberTrial:
        state = self._member.get(trial)
        if state is None:
            site = self.site
            state = _MemberTrial(
                heap_epoch=site.heap.mutation_epoch,
                inref_epoch=site.inrefs.structure_epoch,
                started_at=site.scheduler.now,
            )
            self._member[trial] = state
        return state

    def _validate(self, state: _MemberTrial) -> None:
        site = self.site
        if (
            site.heap.mutation_epoch != state.heap_epoch
            or site.inrefs.structure_epoch != state.inref_epoch
        ):
            state.dirty = True

    def _expire_member_state(self) -> None:
        """Drop member state of trials long past any live timeout.

        An abort or collect that was lost to the network would leak the
        state forever; expiry is lazy (no timers -- quiescence detection
        must not see phantom events).  Dropping is safe: a later
        rescue-phase message finds no state and answers dirty.
        """
        horizon = 4.0 * self.site.config.effective_trial_timeout
        now = self.site.scheduler.now
        stale = [
            trial
            for trial, state in self._member.items()
            if now - state.started_at > horizon and trial not in self._initiated
        ]
        for trial in stale:
            del self._member[trial]

    def _on_mark(self, message: Message) -> None:
        payload: TrialMark = message.payload
        site = self.site
        created = payload.trial not in self._member
        state = self._member_state(payload.trial)
        self._validate(state)
        stack: List[ObjectId] = []
        for target in payload.targets:
            if not site.heap.contains(target):
                continue
            if message.src != site.site_id:
                state.mark_sources.setdefault(target, set()).add(message.src)
            if target not in state.members:
                state.members.add(target)
                stack.append(target)
        remote: Dict[SiteId, Set[ObjectId]] = {}
        while stack:
            oid = stack.pop()
            for ref in site.heap.get(oid).iter_refs():
                if ref.site == site.site_id:
                    if site.heap.contains(ref) and ref not in state.members:
                        state.members.add(ref)
                        stack.append(ref)
                else:
                    state.remote_targets.add(ref)
                    remote.setdefault(ref.site, set()).add(ref)
        if created and not state.members:
            # Every arrival dangled (already swept here): nothing joined.
            del self._member[payload.trial]
        targets = sorted(remote)
        shares, kept = split_credit(payload.credit, len(targets))
        for target_site, share in zip(targets, shares):
            site.send(
                target_site,
                TrialMark(
                    trial=payload.trial,
                    targets=tuple(sorted(remote[target_site])),
                    credit=share,
                ),
            )
        site.send(
            payload.trial[0],
            TrialAck(
                trial=payload.trial,
                phase="mark",
                credit=kept,
                joined=payload.trial in self._member,
                dirty=payload.trial in self._member and state.dirty,
            ),
        )

    # -- phase transitions (initiator side) -----------------------------------------

    def _on_ack(self, message: Message) -> None:
        payload: TrialAck = message.payload
        state = self._initiated.get(payload.trial)
        if state is None or payload.phase != state.phase:
            return  # late credit from an aborted or already-advanced trial
        state.dirty = state.dirty or payload.dirty
        if payload.joined:
            state.member_sites.add(message.src)
        state.pool.give_back(payload.credit)
        if not state.pool.complete:
            return
        if state.phase == "mark":
            if state.dirty or not state.member_sites:
                self._abort_trial(payload.trial, state)
                return
            state.phase = "rescue"
            state.pool.reset()
            members = sorted(state.member_sites)
            shares = state.pool.hand_out(len(members))
            for member_site, share in zip(members, shares):
                self.site.send(
                    member_site,
                    TrialRescueStart(
                        trial=payload.trial,
                        member_sites=tuple(members),
                        credit=share,
                    ),
                )
        elif state.phase == "rescue":
            if state.dirty:
                self._abort_trial(payload.trial, state)
                return
            self._finish_trial(payload.trial, state)

    def _finish_trial(self, trial: TrialKey, state: _InitiatorTrial) -> None:
        site = self.site
        if state.timer is not None:
            state.timer.cancel()
        for member_site in sorted(state.member_sites):
            site.send(member_site, TrialCollect(trial=trial))
        # Our own member state holds the suspect's fate: rescue acks only
        # complete once every rescue walk ran, so the rescued set is final.
        own = self._member.get(trial)
        if own is not None and state.suspect in own.members and (
            state.suspect not in own.rescued
        ):
            self.trials_garbage += 1
            site.metrics.incr(names.TERMINATION_TRIALS_GARBAGE)
            self._not_before.pop(state.suspect, None)
        else:
            self.trials_live += 1
            site.metrics.incr(names.TERMINATION_TRIALS_LIVE)
            self._push_backoff(state.suspect)
        del self._initiated[trial]
        self._active = None

    def _abort_trial(self, trial: TrialKey, state: _InitiatorTrial) -> None:
        site = self.site
        if state.timer is not None:
            state.timer.cancel()
        self.trials_aborted += 1
        site.metrics.incr(names.TERMINATION_TRIALS_ABORTED)
        for member_site in sorted(state.member_sites):
            if member_site != site.site_id:
                site.send(member_site, TrialAbort(trial=trial))
        self._member.pop(trial, None)
        self._push_backoff(state.suspect)
        del self._initiated[trial]
        self._active = None

    def _on_timeout(self, trial: TrialKey) -> None:
        state = self._initiated.get(trial)
        if state is None:
            return
        state.timer = None
        self.site.metrics.incr(names.TERMINATION_TRIALS_TIMEOUT)
        self._abort_trial(trial, state)

    def _push_backoff(self, suspect: ObjectId) -> None:
        base = self.site.config.effective_trial_backoff
        held = self._not_before.get(suspect)
        delay = base if held is None else min(held[1] * 2.0, 8.0 * base)
        self._not_before[suspect] = (self.site.scheduler.now + delay, delay)

    # -- rescue phase ---------------------------------------------------------------

    def _external_support(
        self, state: _MemberTrial
    ) -> Tuple[List[ObjectId], Dict[SiteId, Set[ObjectId]]]:
        """External seeds: local members to rescue, remote members to notify.

        One heap pass finds every trial-relevant target held by a local
        *non-member* object.  A local member seeds if it is a root, has such
        a holder, or lists an inref source site that never sent us a mark
        for it.  A *remote* target seeds (at its owner) if a non-member
        holds it here, a mutator variable holds it here, or our outref for
        it is pinned (a reference to it is in flight from here) -- this is
        the sender-side check that covers support invisible to the owner
        because reference listing records sites, not reference counts.
        """
        site = self.site
        heap = site.heap
        externally_held: Set[ObjectId] = set()
        for obj in heap.objects():
            if obj.oid in state.members:
                continue
            for ref in obj.iter_refs():
                if ref in state.members or ref in state.remote_targets:
                    externally_held.add(ref)
        persistent = heap.persistent_roots
        variables = heap.variable_roots
        seeds: List[ObjectId] = []
        for oid in sorted(state.members):
            entry = site.inrefs.get(oid)
            external_source = entry is not None and any(
                source not in state.mark_sources.get(oid, ())
                for source in entry.sources
            )
            if (
                oid in persistent
                or oid in variables
                or oid in externally_held
                or external_source
            ):
                seeds.append(oid)
        remote_seeds: Dict[SiteId, Set[ObjectId]] = {}
        for target in sorted(state.remote_targets):
            out_entry = site.outrefs.get(target)
            if (
                target in externally_held
                or target in site.variable_outrefs
                or (out_entry is not None and out_entry.pin_count > 0)
            ):
                remote_seeds.setdefault(target.site, set()).add(target)
        return seeds, remote_seeds

    def _rescue_walk(
        self,
        trial: TrialKey,
        state: _MemberTrial,
        seeds: List[ObjectId],
        extra_remote: Dict[SiteId, Set[ObjectId]],
        credit: Fraction,
    ) -> Fraction:
        site = self.site
        remote: Dict[SiteId, Set[ObjectId]] = {
            target_site: set(targets)
            for target_site, targets in extra_remote.items()
        }
        stack = [
            oid for oid in seeds if oid in state.members and oid not in state.rescued
        ]
        while stack:
            oid = stack.pop()
            if oid in state.rescued:
                continue
            state.rescued.add(oid)
            for ref in site.heap.get(oid).iter_refs():
                if ref.site == site.site_id:
                    if ref in state.members and ref not in state.rescued:
                        stack.append(ref)
                else:
                    remote.setdefault(ref.site, set()).add(ref)
        member_sites = sorted(state.member_sites)
        targets = [
            target_site
            for target_site in sorted(remote)
            if target_site in state.member_sites and target_site != site.site_id
        ]
        shares, kept = split_credit(credit, len(targets))
        for target_site, share in zip(targets, shares):
            site.send(
                target_site,
                TrialRescue(
                    trial=trial,
                    targets=tuple(sorted(remote[target_site])),
                    member_sites=tuple(member_sites),
                    credit=share,
                ),
            )
        return kept

    def _on_rescue_start(self, message: Message) -> None:
        payload: TrialRescueStart = message.payload
        site = self.site
        state = self._member.get(payload.trial)
        if state is None:
            # Our state expired or was wiped by a crash: abort the trial.
            site.send(
                message.src,
                TrialAck(
                    trial=payload.trial,
                    phase="rescue",
                    credit=payload.credit,
                    dirty=True,
                ),
            )
            return
        self._validate(state)
        state.member_sites.update(payload.member_sites)
        seeds, remote_seeds = self._external_support(state)
        kept = self._rescue_walk(
            payload.trial, state, seeds, remote_seeds, payload.credit
        )
        site.send(
            payload.trial[0],
            TrialAck(
                trial=payload.trial,
                phase="rescue",
                credit=kept,
                joined=True,
                dirty=state.dirty,
            ),
        )

    def _on_rescue(self, message: Message) -> None:
        payload: TrialRescue = message.payload
        site = self.site
        state = self._member.get(payload.trial)
        if state is None:
            site.send(
                payload.trial[0],
                TrialAck(
                    trial=payload.trial,
                    phase="rescue",
                    credit=payload.credit,
                    dirty=True,
                ),
            )
            return
        self._validate(state)
        state.member_sites.update(payload.member_sites)
        fresh = [
            target
            for target in payload.targets
            if target in state.members and target not in state.rescued
        ]
        kept = self._rescue_walk(payload.trial, state, fresh, {}, payload.credit)
        site.send(
            payload.trial[0],
            TrialAck(
                trial=payload.trial,
                phase="rescue",
                credit=kept,
                joined=True,
                dirty=state.dirty,
            ),
        )

    # -- collect / abort (member side) ----------------------------------------------

    def _on_collect(self, message: Message) -> None:
        payload: TrialCollect = message.payload
        site = self.site
        state = self._member.pop(payload.trial, None)
        if state is None:
            return
        self._validate(state)
        if state.dirty:
            # Our support view drifted after the last ack the initiator saw;
            # collecting on it would be unsafe.  Skipping is always safe.
            site.metrics.incr(names.TERMINATION_COLLECTS_SUPPRESSED)
            return
        flagged = 0
        for oid in sorted(state.members - state.rescued):
            entry = site.inrefs.get(oid)
            if entry is not None and not entry.garbage:
                entry.garbage = True
                flagged += 1
        if flagged:
            site.metrics.incr(names.TERMINATION_INREFS_FLAGGED, flagged)

    def _on_abort(self, message: Message) -> None:
        self._member.pop(message.payload.trial, None)


register_collector(
    CollectorSpec(name="termination", site_factory=TerminationCollector)
)
