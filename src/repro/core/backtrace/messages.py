"""Back-trace protocol messages.

Three logical kinds, matching the paper's complexity accounting (section
4.6): one :class:`BackCall` and one :class:`BackReply` per inter-site
reference traversed, plus one :class:`BackOutcome` per participant in the
report phase -- 2E + N messages in total for a cycle with E traversed
inter-site references and N participating sites.

With ``GcConfig.backtrace_batch_calls`` the calls (and immediate replies) a
single engine activation fans out to one destination ship as a
:class:`BackCallBatch` / :class:`BackReplyBatch`: one physical message whose
``size_units`` still charges every logical call, so bandwidth accounting and
the 2E bound on *logical* steps are unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ...ids import FrameId, ObjectId, SiteId, TraceId
from ...net.message import Payload


class TraceOutcome(enum.Enum):
    """Verdict of a back step or of a whole back trace."""

    LIVE = "live"
    GARBAGE = "garbage"

    @property
    def is_live(self) -> bool:
        return self is TraceOutcome.LIVE

    @property
    def is_garbage(self) -> bool:
        return self is TraceOutcome.GARBAGE


@dataclass(frozen=True, slots=True)
class BackCall(Payload):
    """Remote step: ask a source site to back-step its outref for ``target``.

    Sent by the site holding inref ``target`` to one of the sites in the
    inref's source list.  ``reply_to`` names the activation frame awaiting
    the response.
    """

    trace_id: TraceId
    target: ObjectId
    reply_to: FrameId
    #: Per-engine call sequence number.  Duplicate-delivery suppression keys
    #: on ``(trace_id, reply_to, seq)``: a replayed call must not re-run the
    #: local step (the visited mark added by the first delivery would make
    #: the replay answer a spurious Garbage).  -1 = unstamped (legacy).
    seq: int = -1


@dataclass(frozen=True, slots=True)
class BackReply(Payload):
    """Response to a :class:`BackCall`.

    Carries the verdict of the subtree explored on behalf of the call and the
    set of sites that participated in it (each participant appends its id, so
    the initiator learns whom to report the outcome to).
    """

    trace_id: TraceId
    reply_to: FrameId
    verdict: TraceOutcome
    participants: FrozenSet[SiteId]
    # Earliest expiry among cached Live verdicts consumed in the subtree
    # (None if the verdict rests entirely on fresh evidence).  A Live that
    # leaned on a cache must not be re-cached past that cache's lifetime.
    cache_expires_at: Optional[float] = None
    # True when the subtree's verdict leaned on a conservative timeout
    # (section 4.6's assumed Live).  Propagated to the initiator so it can
    # back off before re-initiating from the same root.
    timed_out: bool = False


@dataclass(frozen=True, slots=True)
class BackOutcome(Payload):
    """Report phase: the initiator tells each participant the final verdict."""

    trace_id: TraceId
    verdict: TraceOutcome
    # See BackReply.cache_expires_at: bounds how long participants may cache
    # a Live verdict that was partly derived from earlier cached verdicts.
    cache_expires_at: Optional[float] = None


@dataclass(frozen=True, slots=True)
class BackCallBatch(Payload):
    """Several :class:`BackCall`\\ s to one destination in one physical message.

    Calls may belong to different traces (one engine activation can touch
    several -- e.g. coalesced waiters re-dispatched by a finishing trace);
    the receiver simply handles each call in order.
    """

    calls: Tuple[BackCall, ...]

    def size_units(self) -> int:
        return max(1, len(self.calls))


@dataclass(frozen=True, slots=True)
class BackReplyBatch(Payload):
    """Several :class:`BackReply`\\ s to one destination in one physical message."""

    replies: Tuple[BackReply, ...]

    def size_units(self) -> int:
        return max(1, len(self.replies))
