"""Back-trace protocol messages.

Exactly three kinds, matching the paper's complexity accounting (section 4.6):
one :class:`BackCall` and one :class:`BackReply` per inter-site reference
traversed, plus one :class:`BackOutcome` per participant in the report phase
-- 2E + N messages in total for a cycle with E traversed inter-site
references and N participating sites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet

from ...ids import FrameId, ObjectId, SiteId, TraceId
from ...net.message import Payload


class TraceOutcome(enum.Enum):
    """Verdict of a back step or of a whole back trace."""

    LIVE = "live"
    GARBAGE = "garbage"

    @property
    def is_live(self) -> bool:
        return self is TraceOutcome.LIVE

    @property
    def is_garbage(self) -> bool:
        return self is TraceOutcome.GARBAGE


@dataclass(frozen=True)
class BackCall(Payload):
    """Remote step: ask a source site to back-step its outref for ``target``.

    Sent by the site holding inref ``target`` to one of the sites in the
    inref's source list.  ``reply_to`` names the activation frame awaiting
    the response.
    """

    trace_id: TraceId
    target: ObjectId
    reply_to: FrameId


@dataclass(frozen=True)
class BackReply(Payload):
    """Response to a :class:`BackCall`.

    Carries the verdict of the subtree explored on behalf of the call and the
    set of sites that participated in it (each participant appends its id, so
    the initiator learns whom to report the outcome to).
    """

    trace_id: TraceId
    reply_to: FrameId
    verdict: TraceOutcome
    participants: FrozenSet[SiteId]


@dataclass(frozen=True)
class BackOutcome(Payload):
    """Report phase: the initiator tells each participant the final verdict."""

    trace_id: TraceId
    verdict: TraceOutcome
