"""Activation frames and per-trace records (section 4.4).

A *frame* is created for each back-step call: it remembers who to answer
(a local parent frame or a remote caller), how many inner calls are pending,
the accumulated participant set, and whether the clean rule forced the result
to Live.  Frames are owned by the site, not by the ioref, so the deletion of
an ioref while a trace is active there never orphans a call -- the fix the
paper credits to Boyapati.

A *trace record* is a site's memory of one trace: which iorefs it marked
visited (so the report phase can flag or unflag them) and a liveness timeout
that conservatively assumes a Live outcome if the initiator's report never
arrives (section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from ...ids import FrameId, ObjectId, SiteId, TraceId
from ...sim.scheduler import EventHandle

IorefKey = Tuple[str, ObjectId]
"""('inref'|'outref', target) -- distinguishes the two tables' entries."""

INREF = "inref"
OUTREF = "outref"


@dataclass
class Frame:
    """One pending back-step call at one site."""

    frame_id: FrameId
    trace_id: TraceId
    kind: str
    ioref: ObjectId
    parent_local: Optional[FrameId] = None
    parent_remote: Optional[Tuple[SiteId, FrameId]] = None
    pending: int = 0
    forced_live: bool = False
    completed: bool = False
    participants: Set[SiteId] = field(default_factory=set)
    timeout: Optional[EventHandle] = None

    @property
    def is_root(self) -> bool:
        """The frame that started the trace (no parent anywhere)."""
        return self.parent_local is None and self.parent_remote is None

    @property
    def key(self) -> IorefKey:
        return (self.kind, self.ioref)

    def cancel_timeout(self) -> None:
        if self.timeout is not None:
            self.timeout.cancel()
            self.timeout = None


@dataclass
class TraceRecord:
    """A site's bookkeeping for one back trace passing through it."""

    trace_id: TraceId
    is_initiator: bool = False
    root_outref: Optional[ObjectId] = None
    visited_inrefs: Set[ObjectId] = field(default_factory=set)
    visited_outrefs: Set[ObjectId] = field(default_factory=set)
    finished: bool = False
    outcome_timeout: Optional[EventHandle] = None

    def cancel_timeout(self) -> None:
        if self.outcome_timeout is not None:
            self.outcome_timeout.cancel()
            self.outcome_timeout = None
