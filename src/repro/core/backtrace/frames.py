"""Activation frames and per-trace records (section 4.4).

A *frame* is created for each back-step call: it remembers who to answer
(a local parent frame or a remote caller), how many inner calls are pending,
the accumulated participant set, and whether the clean rule forced the result
to Live.  Frames are owned by the site, not by the ioref, so the deletion of
an ioref while a trace is active there never orphans a call -- the fix the
paper credits to Boyapati.

A *trace record* is a site's memory of one trace: which iorefs it marked
visited (so the report phase can flag or unflag them) and a liveness timeout
that conservatively assumes a Live outcome if the initiator's report never
arrives (section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ...ids import FrameId, ObjectId, SiteId, TraceId
from ...sim.scheduler import EventHandle

IorefKey = Tuple[str, ObjectId]
"""('inref'|'outref', target) -- distinguishes the two tables' entries."""

INREF = "inref"
OUTREF = "outref"

Waiter = Tuple[TraceId, Optional[FrameId], Optional[Tuple[SiteId, FrameId]]]
"""A coalesced step parked on another trace's frame: (trace, local parent,
remote caller).  Resolved when the host frame completes -- Live is forwarded,
anything else re-dispatches the step (Garbage is trace-relative)."""


@dataclass(slots=True)
class Frame:
    """One pending back-step call at one site."""

    frame_id: FrameId
    trace_id: TraceId
    kind: str
    ioref: ObjectId
    parent_local: Optional[FrameId] = None
    parent_remote: Optional[Tuple[SiteId, FrameId]] = None
    pending: int = 0
    forced_live: bool = False
    completed: bool = False
    participants: Set[SiteId] = field(default_factory=set)
    timeout: Optional[EventHandle] = None
    waiters: List[Waiter] = field(default_factory=list)
    # Sites whose BackReply for this frame already arrived: a remote frame
    # sends exactly one call per source site, so a second reply from the
    # same site is a duplicate delivery and must not decrement ``pending``
    # again (that double-decrement could close a branch as Garbage while a
    # real reply -- possibly Live -- is still outstanding: a safety bug).
    replied: Set[SiteId] = field(default_factory=set)
    # True once this frame's verdict leaned on a conservative timeout
    # (its own, or a child subtree's).  Threaded to the initiator so
    # timeout-assumed Lives trigger retry backoff, not instant re-suspicion.
    timed_out: bool = False
    # Earliest expiry among the cached Live verdicts this frame's subtree
    # consumed (None = none consumed).  Propagated so a verdict derived from
    # a cache entry is never re-cached beyond that entry's own lifetime --
    # otherwise chained re-caching could keep a stale Live alive forever.
    cache_expires_at: Optional[float] = None

    def note_expiry(self, expires_at: Optional[float]) -> None:
        if expires_at is None:
            return
        if self.cache_expires_at is None or expires_at < self.cache_expires_at:
            self.cache_expires_at = expires_at

    @property
    def is_root(self) -> bool:
        """The frame that started the trace (no parent anywhere)."""
        return self.parent_local is None and self.parent_remote is None

    @property
    def key(self) -> IorefKey:
        return (self.kind, self.ioref)

    def cancel_timeout(self) -> None:
        if self.timeout is not None:
            self.timeout.cancel()
            self.timeout = None


@dataclass
class TraceRecord:
    """A site's bookkeeping for one back trace passing through it."""

    trace_id: TraceId
    is_initiator: bool = False
    root_outref: Optional[ObjectId] = None
    visited_inrefs: Set[ObjectId] = field(default_factory=set)
    visited_outrefs: Set[ObjectId] = field(default_factory=set)
    finished: bool = False
    outcome_timeout: Optional[EventHandle] = None
    # (reply_to frame, call seq) of every BackCall of this trace handled
    # here: duplicate deliveries are dropped before they can re-step.
    seen_calls: Set[Tuple[FrameId, int]] = field(default_factory=set)

    def cancel_timeout(self) -> None:
        if self.outcome_timeout is not None:
            self.outcome_timeout.cancel()
            self.outcome_timeout = None
