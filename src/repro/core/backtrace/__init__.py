"""Distributed back tracing (section 4 of the paper).

A back trace starts at a suspected outref and alternates:

- **local steps** (outref -> the suspected inrefs in its inset), and
- **remote steps** (inref -> the matching outrefs at its source sites),

forking parallel branches, stopping with **Live** at any clean ioref and with
**Garbage** when every backward path closes over suspected iorefs already
visited by this trace.  The initiator then runs the *report phase*: Garbage
flags every visited inref so the next local traces delete the cycle; Live
clears the visited marks.

Fault tolerance (section 4.6): all waits are guarded by timeouts that
conservatively decide Live.  Concurrency (section 6.4): cleaning an ioref
while a trace is active there forces that branch Live (the *clean rule*).
"""

from .messages import BackCall, BackOutcome, BackReply, TraceOutcome
from .frames import Frame, TraceRecord
from .engine import BackTraceEngine

__all__ = [
    "BackCall",
    "BackReply",
    "BackOutcome",
    "TraceOutcome",
    "Frame",
    "TraceRecord",
    "BackTraceEngine",
]
