"""The back-trace engine: one instance per site.

Implements the mutually recursive ``BackStepRemote`` / ``BackStepLocal``
procedures of section 4.4 as an asynchronous, frame-based protocol:

- a **local step** (``_step_local``) inspects this site's outref for a
  reference and forks remote steps to every inref in its inset;
- a **remote step** (``_step_remote``) inspects an inref and sends a
  :class:`BackCall` to every site in its source list;
- calls inside both for-loops run in parallel, as the paper notes; a branch
  returning Live short-circuits its parent immediately.

Verdict rules implemented verbatim from the pseudocode: missing ioref ->
Garbage, clean ioref -> Live, already visited by this trace -> Garbage,
otherwise mark visited and fan out.  Additionally an inref already *flagged*
garbage answers Garbage directly (it was confirmed by a completed trace and
is merely awaiting deletion).

On top of the pseudocode this engine layers three cost optimizations, all of
them conservative (they can only delay collection, never collect live data):

- **verdict caching** (:mod:`repro.core.backtrace.cache`): a trace that
  completes Live snapshots the per-entry epochs of the iorefs it visited at
  each participant; while those epochs hold, later steps on the same iorefs
  answer Live with no frame and no messages;
- **trace coalescing**: a step arriving at an ioref where an *older* trace
  (smaller :class:`TraceId` -- the ordering keeps the waits-for relation
  acyclic) is actively expanding parks on that frame instead of duplicating
  its fan-out; a Live verdict is forwarded to the parked step, anything else
  re-dispatches it (Garbage is relative to the host trace's visited marks);
- **call batching**: the BackCalls/BackReplies one engine activation emits
  to the same destination ship as a single :class:`BackCallBatch` /
  :class:`BackReplyBatch` physical message.

The engine also owns: per-site trace records, the report phase, the clean
rule hook (:meth:`notify_cleaned`), visit-time back-threshold bumps
(section 4.3), and the two conservative timeouts of section 4.6.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple, Type

from ...config import GcConfig
from ...errors import BackTraceError
from ...gc.inrefs import InrefTable
from ...gc.outrefs import OutrefTable
from ...ids import FrameId, ObjectId, SiteId, TraceId
from ...metrics import MetricsRecorder, names
from ...net.message import Payload
from ...sim.scheduler import Scheduler
from .cache import VerdictCache
from .frames import INREF, OUTREF, Frame, IorefKey, TraceRecord
from .messages import (
    BackCall,
    BackCallBatch,
    BackOutcome,
    BackReply,
    BackReplyBatch,
    TraceOutcome,
)

SendFn = Callable[[SiteId, Payload], None]
OutcomeCallback = Callable[[TraceId, TraceOutcome], None]
AppliedCallback = Callable[[TraceId, TraceOutcome, int], None]


class BackTraceEngine:
    """Runs the back-trace protocol on behalf of one site."""

    def __init__(
        self,
        site_id: SiteId,
        inrefs: InrefTable,
        outrefs: OutrefTable,
        config: GcConfig,
        scheduler: Scheduler,
        send: SendFn,
        metrics: Optional[MetricsRecorder] = None,
        on_outcome: Optional[OutcomeCallback] = None,
        on_outcome_applied: Optional[AppliedCallback] = None,
    ):
        self.site_id = site_id
        self.inrefs = inrefs
        self.outrefs = outrefs
        self.config = config
        self.scheduler = scheduler
        self.send = send
        self.metrics = metrics or MetricsRecorder()
        self.on_outcome = on_outcome
        self.on_outcome_applied = on_outcome_applied
        self.cache: Optional[VerdictCache] = None
        if config.backtrace_cache:
            self.cache = VerdictCache(inrefs, outrefs, metrics=self.metrics)
        self._frames: Dict[FrameId, Frame] = {}
        self._active_by_ioref: Dict[IorefKey, Set[FrameId]] = {}
        self._frames_by_trace: Dict[TraceId, Set[FrameId]] = {}
        self._records: Dict[TraceId, TraceRecord] = {}
        self._active_roots: Dict[ObjectId, TraceId] = {}
        self._next_trace_seq = 0
        self._next_frame_seq = 0
        self._next_call_seq = 0
        self._batch_depth = 0
        self._outbox: List[Tuple[SiteId, Payload]] = []
        # Traces already finished here -> expiry of the memory (2x the
        # back-trace timeout, after which nothing legitimate can still be in
        # flight).  Late/duplicate calls and outcomes for them are dropped
        # instead of resurrecting a record and re-stepping junk.
        self._finished_traces: Dict[TraceId, float] = {}
        # Initiator-side exponential backoff for timeout-assumed-Live roots:
        # root outref -> (consecutive timeout count, earliest re-initiation).
        self._retry_state: Dict[ObjectId, Tuple[int, float]] = {}

    # -- public API -------------------------------------------------------------

    def start_trace(self, outref_target: ObjectId) -> Optional[TraceId]:
        """Begin a back trace from a suspected outref of this site.

        Returns the trace id, or None if a trace initiated from this outref
        is still in flight (re-initiating would only duplicate work) or a
        cached Live verdict still covers the outref (re-tracing could only
        re-derive it).
        """
        if outref_target in self._active_roots:
            return None
        entry = self.outrefs.get(outref_target)
        if entry is None or entry.is_clean:
            self._retry_state.pop(outref_target, None)
            return None
        if self.cached_live(outref_target):
            return None
        state = self._retry_state.get(outref_target)
        if state is not None and self.scheduler.now < state[1]:
            # The last trace from this root was assumed Live only because of
            # a timeout; retrying immediately would usually hit the same
            # fault.  Wait out the (exponential, capped) backoff.
            self.metrics.incr(names.BACKTRACE_RETRY_SUPPRESSED)
            return None
        trace_id = TraceId(initiator=self.site_id, seq=self._next_trace_seq)
        self._next_trace_seq += 1
        record = self._ensure_record(trace_id)
        record.is_initiator = True
        record.root_outref = outref_target
        self._active_roots[outref_target] = trace_id
        self.metrics.incr("backtrace.started")
        with self._batched():
            self._step_local(
                trace_id, outref_target, parent_local=None, parent_remote=None
            )
        return trace_id

    def cached_live(self, outref_target: ObjectId) -> bool:
        """True iff a still-valid cached Live verdict covers this outref."""
        return self.cache is not None and self.cache.lookup(
            (OUTREF, outref_target), self.scheduler.now
        )

    def has_active_trace_from(self, outref_target: ObjectId) -> bool:
        return outref_target in self._active_roots

    @property
    def active_trace_count(self) -> int:
        return sum(1 for record in self._records.values() if not record.finished)

    def handle_back_call(self, src: SiteId, payload: BackCall) -> None:
        """A remote site asks us to back-step our outref for ``payload.target``."""
        with self._batched():
            self._handle_one_call(src, payload)

    def handle_back_call_batch(self, src: SiteId, payload: BackCallBatch) -> None:
        """Several back calls from one site, delivered as one message."""
        with self._batched():
            for call in payload.calls:
                self._handle_one_call(src, call)

    def _handle_one_call(self, src: SiteId, payload: BackCall) -> None:
        expiry = self._finished_traces.get(payload.trace_id)
        if expiry is not None:
            if self.scheduler.now < expiry:
                # The trace already finished here; a late (or duplicated)
                # call must not resurrect its record and re-step.
                self.metrics.incr("backtrace.stale_calls")
                return
            del self._finished_traces[payload.trace_id]
        record = self._ensure_record(payload.trace_id)
        if payload.seq >= 0:
            key = (payload.reply_to, payload.seq)
            if key in record.seen_calls:
                # Duplicate delivery: the first copy already added a visited
                # mark, so re-stepping would answer a spurious Garbage.
                self.metrics.incr(names.dup_suppressed("BackCall"))
                return
            record.seen_calls.add(key)
        self._step_local(
            payload.trace_id,
            payload.target,
            parent_local=None,
            parent_remote=(src, payload.reply_to),
        )

    def handle_back_reply(self, src: SiteId, payload: BackReply) -> None:
        """A response for one of our pending remote calls arrived."""
        with self._batched():
            self._handle_one_reply(src, payload)

    def handle_back_reply_batch(self, src: SiteId, payload: BackReplyBatch) -> None:
        """Several back replies from one site, delivered as one message."""
        with self._batched():
            for reply in payload.replies:
                self._handle_one_reply(src, reply)

    def _handle_one_reply(self, src: SiteId, payload: BackReply) -> None:
        frame = self._frames.get(payload.reply_to)
        if frame is None or frame.completed or frame.trace_id != payload.trace_id:
            # Late reply to a frame already completed (short-circuited Live,
            # timed out, or force-completed by the clean rule): ignore.
            self.metrics.incr("backtrace.stale_replies")
            return
        if src in frame.replied:
            # Duplicate delivery.  A frame sends exactly one call per source
            # site, so a second reply from the same site must not decrement
            # ``pending`` again -- that double-decrement could close the
            # branch as Garbage while a real (possibly Live) reply is still
            # outstanding, which is a safety violation.
            self.metrics.incr(names.dup_suppressed("BackReply"))
            return
        frame.replied.add(src)
        self._child_done(
            frame,
            payload.verdict,
            set(payload.participants),
            cache_expires=payload.cache_expires_at,
            timed_out=payload.timed_out,
        )

    def handle_back_outcome(self, src: SiteId, payload: BackOutcome) -> None:
        """Report phase: the initiator announced the final verdict."""
        if (
            payload.trace_id in self._finished_traces
            and payload.trace_id not in self._records
        ):
            # Already applied here: a duplicated outcome is a no-op.
            self.metrics.incr(names.dup_suppressed("BackOutcome"))
            return
        with self._batched():
            self._apply_outcome(
                payload.trace_id, payload.verdict, cache_expires=payload.cache_expires_at
            )

    def notify_cleaned(self, kind: str, target: ObjectId) -> None:
        """Clean rule (section 6.4): an ioref was cleaned; any trace active
        there must return Live, and any cached verdict whose footprint
        includes the ioref is purged."""
        key = (kind, target)
        if self.cache is not None:
            self.cache.invalidate_ioref(key)
        with self._batched():
            frame_ids = list(self._active_by_ioref.get(key, ()))
            for frame_id in frame_ids:
                frame = self._frames.get(frame_id)
                if frame is None or frame.completed:
                    continue
                frame.forced_live = True
                self.metrics.incr("backtrace.clean_rule_hits")
                self._complete(frame, TraceOutcome.LIVE)

    # -- batching window --------------------------------------------------------

    @contextmanager
    def _batched(self) -> Iterator[None]:
        """Buffer BackCalls/BackReplies for the duration of one activation."""
        self._batch_depth += 1
        try:
            yield
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._outbox:
                self._flush_outbox()

    def _send(self, dst: SiteId, payload: Payload) -> None:
        if (
            self.config.backtrace_batch_calls
            and self._batch_depth > 0
            and isinstance(payload, (BackCall, BackReply))
        ):
            self._outbox.append((dst, payload))
        else:
            self.send(dst, payload)

    def _flush_outbox(self) -> None:
        outbox, self._outbox = self._outbox, []
        groups: Dict[Tuple[SiteId, Type[Payload]], List[Payload]] = {}
        order: List[Tuple[SiteId, Type[Payload]]] = []
        for dst, payload in outbox:
            if isinstance(payload, BackCall):
                frame = self._frames.get(payload.reply_to)
                if frame is None or frame.completed:
                    # The awaiting frame died while the call sat in the
                    # outbox (clean rule, a sibling's Live short-circuit, an
                    # outcome sweep): any reply would be dropped as stale, so
                    # the call itself is not worth sending.
                    self.metrics.incr("backtrace.calls_pruned")
                    continue
            gkey = (dst, type(payload))
            if gkey not in groups:
                groups[gkey] = []
                order.append(gkey)
            groups[gkey].append(payload)
        for gkey in order:
            dst, kind = gkey
            group = groups[gkey]
            if len(group) == 1:
                self.send(dst, group[0])
            elif kind is BackCall:
                self.metrics.incr("backtrace.calls_batched", len(group))
                self.send(dst, BackCallBatch(calls=tuple(group)))
            else:
                self.metrics.incr("backtrace.calls_batched", len(group))
                self.send(dst, BackReplyBatch(replies=tuple(group)))

    # -- record management ----------------------------------------------------------

    def _ensure_record(self, trace_id: TraceId) -> TraceRecord:
        record = self._records.get(trace_id)
        if record is None:
            record = TraceRecord(trace_id=trace_id)
            self._records[trace_id] = record
        self._refresh_outcome_timeout(record)
        return record

    def _refresh_outcome_timeout(self, record: TraceRecord) -> None:
        """(Re)arm the conservative 'assume Live if no outcome' timer."""
        record.cancel_timeout()
        trace_id = record.trace_id
        record.outcome_timeout = self.scheduler.schedule(
            2 * self.config.backtrace_timeout,
            lambda: self._outcome_timed_out(trace_id),
            label=f"outcome-timeout:{trace_id}",
            site=self.site_id,
        )

    def _outcome_timed_out(self, trace_id: TraceId) -> None:
        record = self._records.get(trace_id)
        if record is None or record.finished:
            return
        self.metrics.incr("backtrace.outcome_timeouts")
        with self._batched():
            # The assumed Live rests on no evidence at all, so give it an
            # already-expired cache bound: applied normally, never cached.
            self._apply_outcome(
                trace_id, TraceOutcome.LIVE, cache_expires=self.scheduler.now
            )

    # -- the two step kinds ------------------------------------------------------------

    def _step_local(
        self,
        trace_id: TraceId,
        target: ObjectId,
        parent_local: Optional[FrameId],
        parent_remote: Optional[Tuple[SiteId, FrameId]],
    ) -> None:
        """BackStepLocal: examine this site's outref for ``target``."""
        entry = self.outrefs.get(target)
        if entry is None:
            self._answer(trace_id, parent_local, parent_remote, TraceOutcome.GARBAGE)
            return
        if entry.is_clean:
            self._answer(trace_id, parent_local, parent_remote, TraceOutcome.LIVE)
            return
        if trace_id in entry.visited:
            self._answer(trace_id, parent_local, parent_remote, TraceOutcome.GARBAGE)
            return
        if self.cache is not None:
            expiry = self.cache.lookup_expiry((OUTREF, target), self.scheduler.now)
            if expiry is not None:
                self._answer(
                    trace_id,
                    parent_local,
                    parent_remote,
                    TraceOutcome.LIVE,
                    cache_expires=expiry,
                )
                return
        if self._try_coalesce(trace_id, (OUTREF, target), parent_local, parent_remote):
            return
        record = self._ensure_record(trace_id)
        entry.visited.add(trace_id)
        record.visited_outrefs.add(target)
        entry.back_threshold += self.config.back_threshold_increment
        self.metrics.incr("backtrace.iorefs_visited")

        frame = self._new_frame(trace_id, OUTREF, target, parent_local, parent_remote)
        inset = sorted(entry.inset)
        frame.pending = len(inset)
        if frame.pending == 0:
            # No suspected inref reaches this outref: nothing backward of it,
            # so this branch closes as Garbage.
            self._complete(frame, TraceOutcome.GARBAGE)
            return
        self._arm_frame_timeout(frame)
        for inref_target in inset:
            if frame.completed:
                break
            self._step_remote(trace_id, inref_target, parent_local=frame.frame_id)

    def _step_remote(
        self, trace_id: TraceId, target: ObjectId, parent_local: FrameId
    ) -> None:
        """BackStepRemote: examine this site's inref for ``target``."""
        entry = self.inrefs.get(target)
        if entry is None or entry.garbage:
            self._answer(trace_id, parent_local, None, TraceOutcome.GARBAGE)
            return
        if entry.is_clean(self.inrefs.suspicion_threshold):
            self._answer(trace_id, parent_local, None, TraceOutcome.LIVE)
            return
        if trace_id in entry.visited:
            self._answer(trace_id, parent_local, None, TraceOutcome.GARBAGE)
            return
        if self.cache is not None:
            expiry = self.cache.lookup_expiry((INREF, target), self.scheduler.now)
            if expiry is not None:
                self._answer(
                    trace_id, parent_local, None, TraceOutcome.LIVE, cache_expires=expiry
                )
                return
        if self._try_coalesce(trace_id, (INREF, target), parent_local, None):
            return
        record = self._ensure_record(trace_id)
        entry.visited.add(trace_id)
        record.visited_inrefs.add(target)
        entry.back_threshold += self.config.back_threshold_increment
        self.metrics.incr("backtrace.iorefs_visited")

        frame = self._new_frame(trace_id, INREF, target, parent_local, None)
        sources = sorted(entry.sources)
        frame.pending = len(sources)
        if frame.pending == 0:
            self._complete(frame, TraceOutcome.GARBAGE)
            return
        self._arm_frame_timeout(frame)
        for source in sources:
            seq = self._next_call_seq
            self._next_call_seq += 1
            self._send(
                source,
                BackCall(
                    trace_id=trace_id,
                    target=target,
                    reply_to=frame.frame_id,
                    seq=seq,
                ),
            )

    # -- coalescing ---------------------------------------------------------------

    def _try_coalesce(
        self,
        trace_id: TraceId,
        key: IorefKey,
        parent_local: Optional[FrameId],
        parent_remote: Optional[Tuple[SiteId, FrameId]],
    ) -> bool:
        """Park this step on an older trace's active frame at the same ioref.

        Only frames of traces with *strictly smaller* ids host waiters: the
        waits-for relation then only points down the total order on trace
        ids, so no cycle of mutually parked traces (and hence no deadlock of
        timeouts resolving each other to Live) can form.
        """
        if not self.config.backtrace_coalesce:
            return False
        host: Optional[Frame] = None
        for frame_id in self._active_by_ioref.get(key, ()):
            frame = self._frames.get(frame_id)
            if frame is None or frame.completed:
                continue
            if not (frame.trace_id < trace_id):
                continue
            if host is None or frame.trace_id < host.trace_id:
                host = frame
        if host is None:
            return False
        host.waiters.append((trace_id, parent_local, parent_remote))
        self.metrics.incr("backtrace.coalesced")
        return True

    def _resolve_waiters(self, frame: Frame, verdict: TraceOutcome) -> None:
        """Settle steps parked on ``frame``: forward Live, re-dispatch else.

        Garbage (and the aborted-frame case) is relative to the host trace's
        visited marks, so a parked step must re-run on its own; by now the
        host's marks at this ioref are gone or going, so the re-run proceeds
        normally.
        """
        if not frame.waiters:
            return
        waiters, frame.waiters = list(frame.waiters), []
        for wtrace, plocal, premote in waiters:
            if verdict.is_live:
                self._answer(
                    wtrace,
                    plocal,
                    premote,
                    TraceOutcome.LIVE,
                    cache_expires=frame.cache_expires_at,
                    timed_out=frame.timed_out,
                )
            elif frame.kind == OUTREF:
                self._step_local(wtrace, frame.ioref, plocal, premote)
            else:
                self._step_remote(wtrace, frame.ioref, parent_local=plocal)

    # -- frame lifecycle --------------------------------------------------------------

    def _new_frame(
        self,
        trace_id: TraceId,
        kind: str,
        ioref: ObjectId,
        parent_local: Optional[FrameId],
        parent_remote: Optional[Tuple[SiteId, FrameId]],
    ) -> Frame:
        frame_id = FrameId(site=self.site_id, seq=self._next_frame_seq)
        self._next_frame_seq += 1
        frame = Frame(
            frame_id=frame_id,
            trace_id=trace_id,
            kind=kind,
            ioref=ioref,
            parent_local=parent_local,
            parent_remote=parent_remote,
        )
        self._frames[frame_id] = frame
        self._active_by_ioref.setdefault(frame.key, set()).add(frame_id)
        self._frames_by_trace.setdefault(trace_id, set()).add(frame_id)
        return frame

    def _discard_frame(self, frame: Frame) -> None:
        """Drop a frame from every index (it must already be completed)."""
        active = self._active_by_ioref.get(frame.key)
        if active is not None:
            active.discard(frame.frame_id)
            if not active:
                del self._active_by_ioref[frame.key]
        by_trace = self._frames_by_trace.get(frame.trace_id)
        if by_trace is not None:
            by_trace.discard(frame.frame_id)
            if not by_trace:
                del self._frames_by_trace[frame.trace_id]
        self._frames.pop(frame.frame_id, None)

    def _arm_frame_timeout(self, frame: Frame) -> None:
        frame_id = frame.frame_id
        frame.timeout = self.scheduler.schedule(
            self.config.backtrace_timeout,
            lambda: self._frame_timed_out(frame_id),
            label=f"frame-timeout:{frame_id}",
            site=self.site_id,
        )

    def _frame_timed_out(self, frame_id: FrameId) -> None:
        frame = self._frames.get(frame_id)
        if frame is None or frame.completed:
            return
        # Section 4.6: a site waiting for a response that never comes can
        # safely assume the call returned Live.  The assumption rests on no
        # evidence, so it is flagged (retry backoff at the initiator) and
        # given an already-expired cache bound (never cached).
        self.metrics.incr("backtrace.frame_timeouts")
        frame.timed_out = True
        frame.note_expiry(self.scheduler.now)
        with self._batched():
            self._complete(frame, TraceOutcome.LIVE)

    def _child_done(
        self,
        frame: Frame,
        verdict: TraceOutcome,
        participants: Set[SiteId],
        cache_expires: Optional[float] = None,
        timed_out: bool = False,
    ) -> None:
        if frame.completed:
            return
        frame.participants.update(participants)
        frame.note_expiry(cache_expires)
        if timed_out:
            frame.timed_out = True
        if verdict.is_live:
            self._complete(frame, TraceOutcome.LIVE)
            return
        frame.pending -= 1
        if frame.pending <= 0:
            self._complete(frame, TraceOutcome.GARBAGE)

    def _complete(self, frame: Frame, verdict: TraceOutcome) -> None:
        if frame.completed:
            return
        frame.completed = True
        frame.cancel_timeout()
        if frame.forced_live:
            verdict = TraceOutcome.LIVE
        self._discard_frame(frame)
        participants = set(frame.participants)
        participants.add(self.site_id)

        if frame.parent_local is not None:
            parent = self._frames.get(frame.parent_local)
            if parent is not None and not parent.completed:
                self._child_done(
                    parent,
                    verdict,
                    participants,
                    cache_expires=frame.cache_expires_at,
                    timed_out=frame.timed_out,
                )
        elif frame.parent_remote is not None:
            caller_site, caller_frame = frame.parent_remote
            self._send(
                caller_site,
                BackReply(
                    trace_id=frame.trace_id,
                    reply_to=caller_frame,
                    verdict=verdict,
                    participants=frozenset(participants),
                    cache_expires_at=frame.cache_expires_at,
                    timed_out=frame.timed_out,
                ),
            )
        else:
            self._finish_trace(
                frame.trace_id,
                verdict,
                participants,
                frame.cache_expires_at,
                timed_out=frame.timed_out,
            )
        self._resolve_waiters(frame, verdict)

    def _answer(
        self,
        trace_id: TraceId,
        parent_local: Optional[FrameId],
        parent_remote: Optional[Tuple[SiteId, FrameId]],
        verdict: TraceOutcome,
        cache_expires: Optional[float] = None,
        timed_out: bool = False,
    ) -> None:
        """Deliver an immediate (frameless) verdict to whoever asked."""
        if parent_local is not None:
            parent = self._frames.get(parent_local)
            if parent is not None and not parent.completed:
                self._child_done(
                    parent,
                    verdict,
                    {self.site_id},
                    cache_expires=cache_expires,
                    timed_out=timed_out,
                )
        elif parent_remote is not None:
            caller_site, caller_frame = parent_remote
            self._send(
                caller_site,
                BackReply(
                    trace_id=trace_id,
                    reply_to=caller_frame,
                    verdict=verdict,
                    participants=frozenset({self.site_id}),
                    cache_expires_at=cache_expires,
                    timed_out=timed_out,
                ),
            )
        else:
            # The root step itself resolved immediately (e.g. the outref
            # turned clean before the trace began).
            self._finish_trace(
                trace_id, verdict, {self.site_id}, cache_expires, timed_out=timed_out
            )

    # -- outcome ------------------------------------------------------------------------

    def _finish_trace(
        self,
        trace_id: TraceId,
        verdict: TraceOutcome,
        participants: Set[SiteId],
        cache_expires: Optional[float] = None,
        timed_out: bool = False,
    ) -> None:
        """Report phase, run at the initiator (section 4.5)."""
        if trace_id.initiator != self.site_id:
            raise BackTraceError(f"{self.site_id} finishing foreign trace {trace_id}")
        if verdict.is_garbage:
            self.metrics.incr("backtrace.completed_garbage")
        else:
            self.metrics.incr("backtrace.completed_live")
        self._note_retry(trace_id, verdict, timed_out)
        for participant in sorted(participants):
            if participant != self.site_id:
                self.send(
                    participant,
                    BackOutcome(
                        trace_id=trace_id,
                        verdict=verdict,
                        cache_expires_at=cache_expires,
                    ),
                )
        self._apply_outcome(trace_id, verdict, cache_expires=cache_expires)

    def _note_retry(
        self, trace_id: TraceId, verdict: TraceOutcome, timed_out: bool
    ) -> None:
        """Arm (timeout-assumed Live) or clear (grounded verdict) retry backoff.

        A Live that leaned on a conservative timeout (section 4.6) carries no
        evidence: re-initiating at the fixed suspicion cadence would hammer a
        partitioned or crashed site.  Each consecutive timeout doubles the
        wait before the same root may start a new trace, up to the cap; any
        grounded verdict resets the ladder.
        """
        record = self._records.get(trace_id)
        root = record.root_outref if record is not None else None
        if root is None:
            return
        if verdict.is_live and timed_out:
            attempts = self._retry_state.get(root, (0, 0.0))[0] + 1
            base = self.config.effective_retry_backoff
            cap = self.config.effective_retry_backoff_cap
            delay = min(base * (2 ** (attempts - 1)), cap)
            self._retry_state[root] = (attempts, self.scheduler.now + delay)
            self.metrics.incr(names.BACKTRACE_COMPLETED_TIMEOUT_LIVE)
            self.metrics.incr(names.BACKTRACE_RETRIES_BACKED_OFF)
        else:
            self._retry_state.pop(root, None)

    def _apply_outcome(
        self,
        trace_id: TraceId,
        verdict: TraceOutcome,
        cache_expires: Optional[float] = None,
    ) -> None:
        """Flag (Garbage) or unmark (Live) the iorefs this trace visited here."""
        record = self._records.pop(trace_id, None)
        if record is None:
            return
        record.finished = True
        record.cancel_timeout()
        # Remember the trace long enough to recognize replayed or straggling
        # messages for it (duplicate suppression in the handlers above); the
        # 2x outcome-timeout horizon outlives any in-flight copy.
        self._finished_traces[trace_id] = self.scheduler.now + (
            2.0 * self.config.backtrace_timeout
        )
        if len(self._finished_traces) > 512:
            now = self.scheduler.now
            self._finished_traces = {
                tid: exp for tid, exp in self._finished_traces.items() if exp > now
            }
        if record.root_outref is not None:
            self._active_roots.pop(record.root_outref, None)
        for target in record.visited_inrefs:
            entry = self.inrefs.get(target)
            if entry is None:
                continue
            entry.visited.discard(trace_id)
            if verdict.is_garbage:
                if not entry.garbage:
                    entry.garbage = True
                    self.metrics.incr("backtrace.inrefs_flagged")
        for target in record.visited_outrefs:
            entry = self.outrefs.get(target)
            if entry is not None:
                entry.visited.discard(trace_id)
        if (
            verdict.is_live
            and self.cache is not None
            and (record.visited_inrefs or record.visited_outrefs)
        ):
            keys: List[IorefKey] = [
                (INREF, target) for target in sorted(record.visited_inrefs)
            ]
            keys.extend((OUTREF, target) for target in sorted(record.visited_outrefs))
            expires_at = self.scheduler.now + (
                self.config.backtrace_cache_ttl_ticks * self.config.local_trace_period
            )
            # A verdict that leaned on cached Lives inherits the earliest
            # consumed expiry: chained re-caching must not extend the
            # lifetime of the original grounded verdict.
            if cache_expires is not None:
                expires_at = min(expires_at, cache_expires)
            if expires_at > self.scheduler.now:
                self.cache.record_live(keys, expires_at)
        # Abort any frames of this trace still pending at this site: the
        # trace is over; answering anything further is pointless.  Late
        # messages for them are dropped as stale.  Steps of *other* traces
        # parked on those frames are settled like any waiter: the trace-level
        # verdict stands in for the frame's (Live may be forwarded; anything
        # else re-dispatches).
        for frame_id in list(self._frames_by_trace.get(trace_id, ())):
            frame = self._frames.get(frame_id)
            if frame is None:
                continue
            frame.completed = True
            frame.cancel_timeout()
            self._discard_frame(frame)
            frame.note_expiry(cache_expires)
            self._resolve_waiters(frame, verdict)
        if self.on_outcome_applied is not None:
            visited_here = len(record.visited_inrefs) + len(record.visited_outrefs)
            self.on_outcome_applied(trace_id, verdict, visited_here)
        if self.on_outcome is not None and record.is_initiator:
            self.on_outcome(trace_id, verdict)
