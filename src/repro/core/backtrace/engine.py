"""The back-trace engine: one instance per site.

Implements the mutually recursive ``BackStepRemote`` / ``BackStepLocal``
procedures of section 4.4 as an asynchronous, frame-based protocol:

- a **local step** (``_step_local``) inspects this site's outref for a
  reference and forks remote steps to every inref in its inset;
- a **remote step** (``_step_remote``) inspects an inref and sends a
  :class:`BackCall` to every site in its source list;
- calls inside both for-loops run in parallel, as the paper notes; a branch
  returning Live short-circuits its parent immediately.

Verdict rules implemented verbatim from the pseudocode: missing ioref ->
Garbage, clean ioref -> Live, already visited by this trace -> Garbage,
otherwise mark visited and fan out.  Additionally an inref already *flagged*
garbage answers Garbage directly (it was confirmed by a completed trace and
is merely awaiting deletion).

The engine also owns: per-site trace records, the report phase, the clean
rule hook (:meth:`notify_cleaned`), visit-time back-threshold bumps
(section 4.3), and the two conservative timeouts of section 4.6.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from ...config import GcConfig
from ...errors import BackTraceError
from ...gc.inrefs import InrefTable
from ...gc.outrefs import OutrefTable
from ...ids import FrameId, ObjectId, SiteId, TraceId
from ...metrics import MetricsRecorder
from ...net.message import Payload
from ...sim.scheduler import Scheduler
from .frames import INREF, OUTREF, Frame, IorefKey, TraceRecord
from .messages import BackCall, BackOutcome, BackReply, TraceOutcome

SendFn = Callable[[SiteId, Payload], None]
OutcomeCallback = Callable[[TraceId, TraceOutcome], None]
AppliedCallback = Callable[[TraceId, TraceOutcome, int], None]


class BackTraceEngine:
    """Runs the back-trace protocol on behalf of one site."""

    def __init__(
        self,
        site_id: SiteId,
        inrefs: InrefTable,
        outrefs: OutrefTable,
        config: GcConfig,
        scheduler: Scheduler,
        send: SendFn,
        metrics: Optional[MetricsRecorder] = None,
        on_outcome: Optional[OutcomeCallback] = None,
        on_outcome_applied: Optional[AppliedCallback] = None,
    ):
        self.site_id = site_id
        self.inrefs = inrefs
        self.outrefs = outrefs
        self.config = config
        self.scheduler = scheduler
        self.send = send
        self.metrics = metrics or MetricsRecorder()
        self.on_outcome = on_outcome
        self.on_outcome_applied = on_outcome_applied
        self._frames: Dict[FrameId, Frame] = {}
        self._active_by_ioref: Dict[IorefKey, Set[FrameId]] = {}
        self._records: Dict[TraceId, TraceRecord] = {}
        self._active_roots: Dict[ObjectId, TraceId] = {}
        self._next_trace_seq = 0
        self._next_frame_seq = 0

    # -- public API -------------------------------------------------------------

    def start_trace(self, outref_target: ObjectId) -> Optional[TraceId]:
        """Begin a back trace from a suspected outref of this site.

        Returns the trace id, or None if a trace initiated from this outref
        is still in flight (re-initiating would only duplicate work).
        """
        if outref_target in self._active_roots:
            return None
        entry = self.outrefs.get(outref_target)
        if entry is None or entry.is_clean:
            return None
        trace_id = TraceId(initiator=self.site_id, seq=self._next_trace_seq)
        self._next_trace_seq += 1
        record = self._ensure_record(trace_id)
        record.is_initiator = True
        record.root_outref = outref_target
        self._active_roots[outref_target] = trace_id
        self.metrics.incr("backtrace.started")
        self._step_local(trace_id, outref_target, parent_local=None, parent_remote=None)
        return trace_id

    def has_active_trace_from(self, outref_target: ObjectId) -> bool:
        return outref_target in self._active_roots

    @property
    def active_trace_count(self) -> int:
        return sum(1 for record in self._records.values() if not record.finished)

    def handle_back_call(self, src: SiteId, payload: BackCall) -> None:
        """A remote site asks us to back-step our outref for ``payload.target``."""
        self._ensure_record(payload.trace_id)
        self._step_local(
            payload.trace_id,
            payload.target,
            parent_local=None,
            parent_remote=(src, payload.reply_to),
        )

    def handle_back_reply(self, src: SiteId, payload: BackReply) -> None:
        """A response for one of our pending remote calls arrived."""
        frame = self._frames.get(payload.reply_to)
        if frame is None or frame.completed or frame.trace_id != payload.trace_id:
            # Late reply to a frame already completed (short-circuited Live,
            # timed out, or force-completed by the clean rule): ignore.
            self.metrics.incr("backtrace.stale_replies")
            return
        self._child_done(frame, payload.verdict, set(payload.participants))

    def handle_back_outcome(self, src: SiteId, payload: BackOutcome) -> None:
        """Report phase: the initiator announced the final verdict."""
        self._apply_outcome(payload.trace_id, payload.verdict)

    def notify_cleaned(self, kind: str, target: ObjectId) -> None:
        """Clean rule (section 6.4): an ioref was cleaned; any trace active
        there must return Live."""
        key = (kind, target)
        frame_ids = list(self._active_by_ioref.get(key, ()))
        for frame_id in frame_ids:
            frame = self._frames.get(frame_id)
            if frame is None or frame.completed:
                continue
            frame.forced_live = True
            self.metrics.incr("backtrace.clean_rule_hits")
            self._complete(frame, TraceOutcome.LIVE)

    # -- record management ----------------------------------------------------------

    def _ensure_record(self, trace_id: TraceId) -> TraceRecord:
        record = self._records.get(trace_id)
        if record is None:
            record = TraceRecord(trace_id=trace_id)
            self._records[trace_id] = record
        self._refresh_outcome_timeout(record)
        return record

    def _refresh_outcome_timeout(self, record: TraceRecord) -> None:
        """(Re)arm the conservative 'assume Live if no outcome' timer."""
        record.cancel_timeout()
        trace_id = record.trace_id
        record.outcome_timeout = self.scheduler.schedule(
            2 * self.config.backtrace_timeout,
            lambda: self._outcome_timed_out(trace_id),
            label=f"outcome-timeout:{trace_id}",
        )

    def _outcome_timed_out(self, trace_id: TraceId) -> None:
        record = self._records.get(trace_id)
        if record is None or record.finished:
            return
        self.metrics.incr("backtrace.outcome_timeouts")
        self._apply_outcome(trace_id, TraceOutcome.LIVE)

    # -- the two step kinds ------------------------------------------------------------

    def _step_local(
        self,
        trace_id: TraceId,
        target: ObjectId,
        parent_local: Optional[FrameId],
        parent_remote: Optional[Tuple[SiteId, FrameId]],
    ) -> None:
        """BackStepLocal: examine this site's outref for ``target``."""
        entry = self.outrefs.get(target)
        if entry is None:
            self._answer(trace_id, parent_local, parent_remote, TraceOutcome.GARBAGE)
            return
        if entry.is_clean:
            self._answer(trace_id, parent_local, parent_remote, TraceOutcome.LIVE)
            return
        if trace_id in entry.visited:
            self._answer(trace_id, parent_local, parent_remote, TraceOutcome.GARBAGE)
            return
        record = self._ensure_record(trace_id)
        entry.visited.add(trace_id)
        record.visited_outrefs.add(target)
        entry.back_threshold += self.config.back_threshold_increment

        frame = self._new_frame(trace_id, OUTREF, target, parent_local, parent_remote)
        inset = sorted(entry.inset)
        frame.pending = len(inset)
        if frame.pending == 0:
            # No suspected inref reaches this outref: nothing backward of it,
            # so this branch closes as Garbage.
            self._complete(frame, TraceOutcome.GARBAGE)
            return
        self._arm_frame_timeout(frame)
        for inref_target in inset:
            if frame.completed:
                break
            self._step_remote(trace_id, inref_target, parent_local=frame.frame_id)

    def _step_remote(
        self, trace_id: TraceId, target: ObjectId, parent_local: FrameId
    ) -> None:
        """BackStepRemote: examine this site's inref for ``target``."""
        entry = self.inrefs.get(target)
        if entry is None or entry.garbage:
            self._answer(trace_id, parent_local, None, TraceOutcome.GARBAGE)
            return
        if entry.is_clean(self.inrefs.suspicion_threshold):
            self._answer(trace_id, parent_local, None, TraceOutcome.LIVE)
            return
        if trace_id in entry.visited:
            self._answer(trace_id, parent_local, None, TraceOutcome.GARBAGE)
            return
        record = self._ensure_record(trace_id)
        entry.visited.add(trace_id)
        record.visited_inrefs.add(target)
        entry.back_threshold += self.config.back_threshold_increment

        frame = self._new_frame(trace_id, INREF, target, parent_local, None)
        sources = sorted(entry.sources)
        frame.pending = len(sources)
        if frame.pending == 0:
            self._complete(frame, TraceOutcome.GARBAGE)
            return
        self._arm_frame_timeout(frame)
        for source in sources:
            self.send(
                source,
                BackCall(trace_id=trace_id, target=target, reply_to=frame.frame_id),
            )

    # -- frame lifecycle --------------------------------------------------------------

    def _new_frame(
        self,
        trace_id: TraceId,
        kind: str,
        ioref: ObjectId,
        parent_local: Optional[FrameId],
        parent_remote: Optional[Tuple[SiteId, FrameId]],
    ) -> Frame:
        frame_id = FrameId(site=self.site_id, seq=self._next_frame_seq)
        self._next_frame_seq += 1
        frame = Frame(
            frame_id=frame_id,
            trace_id=trace_id,
            kind=kind,
            ioref=ioref,
            parent_local=parent_local,
            parent_remote=parent_remote,
        )
        self._frames[frame_id] = frame
        self._active_by_ioref.setdefault(frame.key, set()).add(frame_id)
        return frame

    def _arm_frame_timeout(self, frame: Frame) -> None:
        frame_id = frame.frame_id
        frame.timeout = self.scheduler.schedule(
            self.config.backtrace_timeout,
            lambda: self._frame_timed_out(frame_id),
            label=f"frame-timeout:{frame_id}",
        )

    def _frame_timed_out(self, frame_id: FrameId) -> None:
        frame = self._frames.get(frame_id)
        if frame is None or frame.completed:
            return
        # Section 4.6: a site waiting for a response that never comes can
        # safely assume the call returned Live.
        self.metrics.incr("backtrace.frame_timeouts")
        self._complete(frame, TraceOutcome.LIVE)

    def _child_done(
        self, frame: Frame, verdict: TraceOutcome, participants: Set[SiteId]
    ) -> None:
        if frame.completed:
            return
        frame.participants.update(participants)
        if verdict.is_live:
            self._complete(frame, TraceOutcome.LIVE)
            return
        frame.pending -= 1
        if frame.pending <= 0:
            self._complete(frame, TraceOutcome.GARBAGE)

    def _complete(self, frame: Frame, verdict: TraceOutcome) -> None:
        if frame.completed:
            return
        frame.completed = True
        frame.cancel_timeout()
        if frame.forced_live:
            verdict = TraceOutcome.LIVE
        active = self._active_by_ioref.get(frame.key)
        if active is not None:
            active.discard(frame.frame_id)
            if not active:
                del self._active_by_ioref[frame.key]
        del self._frames[frame.frame_id]
        participants = set(frame.participants)
        participants.add(self.site_id)

        if frame.parent_local is not None:
            parent = self._frames.get(frame.parent_local)
            if parent is not None and not parent.completed:
                self._child_done(parent, verdict, participants)
        elif frame.parent_remote is not None:
            caller_site, caller_frame = frame.parent_remote
            self.send(
                caller_site,
                BackReply(
                    trace_id=frame.trace_id,
                    reply_to=caller_frame,
                    verdict=verdict,
                    participants=frozenset(participants),
                ),
            )
        else:
            self._finish_trace(frame.trace_id, verdict, participants)

    def _answer(
        self,
        trace_id: TraceId,
        parent_local: Optional[FrameId],
        parent_remote: Optional[Tuple[SiteId, FrameId]],
        verdict: TraceOutcome,
    ) -> None:
        """Deliver an immediate (frameless) verdict to whoever asked."""
        if parent_local is not None:
            parent = self._frames.get(parent_local)
            if parent is not None and not parent.completed:
                self._child_done(parent, verdict, {self.site_id})
        elif parent_remote is not None:
            caller_site, caller_frame = parent_remote
            self.send(
                caller_site,
                BackReply(
                    trace_id=trace_id,
                    reply_to=caller_frame,
                    verdict=verdict,
                    participants=frozenset({self.site_id}),
                ),
            )
        else:
            # The root step itself resolved immediately (e.g. the outref
            # turned clean before the trace began).
            self._finish_trace(trace_id, verdict, {self.site_id})

    # -- outcome ------------------------------------------------------------------------

    def _finish_trace(
        self, trace_id: TraceId, verdict: TraceOutcome, participants: Set[SiteId]
    ) -> None:
        """Report phase, run at the initiator (section 4.5)."""
        if trace_id.initiator != self.site_id:
            raise BackTraceError(f"{self.site_id} finishing foreign trace {trace_id}")
        if verdict.is_garbage:
            self.metrics.incr("backtrace.completed_garbage")
        else:
            self.metrics.incr("backtrace.completed_live")
        for participant in sorted(participants):
            if participant != self.site_id:
                self.send(participant, BackOutcome(trace_id=trace_id, verdict=verdict))
        self._apply_outcome(trace_id, verdict)

    def _apply_outcome(self, trace_id: TraceId, verdict: TraceOutcome) -> None:
        """Flag (Garbage) or unmark (Live) the iorefs this trace visited here."""
        record = self._records.pop(trace_id, None)
        if record is None:
            return
        record.finished = True
        record.cancel_timeout()
        if record.root_outref is not None:
            self._active_roots.pop(record.root_outref, None)
        for target in record.visited_inrefs:
            entry = self.inrefs.get(target)
            if entry is None:
                continue
            entry.visited.discard(trace_id)
            if verdict.is_garbage:
                if not entry.garbage:
                    entry.garbage = True
                    self.metrics.incr("backtrace.inrefs_flagged")
        for target in record.visited_outrefs:
            entry = self.outrefs.get(target)
            if entry is not None:
                entry.visited.discard(trace_id)
        # Abort any frames of this trace still pending at this site: the
        # trace is over; answering anything further is pointless.  Late
        # messages for them are dropped as stale.
        lingering = [f for f in self._frames.values() if f.trace_id == trace_id]
        for frame in lingering:
            frame.completed = True
            frame.cancel_timeout()
            active = self._active_by_ioref.get(frame.key)
            if active is not None:
                active.discard(frame.frame_id)
                if not active:
                    del self._active_by_ioref[frame.key]
            del self._frames[frame.frame_id]
        if self.on_outcome_applied is not None:
            visited_here = len(record.visited_inrefs) + len(record.visited_outrefs)
            self.on_outcome_applied(trace_id, verdict, visited_here)
        if self.on_outcome is not None and record.is_initiator:
            self.on_outcome(trace_id, verdict)
