"""Epoch-guarded back-trace verdict cache (section 4.6 extension).

The paper expects live suspects to be re-examined repeatedly: a Live verdict
only holds "for now", so a stable live cycle above the threshold is
back-traced over and over, each time paying the full BackCall/BackReply
fan-out.  This cache makes re-examination O(1) while nothing changed:

- when a trace completes **Live**, every participant site records, for each
  ioref the trace visited *there*, a snapshot of the per-entry mutation
  epochs of that whole visited set (plus the suspicion threshold in force);
- a later trace -- or the back-trace trigger check -- arriving at one of
  those iorefs answers Live from the cache without forking a frame or
  sending a message, provided every snapshotted epoch is unchanged, the
  threshold is unchanged, and the snapshot is younger than its TTL;
- invalidation is automatic: every mutation, update message, insert, or
  clean-rule event bumps an entry epoch (``InrefEntry.epoch`` /
  ``OutrefEntry.epoch``), and a deleted entry fails the existence check.
  The clean rule additionally purges eagerly (:meth:`invalidate_ioref`).

Only Live is ever cached.  A Garbage verdict is relative to one trace's
visited marks (the same ioref answers Garbage to the trace that already
visited it and must answer normally to any other), so sharing it across
traces would be unsound; sharing Live is merely conservative -- the paper's
timeouts already assume Live freely.  Staleness therefore never threatens
safety, only promptness, and the TTL bounds that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ...gc.inrefs import InrefTable
from ...gc.outrefs import OutrefTable
from ...metrics import MetricsRecorder
from .frames import INREF, IorefKey


@dataclass(frozen=True)
class CachedLive:
    """One Live trace's footprint at this site.

    Shared by every ioref key it covers: a single stale epoch anywhere in
    the footprint invalidates the verdict for all of them, because the Live
    answer was derived from the joint state of the whole visited set.
    """

    entries: Tuple[Tuple[IorefKey, int], ...]
    threshold: int
    expires_at: float


class VerdictCache:
    """Per-site cache of Live back-trace verdicts, keyed by ioref."""

    def __init__(
        self,
        inrefs: InrefTable,
        outrefs: OutrefTable,
        metrics: Optional[MetricsRecorder] = None,
    ):
        self.inrefs = inrefs
        self.outrefs = outrefs
        self.metrics = metrics or MetricsRecorder()
        self._by_key: Dict[IorefKey, CachedLive] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    def _entry_epoch(self, key: IorefKey) -> Optional[int]:
        kind, target = key
        entry = self.inrefs.get(target) if kind == INREF else self.outrefs.get(target)
        return None if entry is None else entry.epoch

    # -- recording ---------------------------------------------------------------

    def record_live(self, keys: Iterable[IorefKey], expires_at: float) -> bool:
        """Snapshot the current epochs of ``keys`` and cache Live for each.

        Returns False (caching nothing) if any visited entry has already
        been deleted -- the snapshot would be unverifiable.
        """
        snapshot: List[Tuple[IorefKey, int]] = []
        for key in keys:
            epoch = self._entry_epoch(key)
            if epoch is None:
                return False
            snapshot.append((key, epoch))
        if not snapshot:
            return False
        cached = CachedLive(
            entries=tuple(snapshot),
            threshold=self.inrefs.suspicion_threshold,
            expires_at=expires_at,
        )
        for key, _ in cached.entries:
            self._by_key[key] = cached
        self.metrics.incr("backtrace.cache_stores")
        return True

    # -- lookup -------------------------------------------------------------------

    def lookup(self, key: IorefKey, now: float) -> bool:
        """True iff a still-valid Live verdict covers ``key``."""
        return self.lookup_expiry(key, now) is not None

    def lookup_expiry(self, key: IorefKey, now: float) -> Optional[float]:
        """Expiry of the still-valid Live verdict covering ``key``, or None.

        The expiry is handed to the consuming trace so any verdict derived
        from this entry is re-cached with *at most* this lifetime -- a chain
        of verdicts leaning on each other can then never outlive the
        original grounded one.  A stale or expired snapshot found here is
        dropped (for all the keys it covers) and counted as an invalidation.
        """
        cached = self._by_key.get(key)
        if cached is None:
            return None
        if now >= cached.expires_at or cached.threshold != self.inrefs.suspicion_threshold:
            self._drop(cached)
            return None
        for entry_key, epoch in cached.entries:
            if self._entry_epoch(entry_key) != epoch:
                self._drop(cached)
                return None
        self.metrics.incr("backtrace.cache_hits")
        return cached.expires_at

    # -- invalidation -----------------------------------------------------------

    def _drop(self, cached: CachedLive) -> None:
        removed = False
        for key, _ in cached.entries:
            if self._by_key.get(key) is cached:
                del self._by_key[key]
                removed = True
        if removed:
            self.metrics.incr("backtrace.cache_invalidated")

    def invalidate_ioref(self, key: IorefKey) -> None:
        """Eagerly purge every snapshot whose footprint includes ``key``.

        Used by the clean rule: cleaning also bumps the entry's epoch, but
        purging here keeps the cache from ever *answering* through lazy
        validation of an ioref the clean rule touched.
        """
        stale = [
            cached
            for cached in set(self._by_key.values())
            if any(entry_key == key for entry_key, _ in cached.entries)
        ]
        for cached in stale:
            self._drop(cached)

    def clear(self) -> None:
        self._by_key.clear()
