"""Shared types for the two back-information algorithms.

The algorithms run as phase two of a local trace: phase one has already
marked every object reachable from clean roots (persistent roots, variable
roots, clean inrefs).  What remains is the *suspected* region of the heap,
over which we compute, for each suspected inref, the set of suspected outrefs
locally reachable from it (its *outset*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Set

from ...ids import ObjectId, SiteId
from ...store.heap import Heap


@dataclass
class TraceEnvironment:
    """Everything a back-information algorithm needs to see of the site.

    - ``heap``: the local object store (only suspected objects are traversed);
    - ``clean_objects``: objects marked by the clean phase of this local
      trace; tracing stops at them ("black" objects in section 5.1);
    - ``is_clean_outref``: whether a remote reference's outref is clean as of
      this trace (reached from a clean root in phase one, or pinned by the
      insert barrier); clean outrefs never enter outsets.
    """

    heap: Heap
    clean_objects: Set[ObjectId]
    is_clean_outref: Callable[[ObjectId], bool]

    @property
    def site_id(self) -> SiteId:
        return self.heap.site_id

    def is_clean_object(self, oid: ObjectId) -> bool:
        return oid in self.clean_objects


@dataclass
class BackInfoResult:
    """Outcome of one back-information computation.

    ``outsets`` maps each suspected inref target to the frozenset of
    suspected outref targets locally reachable from it.  ``visited_objects``
    is the set of suspected objects the computation traversed (they are live
    w.r.t. this trace and must survive the sweep).  The remaining fields are
    the cost counters benchmark E3/E4 report.
    """

    outsets: Dict[ObjectId, FrozenSet[ObjectId]] = field(default_factory=dict)
    visited_objects: Set[ObjectId] = field(default_factory=set)
    objects_scanned: int = 0
    edges_examined: int = 0
    unions_computed: int = 0
    union_memo_hits: int = 0
    distinct_outsets: int = 0

    def inset_of(self, outref_target: ObjectId) -> FrozenSet[ObjectId]:
        """Derived inset of one outref (prefer :func:`invert_outsets` in bulk)."""
        members = [
            inref for inref, outset in self.outsets.items() if outref_target in outset
        ]
        return frozenset(members)


def invert_outsets(
    outsets: Dict[ObjectId, FrozenSet[ObjectId]]
) -> Dict[ObjectId, FrozenSet[ObjectId]]:
    """Turn outsets (inref -> outrefs) into insets (outref -> inrefs).

    The paper stores whichever representation is convenient, noting they are
    "two different representations of reachability information"; back traces
    take local steps via insets.
    """
    accumulator: Dict[ObjectId, Set[ObjectId]] = {}
    for inref_target, outset in outsets.items():
        for outref_target in outset:
            accumulator.setdefault(outref_target, set()).add(inref_target)
    return {target: frozenset(members) for target, members in accumulator.items()}


def suspected_refs_of(
    env: TraceEnvironment, oid: ObjectId
) -> List[ObjectId]:
    """References of ``oid`` that remain interesting to a suspected trace.

    Filters out clean local objects and clean outrefs, mirroring the
    ``if z is clean continue loop`` line of the paper's pseudocode.
    """
    obj = env.heap.maybe_get(oid)
    if obj is None:
        return []
    interesting = []
    for ref in obj.iter_refs():
        if ref.site == env.site_id:
            if not env.is_clean_object(ref) and env.heap.contains(ref):
                interesting.append(ref)
        else:
            if not env.is_clean_outref(ref):
                interesting.append(ref)
    return interesting
