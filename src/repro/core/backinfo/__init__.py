"""Computing back information (section 5 of the paper).

Back information consists of source lists of inrefs (maintained by the
reference-listing substrate) and **insets of suspected outrefs**, computed
here as the inverse of **outsets of suspected inrefs**:

- :func:`compute_outsets_independent` -- section 5.1: one DFS per suspected
  inref; simple but retraces shared objects, O(n_i * (n + e)).
- :func:`compute_outsets_bottom_up` -- section 5.2: a single pass combining
  the trace with Tarjan's SCC algorithm; every object is scanned once and
  outset unions are memoized over a canonical (hash-consed) store, giving
  near-linear expected cost.

Both return the same :class:`BackInfoResult`; property tests assert equality.
"""

from .base import BackInfoResult, TraceEnvironment, invert_outsets
from .independent import compute_outsets_independent
from .bottomup import compute_outsets_bottom_up
from .outsets import OutsetStore

__all__ = [
    "BackInfoResult",
    "TraceEnvironment",
    "invert_outsets",
    "compute_outsets_independent",
    "compute_outsets_bottom_up",
    "OutsetStore",
]
