"""Bottom-up outset computation (section 5.2).

A single depth-first traversal over the suspected region computes the outset
of every suspected object, combining three things exactly as the paper's
final pseudocode does:

- tracing (each suspected object is scanned once, across *all* suspected
  inrefs -- once an object's outset is known it is reused, never retraced);
- Tarjan's strongly-connected-components algorithm [Tar72], because a plain
  single-visit trace misses outrefs across backward edges (Figure 4): all
  objects in a strongly connected component must share one outset, which the
  algorithm installs when the component's *leader* finishes;
- outset unions over a canonical store with memoization
  (:class:`~repro.core.backinfo.outsets.OutsetStore`), which makes total union
  work near-linear in the expected case.

The implementation is iterative (explicit work stack) so heaps with long
reference chains do not hit Python's recursion limit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from ...ids import ObjectId
from .base import BackInfoResult, TraceEnvironment
from .outsets import OutsetStore


def compute_outsets_bottom_up(
    env: TraceEnvironment, suspected_inref_targets: Iterable[ObjectId]
) -> BackInfoResult:
    """Compute outsets of all suspected inrefs in one shared traversal."""
    state = _TarjanState(env)
    for inref_target in suspected_inref_targets:
        if env.is_clean_object(inref_target) or not env.heap.contains(inref_target):
            state.result.outsets[inref_target] = frozenset()
            continue
        if inref_target not in state.index:
            state.traverse_from(inref_target)
        outset_id = state.outset_id[inref_target]
        state.result.outsets[inref_target] = state.store.get(outset_id)
    result = state.result
    result.unions_computed = state.store.unions_computed
    result.union_memo_hits = state.store.union_memo_hits
    # Exclude the always-present empty outset from the distinct count so the
    # number is comparable with the independent algorithm's.
    distinct = {outset for outset in result.outsets.values()}
    result.distinct_outsets = len(distinct)
    return result


class _TarjanState:
    """Mutable traversal state shared across all suspected inrefs."""

    def __init__(self, env: TraceEnvironment):
        self.env = env
        self.store = OutsetStore()
        self.result = BackInfoResult()
        self.index: Dict[ObjectId, int] = {}
        self.low: Dict[ObjectId, int] = {}
        self.outset_id: Dict[ObjectId, int] = {}
        self.on_stack: Set[ObjectId] = set()
        self.scc_stack: List[ObjectId] = []
        self.counter = 0

    def _discover(self, oid: ObjectId) -> None:
        """First visit of a suspected object: assign DFS index, push stacks."""
        self.index[oid] = self.counter
        self.low[oid] = self.counter
        self.counter += 1
        self.scc_stack.append(oid)
        self.on_stack.add(oid)
        self.outset_id[oid] = OutsetStore.EMPTY
        self.result.objects_scanned += 1
        self.result.visited_objects.add(oid)

    def traverse_from(self, root: ObjectId) -> None:
        """Iterative Tarjan DFS from one unvisited suspected object."""
        env = self.env
        self._discover(root)
        work: List[Tuple[ObjectId, Iterator[ObjectId]]] = [
            (root, iter(env.heap.get(root).refs))
        ]
        while work:
            node, ref_iter = work[-1]
            pushed_child = False
            for ref in ref_iter:
                self.result.edges_examined += 1
                if ref.site != env.site_id:
                    # Remote reference: a suspected outref joins the outset;
                    # a clean outref is skipped (back traces stop there).
                    if not env.is_clean_outref(ref):
                        self.outset_id[node] = self.store.add(self.outset_id[node], ref)
                    continue
                if env.is_clean_object(ref) or not env.heap.contains(ref):
                    continue
                if ref not in self.index:
                    self._discover(ref)
                    work.append((ref, iter(env.heap.get(ref).refs)))
                    pushed_child = True
                    break
                # Already visited: reuse its (possibly partial) outset.  For
                # a back edge into the current component the partial union is
                # completed when the leader pops the component; for a cross
                # edge into a finished component the outset is already final.
                self.outset_id[node] = self.store.union(
                    self.outset_id[node], self.outset_id[ref]
                )
                if ref in self.on_stack:
                    self.low[node] = min(self.low[node], self.index[ref])
            if pushed_child:
                continue
            # node's references are exhausted: finish it.
            work.pop()
            if self.low[node] == self.index[node]:
                self._pop_component(node)
            if work:
                parent = work[-1][0]
                self.outset_id[parent] = self.store.union(
                    self.outset_id[parent], self.outset_id[node]
                )
                self.low[parent] = min(self.low[parent], self.low[node])

    def _pop_component(self, leader: ObjectId) -> None:
        """Install the leader's (complete) outset on every component member."""
        leader_outset = self.outset_id[leader]
        while True:
            member = self.scc_stack.pop()
            self.on_stack.remove(member)
            self.outset_id[member] = leader_outset
            # Mirror the paper's "Leader[z] := infinity": a finished member
            # must not pull later nodes' lowlinks down.  Leaving ``low`` as
            # is would be wrong only if we consulted low of off-stack nodes,
            # which the edge handling above never does.
            if member == leader:
                break
