"""Independent tracing from each suspected inref (section 5.1).

Conceptually each suspected inref traces with its own color: a trace may
revisit objects already visited on behalf of other suspected inrefs, but
never objects marked clean ("black") by the clean phase.  The computed
outsets are exact, at a worst-case cost of O(n_i * (n + e)) object scans --
benchmark E3 measures exactly this blow-up against the bottom-up algorithm.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ...ids import ObjectId
from .base import BackInfoResult, TraceEnvironment


def compute_outsets_independent(
    env: TraceEnvironment, suspected_inref_targets: Iterable[ObjectId]
) -> BackInfoResult:
    """Compute outsets with one fresh DFS per suspected inref."""
    result = BackInfoResult()
    distinct: Set[frozenset] = set()
    for inref_target in suspected_inref_targets:
        outset = _trace_one(env, inref_target, result)
        result.outsets[inref_target] = outset
        distinct.add(outset)
    result.distinct_outsets = len(distinct)
    return result


def _trace_one(
    env: TraceEnvironment, inref_target: ObjectId, result: BackInfoResult
) -> frozenset:
    """DFS from one inref target over suspected objects only."""
    outset: Set[ObjectId] = set()
    visited: Set[ObjectId] = set()
    if env.is_clean_object(inref_target) or not env.heap.contains(inref_target):
        return frozenset()
    stack: List[ObjectId] = [inref_target]
    while stack:
        oid = stack.pop()
        if oid in visited:
            continue
        visited.add(oid)
        result.objects_scanned += 1
        result.visited_objects.add(oid)
        for ref in env.heap.get(oid).iter_refs():
            result.edges_examined += 1
            if ref.site == env.site_id:
                if (
                    ref not in visited
                    and not env.is_clean_object(ref)
                    and env.heap.contains(ref)
                ):
                    stack.append(ref)
            else:
                if not env.is_clean_outref(ref):
                    outset.add(ref)
    return frozenset(outset)
