"""Canonical outset storage with memoized unions (section 5.2).

Two optimizations make the bottom-up computation near-linear in practice:

1. **Canonical form**: an outset is interned once; suspects with equal
   outsets share one stored copy.  On well-clustered heaps there are far
   fewer distinct outsets than suspected objects (chains and strongly
   connected components all share a single outset).
2. **Memoized unions**: a table maps ordered pairs of outset ids to the id of
   their union, so repeating a union costs O(1).

The store is created fresh for each local trace and discarded afterwards;
only the final insets/outsets survive, exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ...ids import ObjectId

OutsetId = int


class OutsetStore:
    """Hash-consed frozensets of outref targets, with memoized unions."""

    def __init__(self) -> None:
        self._sets: List[FrozenSet[ObjectId]] = [frozenset()]
        self._ids: Dict[FrozenSet[ObjectId], OutsetId] = {frozenset(): 0}
        self._union_memo: Dict[Tuple[OutsetId, OutsetId], OutsetId] = {}
        self._add_memo: Dict[Tuple[OutsetId, ObjectId], OutsetId] = {}
        self.unions_computed = 0
        self.union_memo_hits = 0

    EMPTY: OutsetId = 0

    def __len__(self) -> int:
        """Number of distinct outsets interned (including the empty set)."""
        return len(self._sets)

    def get(self, outset_id: OutsetId) -> FrozenSet[ObjectId]:
        return self._sets[outset_id]

    def intern(self, members: FrozenSet[ObjectId]) -> OutsetId:
        """Return the id of ``members``, creating an entry if new."""
        existing = self._ids.get(members)
        if existing is not None:
            return existing
        new_id = len(self._sets)
        self._sets.append(members)
        self._ids[members] = new_id
        return new_id

    def add(self, outset_id: OutsetId, member: ObjectId) -> OutsetId:
        """Union with a singleton: the common case of meeting an outref."""
        key = (outset_id, member)
        cached = self._add_memo.get(key)
        if cached is not None:
            return cached
        current = self._sets[outset_id]
        if member in current:
            result = outset_id
        else:
            result = self.intern(current | {member})
        self._add_memo[key] = result
        return result

    def union(self, left: OutsetId, right: OutsetId) -> OutsetId:
        """Memoized union of two stored outsets."""
        if left == right:
            return left
        if left == self.EMPTY:
            return right
        if right == self.EMPTY:
            return left
        key = (left, right) if left < right else (right, left)
        cached = self._union_memo.get(key)
        if cached is not None:
            self.union_memo_hits += 1
            return cached
        self.unions_computed += 1
        left_set = self._sets[left]
        right_set = self._sets[right]
        if left_set <= right_set:
            result = right
        elif right_set <= left_set:
            result = left
        else:
            result = self.intern(left_set | right_set)
        self._union_memo[key] = result
        return result

    def storage_units(self) -> int:
        """Total elements across distinct stored outsets (space accounting)."""
        return sum(len(members) for members in self._sets)
