"""The distance heuristic (section 3): the clean phase of a local trace.

The *distance* of an object is the minimum number of inter-site references on
any path from a persistent root to it; garbage has distance infinity.  Sites
estimate distances cooperatively:

- a persistent root behaves like an inref of distance 0 (application-variable
  roots are treated the same way, section 6.3);
- the local trace visits roots in increasing distance order, so when it first
  reaches an outref the outref's distance becomes ``1 + distance(root)`` --
  the minimum over all reaching roots;
- update messages carry outref distances to target sites, which fold them
  into the per-source distances of their inrefs.

This module implements the *clean phase*: tracing from all roots whose
distance is at or below the suspicion threshold.  Objects it marks are
*clean*; everything else is the suspected region handled by
:mod:`repro.core.backinfo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from ..ids import ObjectId
from ..store.heap import Heap

try:  # numpy is an optional extra (pip install .[fast])
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None


@dataclass
class CleanPhaseResult:
    """Output of the clean phase of one local trace.

    - ``clean_objects``: every local object reached from a clean root;
    - ``outref_distances``: for each outref reached, the minimum
      ``1 + distance(root)`` over the clean roots that reach it;
    - ``clean_variable_outrefs``: outrefs held directly in mutator variables
      (roots of distance 0, so their distance estimate is 1);
    - ``objects_scanned`` / ``edges_examined``: cost counters.
    """

    clean_objects: Set[ObjectId] = field(default_factory=set)
    outref_distances: Dict[ObjectId, int] = field(default_factory=dict)
    clean_variable_outrefs: Set[ObjectId] = field(default_factory=set)
    objects_scanned: int = 0
    edges_examined: int = 0


def trace_clean_phase(
    heap: Heap,
    roots: Iterable[Tuple[ObjectId, int]],
    variable_outrefs: Iterable[ObjectId] = (),
) -> CleanPhaseResult:
    """Trace from clean roots in increasing distance order.

    ``roots`` yields (local object id, root distance) pairs: persistent and
    variable roots at distance 0, clean inrefs at their estimated distance.
    ``variable_outrefs`` are remote references held directly by mutator
    variables; they are clean by definition and receive distance 1.

    Each object is visited once.  Because roots are processed smallest
    distance first, the distance recorded for an outref on first encounter is
    already the minimum, mirroring the paper's ordering argument.
    """
    result = CleanPhaseResult()
    for target in variable_outrefs:
        result.clean_variable_outrefs.add(target)
        current = result.outref_distances.get(target)
        result.outref_distances[target] = 1 if current is None else min(current, 1)

    ordered_roots = sorted(roots, key=lambda pair: (pair[1], pair[0]))
    for root, root_distance in ordered_roots:
        if root.site != heap.site_id or not heap.contains(root):
            continue
        _trace_from_root(heap, root, root_distance, result)
    return result


def trace_clean_phase_flat(
    heap: Heap,
    roots: Iterable[Tuple[ObjectId, int]],
    variable_outrefs: Iterable[ObjectId] = (),
) -> CleanPhaseResult:
    """The clean phase over the heap's flat-graph mirror.

    Semantically identical to :func:`trace_clean_phase` (same clean set,
    same outref distances, same cost counters -- the integration twins
    assert byte-equality), but the traversal runs over dense int indices:
    the mark "set" is the heap's reusable bytearray bitmap, the stack holds
    ints, and local successor edges cost a list-of-int iteration plus two
    bytearray probes instead of ObjectId hashing.  The bitmap is zeroed
    index-by-index on the way out, so between traces it is all-zero and no
    per-trace allocation proportional to the heap survives.
    """
    result = CleanPhaseResult()
    distances = result.outref_distances
    for target in variable_outrefs:
        result.clean_variable_outrefs.add(target)
        current = distances.get(target)
        distances[target] = 1 if current is None else min(current, 1)

    idx_map, alive, succ_local, succ_remote, mark, oids = heap.flat_graph()
    distances_get = distances.get
    site_id = heap.site_id
    marked: List[int] = []
    marked_append = marked.append
    scanned = 0
    edges = 0
    for root, root_distance in sorted(roots, key=lambda pair: (pair[1], pair[0])):
        if root.site != site_id:
            continue
        ridx = idx_map.get(root)
        if ridx is None or not alive[ridx] or mark[ridx]:
            continue
        outref_distance = root_distance + 1
        stack: List[int] = [ridx]
        stack_pop = stack.pop
        stack_append = stack.append
        while stack:
            i = stack_pop()
            if mark[i]:
                continue
            mark[i] = 1
            marked_append(i)
            scanned += 1
            loc = succ_local[i]
            rem = succ_remote[i]
            edges += len(loc) + len(rem)
            for s in loc:
                if not mark[s] and alive[s]:
                    stack_append(s)
            for ref in rem:
                current = distances_get(ref)
                if current is None or outref_distance < current:
                    distances[ref] = outref_distance
    if len(marked) == len(heap):
        # Everything alive was marked (the common case for a quiescent full
        # trace): the clean set IS the resident set, and the heap hands out
        # a C-level copy of it without re-hashing a single ObjectId.
        result.clean_objects = heap.object_id_set()
        for i in marked:
            mark[i] = 0
    else:
        clean_add = result.clean_objects.add
        for i in marked:
            clean_add(oids[i])
            mark[i] = 0
    result.objects_scanned = scanned
    result.edges_examined = edges
    return result


#: Shape gate for the vector kernel.  Level-synchronous BFS pays a fixed
#: numpy cost per *level*, so a deep narrow graph (a chain: one object per
#: level) is its worst case -- thousands of tiny array operations doing the
#: work a scalar DFS finishes in one pass.  When the average frontier width
#: over the first ``_NARROW_PROBE_LEVELS`` levels stays below
#: ``_NARROW_MIN_WIDTH``, the kernel abandons the sweep (restoring the mark
#: bitmap), reruns the trace on the flat scalar kernel, and skips numpy for
#: the next ``_NARROW_BACKOFF_TRACES`` traces on that heap before probing
#: again -- so a heap that later widens gets the vector path back.
_NARROW_PROBE_LEVELS = 64
_NARROW_MIN_WIDTH = 8
_NARROW_BACKOFF_TRACES = 128


def trace_clean_phase_vector(
    heap: Heap,
    roots: Iterable[Tuple[ObjectId, int]],
    variable_outrefs: Iterable[ObjectId] = (),
) -> CleanPhaseResult:
    """The clean phase as numpy frontier sweeps over the CSR mirror.

    Same contract as :func:`trace_clean_phase` / the flat kernel: identical
    clean set, outref distances, and cost counters.  The equivalence
    argument: in the sequential kernels an object's *label* -- the root
    distance whose DFS first marks it -- is the minimum distance over all
    clean roots that reach it, because roots run in ascending distance
    order and marked objects are never re-entered.  Level-synchronous BFS
    per distinct root distance computes exactly those labels, so every
    outref distance (``1 + label`` of a holder, minimised over holders via
    ``np.minimum.at``) matches, and the counters are order-independent
    (scanned = number marked, edges = summed degree of marked objects).

    Falls back to the flat kernel when numpy is unavailable, and bails out
    to it mid-sweep when the graph turns out to be deep and narrow (see
    ``_NARROW_PROBE_LEVELS``); either way the caller sees the identical
    result.  The mark bitmap is borrowed from the heap as a writable uint8
    view and restored to all-zero before returning; no view outlives the
    call (the heap's buffers must stay resizable).
    """
    backoff = heap.vector_kernel_backoff
    if backoff > 0:
        heap.vector_kernel_backoff = backoff - 1
        return trace_clean_phase_flat(heap, roots, variable_outrefs)
    csr = heap.csr_graph() if np is not None else None
    if csr is None:
        return trace_clean_phase_flat(heap, roots, variable_outrefs)
    root_list = list(roots)

    result = CleanPhaseResult()
    distances = result.outref_distances
    for target in variable_outrefs:
        result.clean_variable_outrefs.add(target)
        current = distances.get(target)
        distances[target] = 1 if current is None else min(current, 1)

    idx_map, alive_buf, _succ_local, _succ_remote, mark_buf, oids = (
        heap.flat_graph()
    )
    n = len(oids)
    indptr, indices, r_indptr, r_indices, r_oids = csr
    alive = np.frombuffer(alive_buf, dtype=np.uint8, count=n)
    mark = np.frombuffer(mark_buf, dtype=np.uint8, count=n)

    by_distance: Dict[int, List[int]] = {}
    site_id = heap.site_id
    for root, root_distance in root_list:
        if root.site != site_id:
            continue
        ridx = idx_map.get(root)
        if ridx is not None:
            by_distance.setdefault(root_distance, []).append(ridx)

    no_hit = np.iinfo(np.int64).max
    remote_min = np.full(len(r_oids), no_hit, dtype=np.int64)
    marked_chunks: List["np.ndarray"] = []
    levels = 0
    marked_total = 0
    for root_distance in sorted(by_distance):
        seeds = np.array(by_distance[root_distance], dtype=np.int64)
        seeds = seeds[(alive[seeds] != 0) & (mark[seeds] == 0)]
        if not seeds.size:
            continue
        frontier = np.unique(seeds)
        level_chunks: List["np.ndarray"] = []
        while frontier.size:
            mark[frontier] = 1
            level_chunks.append(frontier)
            levels += 1
            marked_total += int(frontier.size)
            if (
                levels >= _NARROW_PROBE_LEVELS
                and marked_total < levels * _NARROW_MIN_WIDTH
            ):
                for chunk in marked_chunks:
                    mark[chunk] = 0
                for chunk in level_chunks:
                    mark[chunk] = 0
                heap.vector_kernel_backoff = _NARROW_BACKOFF_TRACES
                return trace_clean_phase_flat(heap, root_list, variable_outrefs)
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if not total:
                break
            # Ragged gather: for each frontier node, its slice of `indices`.
            offsets = np.repeat(starts, counts) + (
                np.arange(total, dtype=np.int64)
                - np.repeat(np.cumsum(counts) - counts, counts)
            )
            succ = indices[offsets]
            succ = succ[(alive[succ] != 0) & (mark[succ] == 0)]
            frontier = np.unique(succ)
        level = (
            level_chunks[0]
            if len(level_chunks) == 1
            else np.concatenate(level_chunks)
        )
        marked_chunks.append(level)
        # Everything marked at this level has label `root_distance`, so its
        # remote references see a candidate distance of root_distance + 1.
        rstarts = r_indptr[level]
        rcounts = r_indptr[level + 1] - rstarts
        rtotal = int(rcounts.sum())
        if rtotal:
            roffsets = np.repeat(rstarts, rcounts) + (
                np.arange(rtotal, dtype=np.int64)
                - np.repeat(np.cumsum(rcounts) - rcounts, rcounts)
            )
            np.minimum.at(remote_min, r_indices[roffsets], root_distance + 1)

    if marked_chunks:
        marked = (
            marked_chunks[0]
            if len(marked_chunks) == 1
            else np.concatenate(marked_chunks)
        )
        result.objects_scanned = int(marked.size)
        result.edges_examined = int(
            (indptr[marked + 1] - indptr[marked]).sum()
            + (r_indptr[marked + 1] - r_indptr[marked]).sum()
        )
        if marked.size == len(heap):
            result.clean_objects = heap.object_id_set()
        else:
            clean_add = result.clean_objects.add
            for i in marked.tolist():
                clean_add(oids[i])
        mark[marked] = 0

    for rid in np.flatnonzero(remote_min != no_hit).tolist():
        ref = r_oids[rid]
        value = int(remote_min[rid])
        current = distances.get(ref)
        if current is None or value < current:
            distances[ref] = value
    return result


def _trace_from_root(
    heap: Heap, root: ObjectId, root_distance: int, result: CleanPhaseResult
) -> None:
    """DFS from one clean root, extending shared marks and outref distances.

    This is the hottest loop in the simulator (every local trace touches
    every edge of every clean object), so lookups are hoisted out of the
    per-edge path: the heap's object map and the result sets are bound to
    locals once, each object's successor list is scanned directly via the
    no-copy ``ref_view``, and the cost counters are accumulated in locals
    and folded back at the end.
    """
    clean = result.clean_objects
    if root in clean:
        return
    objects = heap.objects_map()
    site_id = heap.site_id
    distances = result.outref_distances
    distances_get = distances.get
    clean_add = clean.add
    stack: List[ObjectId] = [root]
    stack_pop = stack.pop
    stack_append = stack.append
    outref_distance = root_distance + 1
    scanned = 0
    edges = 0
    while stack:
        oid = stack_pop()
        if oid in clean:
            continue
        clean_add(oid)
        scanned += 1
        refs = objects[oid].ref_view
        edges += len(refs)
        for ref in refs:
            if ref.site == site_id:
                if ref not in clean and ref in objects:
                    stack_append(ref)
            else:
                current = distances_get(ref)
                if current is None or outref_distance < current:
                    distances[ref] = outref_distance
    result.objects_scanned += scanned
    result.edges_examined += edges
