"""The transfer barrier and the clean rule (sections 6.1 and 6.4).

**Transfer barrier**: when a mutator transfers (or traverses) a reference
``i`` into a site that has a *suspected* inref for ``i``, the site cleans
inref ``i`` and every outref in ``i``'s outset.  This maintains the local
safety invariant -- for any suspected outref o, o.inset includes all inrefs o
is locally reachable from -- because any *new* local path to a suspect must
have been created by a mutator that first traversed an old path through some
suspected inref, and the barrier cleans everything downstream of that inref.
The cleaning expires at the site's next local trace, which recomputes back
information that reflects the new paths; completeness is preserved because a
barrier only ever cleans outrefs that were genuinely live at the last trace.

**Clean rule**: if an ioref is cleaned while a back trace is active there,
the trace's return value is forced to Live.  This closes the distributed race
of section 6.4 (Figure 6): either a back trace sees the barrier's effect, or
its activity period overlaps the clean period at some ioref on the mutated
path, and the overlap forces Live.

Non-atomic local traces (section 6.2): while a trace is computing, barriers
clean the *old* copy as usual, and this module additionally records the
cleaned inrefs so the site can replay them onto the *new* copy at commit.

Incremental traces: every barrier clean flows through the ioref entry
properties, which bump the owning table's structure epoch -- so a tick after
a barrier hit (including replays inside a trace window) never skips, and the
clean flags expire at a real retrace exactly as before.
"""

from __future__ import annotations

from typing import List, Optional

from ..gc.inrefs import InrefTable
from ..gc.outrefs import OutrefTable
from ..ids import ObjectId
from ..metrics import MetricsRecorder
from .backtrace.engine import BackTraceEngine
from .backtrace.frames import INREF, OUTREF


class TransferBarrier:
    """Applies the transfer barrier for one site and feeds the clean rule."""

    def __init__(
        self,
        inrefs: InrefTable,
        outrefs: OutrefTable,
        engine: Optional[BackTraceEngine] = None,
        metrics: Optional[MetricsRecorder] = None,
        enabled: bool = True,
    ):
        self.inrefs = inrefs
        self.outrefs = outrefs
        self.engine = engine
        self.metrics = metrics or MetricsRecorder()
        self.enabled = enabled
        self._recording = False
        self._replay: List[ObjectId] = []

    # -- non-atomic trace support --------------------------------------------------

    def begin_trace_window(self) -> None:
        """A local trace started computing: start recording barrier hits."""
        self._recording = True
        self._replay = []

    def end_trace_window(self) -> List[ObjectId]:
        """The trace is committing: return inrefs to replay on the new copy."""
        self._recording = False
        replay, self._replay = self._replay, []
        return replay

    # -- the barrier itself -----------------------------------------------------------

    def on_reference_arrival(self, target: ObjectId) -> None:
        """A reference to local object ``target`` was transferred/traversed here.

        If the matching inref is suspected, clean it and its outset.  Sites
        call this for every incoming reference whose owner is this site,
        including inserts recorded at the owner (section 6.1.2 cases 1 and 4).
        """
        if not self.enabled:
            # Counterfactual mode (Figure 5's unsafe system): the oracle
            # tests demonstrate that disabling this loses live objects.
            return
        entry = self.inrefs.get(target)
        if entry is None:
            # Object has no remote holders recorded (e.g. a persistent root
            # being traversed from outside for the first time; the insert
            # protocol creates the entry separately).  Nothing to clean.
            return
        if entry.is_clean(self.inrefs.suspicion_threshold):
            # Already clean: the auxiliary invariant guarantees its outset's
            # outrefs are clean too; nothing to do.
            return
        self.metrics.incr("barrier.transfer_applied")
        entry.barrier_clean = True
        if self._recording:
            self._replay.append(target)
        if self.engine is not None:
            self.engine.notify_cleaned(INREF, target)
        for outref_target in entry.outset:
            self.clean_outref(outref_target)

    def clean_outref(self, target: ObjectId) -> None:
        """Clean one outref (barrier effect or remote-copy case 3)."""
        entry = self.outrefs.get(target)
        if entry is None:
            return
        if not entry.is_clean:
            self.metrics.incr("barrier.outrefs_cleaned")
        entry.barrier_clean = True
        if self.engine is not None:
            self.engine.notify_cleaned(OUTREF, target)
