"""Adaptive suspicion-threshold tuning (paper section 3).

The paper: "The outcome of this technique may be used to tune the suspicion
threshold.  For example, if too many suspects are found live, the threshold
should be increased."  This module implements that feedback loop, which the
paper leaves as policy.

The controller watches completed back traces at one site:

- a window with too many **Live** verdicts means live objects are being
  suspected (the threshold sits below true live distances): raise T;
- a window of clean **Garbage** confirmations with zero Live verdicts means
  the threshold has slack: lower T toward its configured floor, shrinking
  detection latency (a garbage cycle must climb past T + L before its first
  trace).

Raising T can never break completeness -- garbage distances grow without
bound, so they cross any finite T -- and never safety, since cleanliness is
conservative in the Live direction.  The only cost of a too-high T is
latency, which the downward drift recovers.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from ..gc.inrefs import InrefTable
from ..gc.outrefs import OutrefTable
from ..metrics import MetricsRecorder
from .backtrace.messages import TraceOutcome


class ThresholdTuner:
    """Per-site feedback controller for the suspicion threshold T."""

    def __init__(
        self,
        inrefs: InrefTable,
        outrefs: Optional[OutrefTable] = None,
        assumed_cycle_length: int = 8,
        window: int = 3,
        live_ratio_trigger: float = 0.5,
        increase_step: int = 2,
        decrease_step: int = 1,
        floor: Optional[int] = None,
        ceiling: int = 64,
        metrics: Optional[MetricsRecorder] = None,
    ):
        if window < 1:
            raise ConfigError("window must be >= 1")
        if not 0.0 < live_ratio_trigger <= 1.0:
            raise ConfigError("live_ratio_trigger must be in (0, 1]")
        if increase_step < 1 or decrease_step < 0:
            raise ConfigError("steps must be positive (decrease may be 0)")
        self.inrefs = inrefs
        self.outrefs = outrefs
        self.assumed_cycle_length = assumed_cycle_length
        self.window = window
        self.live_ratio_trigger = live_ratio_trigger
        self.increase_step = increase_step
        self.decrease_step = decrease_step
        self.floor = floor if floor is not None else inrefs.suspicion_threshold
        self.ceiling = ceiling
        if self.floor < 1:
            raise ConfigError("floor must be >= 1")
        if self.ceiling < self.floor:
            raise ConfigError("ceiling must be >= floor")
        self.metrics = metrics or MetricsRecorder()
        self._recent: List[TraceOutcome] = []
        self.adjustments_up = 0
        self.adjustments_down = 0

    @property
    def threshold(self) -> int:
        return self.inrefs.suspicion_threshold

    def observe(self, verdict: TraceOutcome) -> None:
        """Feed the verdict of one trace that visited suspects at this site.

        Called for every completed trace that marked iorefs here, whether
        this site initiated it or merely participated -- so "suspects found
        live" is measured where the suspects live.
        """
        self._recent.append(verdict)
        if len(self._recent) < self.window:
            return
        live = sum(1 for v in self._recent if v.is_live)
        ratio = live / len(self._recent)
        if ratio >= self.live_ratio_trigger:
            self._adjust(+self.increase_step)
        elif live == 0 and self.decrease_step:
            self._adjust(-self.decrease_step)
        self._recent.clear()

    def _adjust(self, delta: int) -> None:
        current = self.inrefs.suspicion_threshold
        updated = max(self.floor, min(self.ceiling, current + delta))
        if updated == current:
            return
        self.inrefs.suspicion_threshold = updated
        # New iorefs trigger their first back trace at the adjusted
        # T2 = T + L (existing entries keep their individually ratcheted
        # thresholds).
        self.inrefs.initial_back_threshold = updated + self.assumed_cycle_length
        if self.outrefs is not None:
            self.outrefs.initial_back_threshold = updated + self.assumed_cycle_length
        if delta > 0:
            self.adjustments_up += 1
            self.metrics.incr("tuning.threshold_raised")
        else:
            self.adjustments_down += 1
            self.metrics.incr("tuning.threshold_lowered")
        self.metrics.observe("tuning.threshold", updated)
