"""The stable public facade of the reproduction.

Everything an experiment, example, or downstream harness needs is
re-exported here under one import::

    from repro.api import GcConfig, Simulation, SimulationConfig

    config = SimulationConfig(gc=GcConfig(collector="termination"))
    sim = Simulation.create(config)     # selects the engine AND the backend

The facade is the compatibility contract: internals move between modules
(the collector extraction moved the back tracer out of ``Site``; the engine
split moved parallelism out of ``Simulation``), but these names stay.
Guidelines the facade encodes:

- **Construct through** :meth:`Simulation.create`.  It picks the sequential
  or sharded-parallel engine from ``config.parallel_workers`` and resolves
  ``config.gc.collector`` against the backend registry.  Direct
  ``ParallelSimulation(...)`` or baseline-collector construction still works
  behind :class:`DeprecationWarning` shims.
- **Select collectors by name.**  ``GcConfig.collector`` accepts any name in
  :func:`available_collectors`: the paper's ``"backtrace"``, the
  termination-detection rival ``"termination"``, ``"null"`` (local tracing
  only), and the six driver-style ``"baseline.*"`` schemes (reach their
  round driver through ``sim.collector_driver``).  New backends plug in via
  :func:`register_collector` without touching ``Site``.
- **Inject faults declaratively** with :class:`FaultPlan` and its window
  types, passed to :meth:`Simulation.create`.
"""

from __future__ import annotations

from .config import GcConfig, NetworkConfig, SimulationConfig
from .errors import ConfigError, ReproError, SimulationError
from .ids import FrameId, ObjectId, SiteId, TraceId

# sim.simulation must come before core.collector: entering the import cycle
# (simulation -> collector -> backtrace -> net -> sim) from the sim side is
# the one order in which every name is defined by the time it is needed.
from .sim.simulation import Simulation
from .sim.parallel import ParallelSimulation
from .core.collector import (
    Collector,
    CollectorSpec,
    available_collectors,
    register_collector,
    resolve_collector,
)
from .net.faults import FaultPlan, LinkFault, PartitionWindow, SiteCrash
from .site.site import Site
from .core.backtrace.messages import TraceOutcome

__all__ = [
    # configuration
    "GcConfig",
    "NetworkConfig",
    "SimulationConfig",
    # construction
    "Simulation",
    "ParallelSimulation",
    "Site",
    # collector registry
    "Collector",
    "CollectorSpec",
    "available_collectors",
    "register_collector",
    "resolve_collector",
    # fault injection
    "FaultPlan",
    "LinkFault",
    "PartitionWindow",
    "SiteCrash",
    # identifiers and outcomes
    "ObjectId",
    "SiteId",
    "TraceId",
    "FrameId",
    "TraceOutcome",
    # errors
    "ReproError",
    "ConfigError",
    "SimulationError",
]
