"""A mutator agent: an application navigating the distributed object graph.

The mutator has a *position* (the object it is currently accessing) and a set
of named *variables* (references held outside the object store -- application
roots, section 6.3).  Its position is itself pinned as a variable root at the
hosting site, so the oracle and the local collectors both see it as live.

Traversing a local reference is immediate; traversing an inter-site reference
sends a :class:`~repro.mutator.ops.MutatorHop` message, and the mutator is
*in transit* until the target site delivers it (after applying the transfer
barrier).  All graph edits go through the site layer, so barriers fire
exactly as the paper prescribes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..errors import MutatorError
from ..ids import ObjectId, SiteId
from ..store.objects import HeapObject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.simulation import Simulation


class Mutator:
    """One application thread of control."""

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        start: ObjectId,
        hop_timeout: float = 100.0,
    ):
        self.sim = sim
        self.name = name
        self.hop_timeout = hop_timeout
        self._position = start
        self._in_transit = False
        self._hop_timer = None
        self._variables: Dict[str, ObjectId] = {}
        self._on_arrival: List[Callable[[], None]] = []
        self.hops_taken = 0
        self.hops_failed = 0
        sim.register_mutator_hops(name, self._arrived)
        self._site_of(start).pin_variable(start)

    # -- position ----------------------------------------------------------------

    @property
    def position(self) -> ObjectId:
        return self._position

    @property
    def in_transit(self) -> bool:
        return self._in_transit

    @property
    def site_id(self) -> SiteId:
        return self._position.site

    def _site_of(self, oid: ObjectId):
        return self.sim.site(oid.site)

    @property
    def site(self):
        return self._site_of(self._position)

    def current_object(self) -> Optional[HeapObject]:
        return self.site.heap.maybe_get(self._position)

    def current_refs(self) -> List[ObjectId]:
        obj = self.current_object()
        return obj.refs if obj is not None else []

    # -- traversal -----------------------------------------------------------------

    def traverse(self, target: ObjectId, check_held: bool = True) -> None:
        """Move to ``target``, which the current object must reference.

        Local moves complete immediately.  Remote moves put the mutator in
        transit; it arrives when the hop message is delivered (run the
        simulation to let that happen).  A hop lost to a crash or partition
        strands the mutator at its old position (it "fails over").
        """
        if self._in_transit:
            raise MutatorError(f"mutator {self.name} is in transit")
        if check_held:
            obj = self.current_object()
            if obj is None or not obj.holds_ref(target):
                raise MutatorError(
                    f"mutator {self.name}: {self._position} does not hold {target}"
                )
        if target.site == self.site_id:
            self._move_to(target)
            return
        self._in_transit = True
        # A hop lost to a crash or partition would strand the application
        # forever; real RPC layers surface an error instead.  Model that as
        # a timeout: the mutator gives up and stays where it was (its old
        # position is still pinned, so nothing unsafe can happen).
        self._hop_timer = self.sim.scheduler.schedule(
            self.hop_timeout,
            self._hop_timed_out,
            label=f"hop-timeout:{self.name}",
            site=self.site_id,
        )
        self.site.mutator_hop(self.name, target)

    def _hop_timed_out(self) -> None:
        if not self._in_transit:
            return
        self._in_transit = False
        self._hop_timer = None
        self.hops_failed += 1
        callbacks, self._on_arrival = self._on_arrival, []
        for callback in callbacks:
            callback()

    def _arrived(self, target: ObjectId) -> None:
        if self._hop_timer is not None:
            self._hop_timer.cancel()
            self._hop_timer = None
        self._in_transit = False
        self._move_to(target)
        self.hops_taken += 1
        callbacks, self._on_arrival = self._on_arrival, []
        for callback in callbacks:
            callback()

    def _move_to(self, target: ObjectId) -> None:
        old = self._position
        self._site_of(target).pin_variable(target)
        self._position = target
        self._site_of(old).unpin_variable(old)

    def when_arrived(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` after the pending hop completes (scripting aid)."""
        if self._in_transit:
            self._on_arrival.append(callback)
        else:
            callback()

    # -- variables (application roots) ------------------------------------------------

    def set_variable(self, name: str, ref: ObjectId) -> None:
        """Stash ``ref`` in a variable, pinning it as an application root."""
        old = self._variables.get(name)
        self._site_of(ref).pin_variable(ref)
        self._variables[name] = ref
        if old is not None:
            self._site_of(old).unpin_variable(old)

    def get_variable(self, name: str) -> ObjectId:
        try:
            return self._variables[name]
        except KeyError:
            raise MutatorError(f"mutator {self.name}: no variable {name!r}") from None

    def clear_variable(self, name: str) -> None:
        old = self._variables.pop(name, None)
        if old is not None:
            self._site_of(old).unpin_variable(old)

    @property
    def variables(self) -> Dict[str, ObjectId]:
        return dict(self._variables)

    # -- graph edits -------------------------------------------------------------------

    def store_ref(self, target: ObjectId, holder: Optional[ObjectId] = None) -> None:
        """Copy ``target`` into ``holder`` (default: the current object).

        ``holder`` must be local to the mutator's current site -- a remote
        destination requires :meth:`copy_ref_to_remote`.
        """
        holder = holder or self._position
        if holder.site != self.site_id:
            raise MutatorError("use copy_ref_to_remote for a remote destination")
        site = self.site
        if target.site != site.site_id and target not in site.outrefs:
            # Materializing a reference the mutator carried here in a
            # variable (section 6.3): pin the object at its owner until the
            # insert roots it through the new inref.  The owner-side pin
            # models the application session's registration at the owner.
            self._site_of(target).take_insert_custody(target)
            site.mutator_add_ref(holder, target, insert_custody_taken=True)
            return
        site.mutator_add_ref(holder, target)

    def delete_ref(self, target: ObjectId, holder: Optional[ObjectId] = None) -> None:
        """Remove one occurrence of ``target`` from ``holder`` (default: here)."""
        holder = holder or self._position
        if holder.site != self.site_id:
            raise MutatorError("can only delete from objects at the current site")
        self.site.mutator_remove_ref(holder, target)

    def copy_ref_to_remote(self, target: ObjectId, dest_holder: ObjectId) -> None:
        """Ship ``target`` to another site, storing it into ``dest_holder``.

        Runs the full remote-copy protocol of section 6.1.2, including the
        insert barrier pin at this site when ``target`` is remote to it.
        """
        if dest_holder.site == self.site_id:
            self.store_ref(target, holder=dest_holder)
            return
        self.site.mutator_send_ref(dest_holder.site, target, dest_holder)

    def alloc(self, refs=(), link_from_current: bool = True) -> ObjectId:
        """Allocate a fresh object at the current site.

        By default the new object is immediately linked from the current
        object, so it is born reachable (a new object modelled, per the
        paper's footnote, as copied from a special persistent root).
        """
        obj = self.site.heap.alloc(refs=refs)
        if link_from_current:
            self.site.mutator_add_ref(self._position, obj.oid)
        return obj.oid
