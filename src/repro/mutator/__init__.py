"""The application model (mutator).

Mutators traverse the distributed object graph, create and delete references,
and stash references in variables outside the object store (application
roots, section 6.3).  Every operation goes through the site layer so the
transfer and insert barriers fire exactly where the paper requires.
"""

from .ops import MutatorHop, RemoteCopy
from .mutator import Mutator
from .workload import RandomWorkload, WorkloadConfig

__all__ = ["MutatorHop", "RemoteCopy", "Mutator", "RandomWorkload", "WorkloadConfig"]
