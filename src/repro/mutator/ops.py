"""Mutator protocol messages.

Two payloads cover every inter-site mutator action in the paper's model:

- :class:`MutatorHop` -- the mutator traverses an inter-site reference; the
  receiving site applies the transfer barrier to the target's inref before
  the mutator continues there (section 6.1.1);
- :class:`RemoteCopy` -- a reference is copied into an object at another
  site; the receiving site runs the remote-copy case analysis of section
  6.1.2 (and the owner applies the transfer barrier when an insert reaches
  it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..ids import ObjectId, SiteId
from ..net.message import Payload


@dataclass(frozen=True)
class MutatorHop(Payload):
    """Mutator ``mutator`` traverses a remote reference to ``target``."""

    mutator: str
    target: ObjectId
    #: Duplicate-suppression sequence number (see InsertRequest.seq): a
    #: replayed hop would fork a phantom second mutator at the destination.
    seq: int = -1

    def carried_refs(self) -> Tuple[ObjectId, ...]:
        # The mutator will stand at ``target`` on arrival; until then the
        # object must stay alive even if all stored paths to it are cut.
        return (self.target,)


@dataclass(frozen=True)
class RemoteCopy(Payload):
    """Copy reference ``ref`` into object ``dest_holder`` at the destination.

    ``pin_holder`` is the sending site if it pinned its outref for ``ref``
    under the insert barrier (it did whenever ``ref`` is remote to it);
    the destination or the owner releases the pin per section 6.1.2.
    """

    ref: ObjectId
    dest_holder: ObjectId
    pin_holder: Optional[SiteId] = None
    #: Duplicate-suppression sequence number (see InsertRequest.seq): a
    #: replayed copy would double-store the reference and double-release
    #: the sender's insert pin.
    seq: int = -1

    def carried_refs(self) -> Tuple[ObjectId, ...]:
        # Both ends are held by the mutator while the copy is in flight.
        return (self.ref, self.dest_holder)
