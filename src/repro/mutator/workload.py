"""Randomized mutator workloads for stress testing (benchmark E7).

A :class:`RandomWorkload` drives one mutator with a stream of random
operations -- traversals (firing transfer barriers), local copies, deletions,
allocations, variable stashing, and remote copies (firing the insert
barrier) -- at random intervals, all through the barrier-respecting APIs.
Combined with concurrent local traces and back traces this exercises every
section-6 code path; the oracle checks safety after every quiescent point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..errors import ConfigError
from ..ids import ObjectId
from .mutator import Mutator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.simulation import Simulation


@dataclass(frozen=True)
class WorkloadConfig:
    """Operation mix and pacing for a random workload."""

    mean_interval: float = 5.0
    traverse_weight: float = 5.0
    local_copy_weight: float = 2.0
    delete_weight: float = 1.5
    alloc_weight: float = 1.0
    stash_weight: float = 1.0
    write_stash_weight: float = 1.0
    remote_copy_weight: float = 1.0
    go_home_weight: float = 0.5
    max_stash: int = 4

    def __post_init__(self) -> None:
        if self.mean_interval <= 0:
            raise ConfigError("mean_interval must be > 0")
        if self.max_stash < 1:
            raise ConfigError("max_stash must be >= 1")


class RandomWorkload:
    """Drives one mutator with random barrier-respecting operations."""

    def __init__(
        self,
        sim: "Simulation",
        name: str,
        home: ObjectId,
        config: Optional[WorkloadConfig] = None,
        seed_stream: Optional[str] = None,
    ):
        self.sim = sim
        self.config = config or WorkloadConfig()
        self.mutator = Mutator(sim, name, home)
        self.home = home
        self.rng: random.Random = sim.rng.stream(seed_stream or f"workload:{name}")
        self._stash_names: List[str] = []
        self._stash_counter = 0
        self._running = False
        self.ops_executed = 0

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        delay = self.rng.expovariate(1.0 / self.config.mean_interval)
        # Tagged with the mutator's *current* site; note random workloads
        # read remote heaps directly and are therefore sequential-only (the
        # parallel engine's churn workload in repro.workloads.churn is the
        # shard-safe equivalent).
        self.sim.scheduler.schedule(
            delay,
            self._tick,
            label=f"workload:{self.mutator.name}",
            site=self.mutator.site_id,
        )

    def _tick(self) -> None:
        if not self._running:
            return
        if not self.mutator.in_transit:
            self._random_op()
            self.ops_executed += 1
        self._schedule_next()

    # -- operations ------------------------------------------------------------------

    def _random_op(self) -> None:
        cfg = self.config
        if self.mutator.current_object() is None or self.mutator.site.crashed:
            # Stranded (host crashed or current object edited away by another
            # mutator and collected before our pin): respawn at home.
            self._go_home()
            return
        ops = [
            (cfg.traverse_weight, self._op_traverse),
            (cfg.local_copy_weight, self._op_local_copy),
            (cfg.delete_weight, self._op_delete),
            (cfg.alloc_weight, self._op_alloc),
            (cfg.stash_weight, self._op_stash),
            (cfg.write_stash_weight, self._op_write_stash),
            (cfg.remote_copy_weight, self._op_remote_copy),
            (cfg.go_home_weight, self._op_go_home),
        ]
        total = sum(weight for weight, _ in ops)
        pick = self.rng.uniform(0.0, total)
        for weight, op in ops:
            pick -= weight
            if pick <= 0:
                op()
                return
        ops[-1][1]()

    def _go_home(self) -> None:
        home_site = self.sim.site(self.home.site)
        if home_site.heap.contains(self.home) and not home_site.crashed:
            # Teleporting home models the application re-entering through a
            # persistent root; barrier-wise it is a traversal to a root,
            # which is always clean, so no barrier action is required.
            self.mutator._arrived(self.home)

    def _op_go_home(self) -> None:
        self._go_home()

    def _op_traverse(self) -> None:
        refs = self._existing_refs()
        if not refs:
            self._go_home()
            return
        target = self.rng.choice(refs)
        self.mutator.traverse(target, check_held=False)

    def _op_local_copy(self) -> None:
        refs = self.mutator.current_refs()
        if not refs:
            return
        self.mutator.store_ref(self.rng.choice(refs))

    def _op_delete(self) -> None:
        refs = self.mutator.current_refs()
        if not refs:
            return
        self.mutator.delete_ref(self.rng.choice(refs))

    def _op_alloc(self) -> None:
        self.mutator.alloc()

    def _op_stash(self) -> None:
        refs = self._existing_refs(include_position=True)
        if not refs:
            return
        if len(self._stash_names) >= self.config.max_stash:
            victim = self._stash_names.pop(0)
            self.mutator.clear_variable(victim)
        name = f"stash{self._stash_counter}"
        self._stash_counter += 1
        self.mutator.set_variable(name, self.rng.choice(refs))
        self._stash_names.append(name)

    def _op_write_stash(self) -> None:
        if not self._stash_names:
            return
        name = self.rng.choice(self._stash_names)
        ref = self.mutator.get_variable(name)
        self.mutator.store_ref(ref)

    def _op_remote_copy(self) -> None:
        """Copy a reference from here into a stashed remote object."""
        remote_holders = [
            ref
            for name in self._stash_names
            for ref in [self.mutator.get_variable(name)]
            if ref.site != self.mutator.site_id
        ]
        refs = self.mutator.current_refs()
        if not remote_holders or not refs:
            return
        dest = self.rng.choice(remote_holders)
        self.mutator.copy_ref_to_remote(self.rng.choice(refs), dest)

    # -- helpers -------------------------------------------------------------------------

    def _existing_refs(self, include_position: bool = False) -> List[ObjectId]:
        """Current object's references that still resolve somewhere."""
        refs = []
        for ref in self.mutator.current_refs():
            site = self.sim.sites.get(ref.site)
            if site is not None and site.heap.contains(ref) and not site.crashed:
                refs.append(ref)
        if include_position:
            refs.append(self.mutator.position)
        return refs
