"""Configuration dataclasses for the simulator and the collectors.

Configuration is split by subsystem so that benchmarks can sweep one knob
without restating the rest.  All classes validate on construction and are
immutable; derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigError


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the simulated message-passing network.

    The safety argument of the paper (section 6.4, relation R1) assumes
    in-order delivery between each pair of sites, which matches TCP-like
    transports; ``fifo_per_pair`` therefore defaults to True.  Setting it to
    False exercises the conservative timeout paths.
    """

    min_latency: float = 1.0
    max_latency: float = 5.0
    drop_probability: float = 0.0
    fifo_per_pair: bool = True
    # Draw latency/loss randomness from one RNG stream *per ordered site
    # pair* instead of the single shared "network" stream.  With the shared
    # stream the k-th draw depends on the global interleaving of all sends;
    # per-pair streams depend only on the sender's own send order, which is
    # what lets a sharded parallel run reproduce the sequential engine's
    # draws exactly.  The parallel engine forces this on; sequential runs
    # keep the historical shared stream unless asked (a twin run that wants
    # byte-equality with a parallel run must set it too).
    pair_rng_streams: bool = False

    def __post_init__(self) -> None:
        if self.min_latency < 0:
            raise ConfigError("min_latency must be >= 0")
        if self.max_latency < self.min_latency:
            raise ConfigError("max_latency must be >= min_latency")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ConfigError("drop_probability must be in [0, 1]")


@dataclass(frozen=True)
class GcConfig:
    """Parameters of local tracing, the distance heuristic, and back tracing.

    Attributes mirror the paper's symbols:

    - ``suspicion_threshold`` is T (section 3): inrefs with estimated distance
      greater than T are suspected; smaller distances are clean.
    - ``back_threshold`` is T2 (section 4.3), normally T + assumed_cycle_length;
      a back trace starts from a suspected outref once its distance exceeds
      its (per-ioref, growing) back threshold.
    - ``back_threshold_increment`` is the bump applied to an ioref's back
      threshold each time a back trace visits it, so live suspects stop
      generating traces.
    - ``local_trace_period`` is the simulated time between local traces at a
      site ("on the order of minutes" in the paper -- long relative to message
      latency).
    - ``local_trace_duration`` makes local traces non-atomic: messages arriving
      inside the window see the old copy of back information (section 6.2).
    - ``backtrace_timeout`` bounds waiting for a back call response or final
      outcome; expiry conservatively decides Live (section 4.6).
    - ``enable_backtracing`` / ``enable_transfer_barrier`` exist for
      counterfactual experiments: plain local tracing (Figure 1's uncollected
      cycle) and the unsafe no-barrier system (Figure 5's lost object).
      Production configurations leave both True.
    """

    # Distributed cycle-collection backend, by registry name
    # (:mod:`repro.core.collector`).  "backtrace" is the paper's back tracer;
    # "termination" the decentralized trial-deletion-with-termination-
    # detection rival used for differential testing; "null" plain local
    # tracing; "baseline.*" the sim-driven baseline schemes.  Validated
    # against the registry when the simulation (or site) is constructed --
    # the registry accepts runtime registrations, so the config layer only
    # checks the type here.
    collector: str = "backtrace"
    suspicion_threshold: int = 4
    assumed_cycle_length: int = 8
    back_threshold_increment: int = 4
    local_trace_period: float = 100.0
    local_trace_period_jitter: float = 10.0
    local_trace_duration: float = 0.0
    backtrace_timeout: float = 500.0
    backinfo_algorithm: str = "bottomup"
    enable_backtracing: bool = True
    enable_transfer_barrier: bool = True
    # Section 3 suggests tuning the suspicion threshold from trace outcomes
    # ("if too many suspects are found live, the threshold should be
    # increased"); repro.core.tuning implements that loop.
    enable_threshold_tuning: bool = False
    # Section 4.6: small control messages "can be piggybacked on other
    # messages" / "deferred and piggybacked".  When enabled, back-trace,
    # update, and insert traffic queues per destination for up to
    # ``defer_delay`` and ships bundled (repro.net.batching).
    defer_messages: bool = False
    defer_delay: float = 2.0
    # How many back traces one trigger check (after a local trace) may
    # start.  Starting one at a time realizes the paper's expectation that
    # "the first back trace started in a cycle is likely to visit all other
    # iorefs in the cycle before they cross T2": the first trace's visits
    # bump the other iorefs' back thresholds, suppressing duplicate traces
    # over the same cycle.  Disjoint cycles still each get a trace, since
    # every site checks after every local trace.
    max_traces_per_trigger_check: int = 1
    # Back-trace verdict caching (section 4.6 extension): a trace that
    # completes Live records, at every participant site, the per-entry epochs
    # of the iorefs it visited there.  A later trace (or trigger check)
    # arriving at such an ioref answers Live from the cache -- no frames, no
    # messages -- as long as every snapshotted epoch is unchanged and the
    # entry is younger than ``backtrace_cache_ttl_ticks`` local-trace
    # periods.  Any mutation, update message, or clean-rule event bumps an
    # epoch and thereby invalidates affected entries; only Live is ever
    # cached (Garbage verdicts are trace-relative and must not be shared).
    backtrace_cache: bool = True
    backtrace_cache_ttl_ticks: int = 3
    # Trace coalescing: when a trace reaches an ioref where an *older* trace
    # (by trace id) is actively expanding a frame, subscribe to that frame's
    # verdict instead of duplicating the downstream fan-out.  A Live verdict
    # is forwarded to subscribers; a Garbage verdict is trace-relative, so
    # subscribers re-run their own step instead.  The id ordering makes the
    # waits-for relation acyclic (no coalescing deadlock).
    backtrace_coalesce: bool = True
    # Batch the BackCalls (and immediate BackReplies) one engine activation
    # fans out to the same destination into one BackCallBatch/BackReplyBatch
    # physical message, riding the DeferringSender/Bundle path when message
    # deferral is also on.
    backtrace_batch_calls: bool = True
    # Incremental local traces: sites track mutation epochs on the heap and
    # the ioref tables, cache the last committed trace result, and skip (or
    # distance-only fast-path) a gc tick when nothing relevant changed since.
    # ``full_trace_every_n`` is the safety net: at most that many consecutive
    # ticks may resolve incrementally before a full trace (which also sends a
    # full update refresh) is forced, bounding the lifetime of any state a
    # missed invalidation could leave stale.
    incremental_traces: bool = True
    full_trace_every_n: int = 8
    # Every n-th local trace resends the distances of *all* outrefs instead
    # of only the changed ones.  Update messages are idempotent state
    # transfers (the fault-tolerant reference listing of [ML94]), so this
    # bounded refresh recovers from updates lost to crashes or partitions
    # without any acknowledgement machinery.
    full_update_period: int = 4
    # At-least-once update delivery (section 4.6 hardening): every update
    # message carries a per-(sender, target) sequence number and is
    # acknowledged; an update unacknowledged after
    # ``update_retransmit_timeout`` triggers a *fresh full* update (updates
    # are idempotent state transfers, so retransmitting current state both
    # replaces the lost delta and resynchronizes the target).  Retries back
    # off exponentially (x2 per consecutive failure, capped at 8x) and give
    # up after ``update_retransmit_limit`` consecutive failures -- the
    # periodic full refresh remains the backstop.  Receivers suppress
    # duplicate deliveries by sequence number either way.
    reliable_updates: bool = True
    update_retransmit_timeout: float = 40.0
    update_retransmit_limit: int = 5
    # Delta-encoded updates: after a trace, ship only the outref adds,
    # removals, and distance changes since the last update to each peer
    # (:class:`repro.gc.update.UpdateDeltaPayload`) instead of re-listing
    # everything.  Deltas ride the reliable-update channel's per-(sender,
    # dst) sequence numbers; a receiver applies them strictly in order and
    # answers a gap with a refresh request, which the sender repairs with a
    # full state transfer.  Periodic full updates (every
    # ``full_update_period``-th full trace) re-anchor peers regardless.
    # Requires ``reliable_updates``; without it the site warns once and
    # falls back to the legacy full-snapshot protocol.
    delta_updates: bool = True
    # Flat-graph trace kernel: the heap maintains a dense integer-index
    # mirror of the local object graph (interned ids, append-only adjacency
    # arrays with a free-list) and the clean phase runs over int arrays with
    # a reusable bytearray mark bitmap instead of per-trace ObjectId sets.
    # Byte-identical trace results; False selects the legacy kernel (twin
    # runs, debugging).
    flat_kernel: bool = True
    # Vectorized clean phase: when numpy is importable (optional extra
    # ``pip install .[fast]``) and the heap is at least
    # ``vector_kernel_min_objects`` objects, the clean phase runs as
    # level-synchronous numpy frontier sweeps over a cached CSR snapshot of
    # the flat mirror (:func:`repro.core.distance.trace_clean_phase_vector`)
    # instead of the per-object DFS.  Byte-identical results; the threshold
    # exists because the kernel's fixed numpy costs lose to the flat DFS on
    # tiny heaps.  Ignored when ``flat_kernel`` is False or numpy is absent.
    vector_kernel: bool = True
    vector_kernel_min_objects: int = 512
    # Exponential-backoff re-initiation of timed-out back traces: when a
    # trace completes Live only because some frame or outcome timed out
    # (section 4.6's conservative assumption), re-tracing the same root
    # immediately would usually hit the same fault.  The initiator instead
    # refuses re-initiation from that root for ``backtrace_retry_backoff``
    # (default: ``backtrace_timeout``), doubling per consecutive
    # timeout-assumed Live up to ``backtrace_retry_backoff_cap`` (default:
    # 8x the base).  Any grounded verdict resets the backoff.
    backtrace_retry_backoff: Optional[float] = None
    backtrace_retry_backoff_cap: Optional[float] = None
    # Termination backend (GcConfig.collector == "termination"): a trial
    # whose credit has not fully returned after this long is presumed stuck
    # on a lost message, crash, or partition and is aborted (safe -- an
    # aborted trial collects nothing; a later trial retries).  None
    # inherits ``backtrace_timeout`` so fault-plan sweeps tune one knob.
    termination_trial_timeout: Optional[float] = None
    # Re-initiation back-off after a trial finds its suspect live (or
    # aborts): without it the still-suspected inref would re-trigger an
    # identical trial every gc tick.  Doubles per consecutive live/aborted
    # result, capped at 8x.  None inherits ``effective_retry_backoff``.
    termination_retry_backoff: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.collector, str) or not self.collector:
            raise ConfigError("collector must be a non-empty backend name")
        if self.suspicion_threshold < 1:
            raise ConfigError("suspicion_threshold must be >= 1")
        if self.assumed_cycle_length < 1:
            raise ConfigError("assumed_cycle_length must be >= 1")
        if self.back_threshold_increment < 1:
            raise ConfigError("back_threshold_increment must be >= 1")
        if self.local_trace_period <= 0:
            raise ConfigError("local_trace_period must be > 0")
        if self.local_trace_period_jitter < 0:
            raise ConfigError("local_trace_period_jitter must be >= 0")
        if self.local_trace_duration < 0:
            raise ConfigError("local_trace_duration must be >= 0")
        if self.local_trace_duration >= self.local_trace_period:
            raise ConfigError("local_trace_duration must be < local_trace_period")
        if self.backtrace_timeout <= 0:
            raise ConfigError("backtrace_timeout must be > 0")
        if self.full_update_period < 1:
            raise ConfigError("full_update_period must be >= 1")
        if self.full_trace_every_n < 1:
            raise ConfigError("full_trace_every_n must be >= 1")
        if self.backtrace_cache_ttl_ticks < 1:
            raise ConfigError("backtrace_cache_ttl_ticks must be >= 1")
        if self.max_traces_per_trigger_check < 1:
            raise ConfigError("max_traces_per_trigger_check must be >= 1")
        if self.defer_delay <= 0:
            raise ConfigError("defer_delay must be > 0")
        if self.defer_messages and self.defer_delay * 4 > self.backtrace_timeout:
            raise ConfigError(
                "defer_delay must be well under backtrace_timeout "
                "(deferred calls must not look like lost ones)"
            )
        if self.backinfo_algorithm not in ("bottomup", "independent"):
            raise ConfigError(
                "backinfo_algorithm must be 'bottomup' or 'independent', "
                f"got {self.backinfo_algorithm!r}"
            )
        if self.update_retransmit_timeout <= 0:
            raise ConfigError("update_retransmit_timeout must be > 0")
        if self.vector_kernel_min_objects < 0:
            raise ConfigError("vector_kernel_min_objects must be >= 0")
        if self.update_retransmit_limit < 0:
            raise ConfigError("update_retransmit_limit must be >= 0")
        if (
            self.backtrace_retry_backoff is not None
            and self.backtrace_retry_backoff <= 0
        ):
            raise ConfigError("backtrace_retry_backoff must be > 0")
        if (
            self.backtrace_retry_backoff_cap is not None
            and self.backtrace_retry_backoff_cap < (
                self.backtrace_retry_backoff or 0.0
            )
        ):
            raise ConfigError(
                "backtrace_retry_backoff_cap must be >= backtrace_retry_backoff"
            )
        if (
            self.termination_trial_timeout is not None
            and self.termination_trial_timeout <= 0
        ):
            raise ConfigError("termination_trial_timeout must be > 0")
        if (
            self.termination_retry_backoff is not None
            and self.termination_retry_backoff <= 0
        ):
            raise ConfigError("termination_retry_backoff must be > 0")

    @property
    def initial_back_threshold(self) -> int:
        """T2 = T + L, the distance at which a first back trace triggers."""
        return self.suspicion_threshold + self.assumed_cycle_length

    @property
    def effective_retry_backoff(self) -> float:
        """Base back-off delay for timeout-assumed-Live trace re-initiation."""
        if self.backtrace_retry_backoff is not None:
            return self.backtrace_retry_backoff
        return self.backtrace_timeout

    @property
    def effective_retry_backoff_cap(self) -> float:
        if self.backtrace_retry_backoff_cap is not None:
            return self.backtrace_retry_backoff_cap
        return 8.0 * self.effective_retry_backoff

    @property
    def effective_trial_timeout(self) -> float:
        """Credit-recovery deadline for one termination-backend trial."""
        if self.termination_trial_timeout is not None:
            return self.termination_trial_timeout
        return self.backtrace_timeout

    @property
    def effective_trial_backoff(self) -> float:
        """Base re-initiation back-off after a live or aborted trial."""
        if self.termination_retry_backoff is not None:
            return self.termination_retry_backoff
        return self.effective_retry_backoff


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level bundle handed to :class:`repro.sim.Simulation`.

    ``parallel_workers`` > 1 opts a run into the sharded parallel engine
    (:class:`repro.sim.parallel.ParallelSimulation`): sites are partitioned
    across that many worker processes, each running its own scheduler over
    its shard's events, synchronized by conservative lookahead windows of
    width ``network.min_latency``.  ``parallel_workers == 1`` (the default)
    is the plain sequential engine, byte-identical to the historical
    behaviour.  ``shard_policy`` chooses how sites map to workers:
    ``"contiguous"`` slices the sorted site list into equal runs (keeps
    neighbouring sites together, fewer cross-shard messages for ring-ish
    topologies); ``"round_robin"`` deals sites out cyclically (balances
    heterogeneous load).
    """

    seed: int = 0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    gc: GcConfig = field(default_factory=GcConfig)
    parallel_workers: int = 1
    shard_policy: str = "contiguous"
    # Safe-time window planner for the parallel engine.  "demand" (default):
    # every window reply advertises the shard's earliest-output-time (its
    # earliest pending event -- quiet GC-tick chains looked through -- plus
    # its minimum outbound latency) and the coordinator plans the next bound
    # as min(advertised EOTs, target), jumping quiet stretches in one window
    # and pipelining the next dispatch when nothing was routed.  "fixed" is
    # the legacy planner (bound = horizon + min_latency each round) kept for
    # A/B benchmarking; both produce byte-identical simulation results --
    # window partitioning never changes what executes, only how often the
    # coordinator synchronizes.
    window_planner: str = "demand"
    # Packed wire format for coordinator<->worker traffic: hot cross-shard
    # payload kinds ship as struct-packed int records batched per (window,
    # destination shard) instead of pickled Message objects
    # (:mod:`repro.net.wire`).  False keeps the legacy pickled lists -- the
    # overhead-comparison baseline and a debugging aid.
    packed_wire: bool = True
    # Shared-memory arena for the flat-graph mirror: the coordinator
    # pre-sizes one region per site before forking and shard workers re-home
    # their alive/mark bitmaps (and CSR scratch) into it
    # (:mod:`repro.store.shm`), letting the coordinator read per-site
    # resident counts without a broadcast.  Falls back with a RuntimeWarning
    # where shared memory is unavailable.
    shared_arena: bool = True
    # Slots per site region; None auto-sizes from the pre-fork heaps
    # (8x headroom, power of two, at least 4096).  Outgrowing the region is
    # safe -- the heap spills back to private buffers with a warning.
    arena_slots_per_site: Optional[int] = None
    # Direct shard-to-shard data path: cross-shard messages travel as packed
    # wire records through per-ordered-pair SPSC ring buffers carved out of
    # the shared arena, so the coordinator's per-window pipe exchange shrinks
    # to the 24-byte reply trailers plus ring cursors.  ``None`` (default)
    # follows ``packed_wire`` (rings need the packed record format to write
    # into shared memory); ``False`` keeps the coordinator-routed path as
    # the A/B baseline.  Explicitly requesting rings without the packed wire
    # is a configuration error -- pickled Message objects cannot live in a
    # byte ring.  A record too large for its ring spills to the legacy pipe
    # path, so correctness never depends on fitting.
    direct_rings: Optional[bool] = None
    # Capacity of each ordered-pair ring in bytes.  W workers allocate W*W
    # rings, so the shared segment grows by ``workers**2 *
    # ring_bytes_per_pair``; 64 KiB per pair holds hundreds of packed
    # records per window on the paper's workloads.
    ring_bytes_per_pair: int = 65536
    # Delta-based control plane: ``snapshot()`` ships only site snapshots
    # whose content digest changed since the last export, and
    # ``merged_metrics()`` ships only counters whose values moved; the
    # coordinator caches the merged views and skips the broadcast entirely
    # when no command has touched worker state since.  False re-ships full
    # state on every call (the A/B baseline).
    delta_exports: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise ConfigError("seed must be an int")
        if not isinstance(self.parallel_workers, int) or self.parallel_workers < 1:
            raise ConfigError("parallel_workers must be an int >= 1")
        if self.arena_slots_per_site is not None and self.arena_slots_per_site < 8:
            raise ConfigError("arena_slots_per_site must be >= 8")
        if self.shard_policy not in ("contiguous", "round_robin"):
            raise ConfigError(
                "shard_policy must be 'contiguous' or 'round_robin', "
                f"got {self.shard_policy!r}"
            )
        if self.window_planner not in ("demand", "fixed"):
            raise ConfigError(
                "window_planner must be 'demand' or 'fixed', "
                f"got {self.window_planner!r}"
            )
        if self.direct_rings and not self.packed_wire:
            raise ConfigError(
                "direct_rings=True requires packed_wire=True: shard-to-shard "
                "rings carry packed wire records, not pickled messages "
                "(set direct_rings=False for the legacy pickled baseline)"
            )
        if self.ring_bytes_per_pair < 1024:
            raise ConfigError(
                "ring_bytes_per_pair must be >= 1024 "
                f"(got {self.ring_bytes_per_pair})"
            )

    @property
    def effective_direct_rings(self) -> bool:
        """Rings requested (explicitly or by default): on unless disabled."""
        if self.direct_rings is None:
            return self.packed_wire
        return self.direct_rings
