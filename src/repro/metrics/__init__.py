"""Instrumentation: counters, observation series, and the observation facade.

The paper's measurable claims are structural -- message counts, objects
scanned, outset unions, storage units -- so the whole library reports through
one :class:`MetricsRecorder` that benchmarks read after a run.

This package is also the single facade over the three observation surfaces
that used to live apart:

- **counters** -- :class:`MetricsRecorder` and :func:`counter_diff`
  (prefix helpers + before/after deltas in one call);
- **counter names** -- :mod:`repro.metrics.names`, module-level constants so
  callers stop passing drifting string literals;
- **graph state** -- :func:`graph_snapshot` / :func:`graph_diff`, re-exported
  from :mod:`repro.analysis.export` (the old ``snapshot`` /
  ``diff_snapshots`` names still import from there with a
  ``DeprecationWarning``).
"""

from __future__ import annotations

from typing import Any, Dict, Union

from . import names
from .counters import CounterCell, MetricsRecorder, Snapshot


def counter_diff(
    after: Union[MetricsRecorder, Snapshot],
    before: Snapshot,
    prefix: str = "",
) -> Dict[str, int]:
    """Non-zero counter deltas since ``before``, optionally prefix-filtered."""
    if isinstance(after, MetricsRecorder):
        after = after.snapshot()
    deltas = after.diff(before)
    if prefix:
        deltas = {
            name: value for name, value in deltas.items() if name.startswith(prefix)
        }
    return deltas


def graph_snapshot(sim) -> Dict[str, Any]:
    """JSON-able dump of every site's heap and ioref tables (see
    :func:`repro.analysis.export.graph_snapshot`)."""
    from ..analysis.export import graph_snapshot as _impl

    return _impl(sim)


def graph_diff(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """What changed between two :func:`graph_snapshot` dumps."""
    from ..analysis.export import graph_diff as _impl

    return _impl(before, after)


__all__ = [
    "CounterCell",
    "MetricsRecorder",
    "Snapshot",
    "names",
    "counter_diff",
    "graph_snapshot",
    "graph_diff",
]
