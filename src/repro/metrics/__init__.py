"""Instrumentation: counters and observation series.

The paper's measurable claims are structural -- message counts, objects
scanned, outset unions, storage units -- so the whole library reports through
one :class:`MetricsRecorder` that benchmarks read after a run.
"""

from .counters import MetricsRecorder, Snapshot

__all__ = ["MetricsRecorder", "Snapshot"]
