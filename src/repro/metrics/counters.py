"""Counter and observation recording.

Counters are plain named integers (``messages.BackCall``, ``gc.objects_scanned``).
The incremental local trace reports how each gc tick resolved via
``gc.traces_skipped`` / ``gc.traces_fast_path`` / ``gc.traces_full``, and
``gc.objects_scanned`` aggregates clean- plus suspected-phase scans so
benchmarks can quote the incremental win as a single number.
Observations are named value series (``backinfo.outsets_distinct``) with
summary statistics.  A :class:`Snapshot` freezes the current state so a
benchmark can diff before/after an operation of interest.

Hot paths do not call :meth:`MetricsRecorder.incr` with a freshly built
f-string per event; they hold an interned :class:`CounterCell` from
:meth:`MetricsRecorder.cell` instead.  A cell is a pre-resolved (store,
name) pair -- ``cell.add(n)`` is one dict update with a cached string hash,
with the name construction paid once at interning time.  Cells write into
the *same* counter store that ``incr``/``count``/``snapshot`` use, so the
two APIs are freely mixable per name: creating a cell never creates a
counter entry (only ``add`` does, exactly as only ``incr`` did), and
snapshots remain name- and insertion-order-identical whichever API wrote a
given counter.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping


class CounterCell:
    """An interned handle on one named counter: ``add`` without lookups.

    Bound to the recorder's live counter mapping, so reads through
    ``count``/``snapshot``/``_counters`` always see cell writes (and vice
    versa -- ``incr`` on the same name hits the same slot).
    """

    __slots__ = ("_counts", "name")

    def __init__(self, counts: Counter, name: str):
        self._counts = counts
        self.name = name

    def add(self, amount: int = 1) -> None:
        counts = self._counts
        name = self.name
        counts[name] = counts.get(name, 0) + amount

    @property
    def value(self) -> int:
        return self._counts.get(self.name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterCell({self.name!r}={self.value})"


@dataclass(frozen=True)
class Snapshot:
    """Immutable copy of all counters at one instant."""

    counters: Mapping[str, int]

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def diff(self, earlier: "Snapshot") -> Dict[str, int]:
        """Counter deltas since ``earlier`` (only non-zero entries)."""
        names = set(self.counters) | set(earlier.counters)
        deltas = {
            name: self.counters.get(name, 0) - earlier.counters.get(name, 0)
            for name in names
        }
        return {name: delta for name, delta in deltas.items() if delta}


@dataclass
class MetricsRecorder:
    """Mutable sink for counters and observations."""

    _counters: Counter = field(default_factory=Counter)
    _observations: Dict[str, List[float]] = field(default_factory=dict)
    _cells: Dict[str, CounterCell] = field(default_factory=dict)

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        # get/setitem instead of ``+=``: Counter's Python-level __missing__
        # never runs, so first and subsequent increments cost the same two
        # C dict operations (and match CounterCell.add exactly).
        counters = self._counters
        counters[name] = counters.get(name, 0) + amount

    def cell(self, name: str) -> CounterCell:
        """The interned :class:`CounterCell` for ``name`` (created lazily).

        Repeated calls return the identical object, so hot paths resolve a
        name once and keep the handle.  Creating a cell does not create a
        counter entry; only :meth:`CounterCell.add` (like :meth:`incr`)
        does.
        """
        cell = self._cells.get(name)
        if cell is None:
            cell = CounterCell(self._counters, name)
            self._cells[name] = cell
        return cell

    def count(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counts_with_prefix(self, prefix: str) -> Dict[str, int]:
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def total_with_prefix(self, prefix: str) -> int:
        return sum(self.counts_with_prefix(prefix).values())

    # -- messages ---------------------------------------------------------

    def record_message(self, kind: str, units: int = 1) -> None:
        """Count one sent message of the given payload kind."""
        counters = self._counters
        name = f"messages.{kind}"
        counters[name] = counters.get(name, 0) + 1
        counters["messages.total"] = counters.get("messages.total", 0) + 1
        counters["messages.units"] = counters.get("messages.units", 0) + units

    def message_count(self, kind: str) -> int:
        return self._counters.get(f"messages.{kind}", 0)

    # -- observations -------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        self._observations.setdefault(name, []).append(value)

    def observations(self, name: str) -> List[float]:
        return list(self._observations.get(name, []))

    def observation_mean(self, name: str) -> float:
        values = self._observations.get(name)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def observation_max(self, name: str) -> float:
        values = self._observations.get(name)
        if not values:
            return 0.0
        return max(values)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Snapshot:
        return Snapshot(counters=dict(self._counters))

    def reset(self) -> None:
        self._counters.clear()
        self._observations.clear()
