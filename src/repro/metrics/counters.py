"""Counter and observation recording.

Counters are plain named integers (``messages.BackCall``, ``gc.objects_scanned``).
The incremental local trace reports how each gc tick resolved via
``gc.traces_skipped`` / ``gc.traces_fast_path`` / ``gc.traces_full``, and
``gc.objects_scanned`` aggregates clean- plus suspected-phase scans so
benchmarks can quote the incremental win as a single number.
Observations are named value series (``backinfo.outsets_distinct``) with
summary statistics.  A :class:`Snapshot` freezes the current state so a
benchmark can diff before/after an operation of interest.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping


@dataclass(frozen=True)
class Snapshot:
    """Immutable copy of all counters at one instant."""

    counters: Mapping[str, int]

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def diff(self, earlier: "Snapshot") -> Dict[str, int]:
        """Counter deltas since ``earlier`` (only non-zero entries)."""
        names = set(self.counters) | set(earlier.counters)
        deltas = {
            name: self.counters.get(name, 0) - earlier.counters.get(name, 0)
            for name in names
        }
        return {name: delta for name, delta in deltas.items() if delta}


@dataclass
class MetricsRecorder:
    """Mutable sink for counters and observations."""

    _counters: Counter = field(default_factory=Counter)
    _observations: Dict[str, List[float]] = field(default_factory=dict)

    # -- counters ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount

    def count(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counts_with_prefix(self, prefix: str) -> Dict[str, int]:
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def total_with_prefix(self, prefix: str) -> int:
        return sum(self.counts_with_prefix(prefix).values())

    # -- messages ---------------------------------------------------------

    def record_message(self, kind: str, units: int = 1) -> None:
        """Count one sent message of the given payload kind."""
        self._counters[f"messages.{kind}"] += 1
        self._counters["messages.total"] += 1
        self._counters["messages.units"] += units

    def message_count(self, kind: str) -> int:
        return self._counters.get(f"messages.{kind}", 0)

    # -- observations -------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        self._observations.setdefault(name, []).append(value)

    def observations(self, name: str) -> List[float]:
        return list(self._observations.get(name, []))

    def observation_mean(self, name: str) -> float:
        values = self._observations.get(name)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def observation_max(self, name: str) -> float:
        values = self._observations.get(name)
        if not values:
            return 0.0
        return max(values)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Snapshot:
        return Snapshot(counters=dict(self._counters))

    def reset(self) -> None:
        self._counters.clear()
        self._observations.clear()
