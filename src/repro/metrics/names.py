"""Canonical counter names.

Counter names used to be string literals scattered across the codebase,
which drifts: the same fact ends up counted under two spellings, and a typo
in a reader silently reads zero.  Fixed names live here as module-level
constants; families parameterized by payload kind or drop reason are small
helper functions.  Import from :mod:`repro.metrics`::

    from repro.metrics import names
    sim.metrics.count(names.MSG_LOST)
    sim.metrics.count(names.msg_dropped_kind("UpdatePayload"))
"""

from __future__ import annotations

from functools import lru_cache

# -- message accounting (Network) -----------------------------------------

MSG_TOTAL = "messages.total"
MSG_UNITS = "messages.units"
#: Original deliveries, all kinds (legacy aggregate; excludes dup copies).
MSG_DELIVERED = "messages.delivered"
#: Original drops, all kinds and reasons (legacy aggregate).
MSG_LOST = "messages.lost"
#: Prefix of every drop counter (per-kind and per-reason live under it).
MSG_DROPPED = "messages.dropped"
MSG_DROPPED_CRASH = "messages.dropped.crash"
MSG_DROPPED_PARTITION = "messages.dropped.partition"
MSG_DROPPED_LOSS = "messages.dropped.loss"
MSG_DROPPED_FAULT = "messages.dropped.fault"
#: Prefix of the duplicate-copy injection counters.
MSG_DUPLICATED = "messages.duplicated"


@lru_cache(maxsize=None)
def msg_sent(kind: str) -> str:
    """Original sends of one payload kind (written by record_message)."""
    return f"messages.{kind}"


@lru_cache(maxsize=None)
def msg_delivered_kind(kind: str) -> str:
    """Original deliveries of one payload kind."""
    return f"messages.delivered.{kind}"


@lru_cache(maxsize=None)
def msg_dropped_kind(kind: str) -> str:
    """Original drops of one payload kind (any reason).

    Per kind: ``msg_sent == msg_delivered_kind + msg_dropped_kind`` once no
    message of the kind is in flight.
    """
    return f"messages.dropped.{kind}"


@lru_cache(maxsize=None)
def msg_dropped_reason(reason: str) -> str:
    """Original drops for one reason: crash, partition, loss, fault."""
    return f"messages.dropped.{reason}"


@lru_cache(maxsize=None)
def msg_duplicated(kind: str) -> str:
    """Duplicate copies injected by a fault plan, per kind."""
    return f"messages.duplicated.{kind}"


@lru_cache(maxsize=None)
def msg_dup_delivered(kind: str) -> str:
    return f"messages.dup_delivered.{kind}"


@lru_cache(maxsize=None)
def msg_dup_dropped(kind: str) -> str:
    return f"messages.dup_dropped.{kind}"


@lru_cache(maxsize=None)
def dup_suppressed(kind: str) -> str:
    """Receiver-side duplicate deliveries suppressed, per payload kind."""
    return f"protocol.dup_suppressed.{kind}"


# -- local tracing ----------------------------------------------------------

LOCAL_TRACES = "gc.local_traces"
TRACES_SKIPPED = "gc.traces_skipped"
TRACES_FAST_PATH = "gc.traces_fast_path"
TRACES_FULL = "gc.traces_full"
OBJECTS_SWEPT = "gc.objects_swept"
OBJECTS_SCANNED = "gc.objects_scanned"
UPDATE_RETRANSMITS = "gc.update_retransmits"
UPDATE_RETRANSMITS_ABANDONED = "gc.update_retransmits_abandoned"

# -- delta update protocol ---------------------------------------------------

#: Delta payloads built at trace commit (sender side).
UPDATE_DELTAS_SENT = "gc.update_deltas_sent"
#: Periodic full state transfers built at trace commit in delta mode.
UPDATE_FULL_REFRESHES = "gc.update_full_refreshes"
#: Deltas rejected by the receiver's in-order gap check.
UPDATE_GAPS_DETECTED = "gc.update_gaps_detected"
#: Refresh requests sent by a desynced receiver.
UPDATE_REFRESHES_REQUESTED = "gc.update_refreshes_requested"
#: Full updates served in response to a refresh request.
UPDATE_REFRESHES_SERVED = "gc.update_refreshes_served"

# -- back tracing -----------------------------------------------------------

BACKTRACE_STARTED = "backtrace.started"
BACKTRACE_COMPLETED_GARBAGE = "backtrace.completed_garbage"
BACKTRACE_COMPLETED_LIVE = "backtrace.completed_live"
BACKTRACE_COMPLETED_TIMEOUT_LIVE = "backtrace.completed_timeout_live"
BACKTRACE_FRAME_TIMEOUTS = "backtrace.frame_timeouts"
BACKTRACE_OUTCOME_TIMEOUTS = "backtrace.outcome_timeouts"
BACKTRACE_STALE_REPLIES = "backtrace.stale_replies"
BACKTRACE_RETRY_SUPPRESSED = "backtrace.retry_suppressed"
BACKTRACE_RETRIES_BACKED_OFF = "backtrace.retries_backed_off"

# -- termination-detection collector ----------------------------------------

TERMINATION_TRIALS_STARTED = "termination.trials_started"
TERMINATION_TRIALS_GARBAGE = "termination.trials_garbage"
TERMINATION_TRIALS_LIVE = "termination.trials_live"
TERMINATION_TRIALS_ABORTED = "termination.trials_aborted"
TERMINATION_TRIALS_TIMEOUT = "termination.trials_timeout"
#: TrialCollect verdicts refused because the member went dirty after acking.
TERMINATION_COLLECTS_SUPPRESSED = "termination.collects_suppressed"
#: Member objects flagged garbage by accepted TrialCollect verdicts.
TERMINATION_INREFS_FLAGGED = "termination.inrefs_flagged"

# -- parallel coordination ---------------------------------------------------
#
# Counters of the parallel engine's coordinator<->worker protocol.  They are
# deliberately NOT written into the simulation's MetricsRecorder: the merged
# metrics of a parallel run must stay byte-identical to its sequential twin,
# and the twin has no coordinator.  They live in the coordinator's own stats
# dict instead; ``ParallelSimulation.coordination_stats()`` returns the raw
# dict (short keys, the historical shape) and
# ``ParallelSimulation.coordination_metrics()`` surfaces the same counters
# through the ``repro.metrics`` facade under these canonical names.

#: Safe-time windows dispatched since the fork.
PAR_WINDOWS = "parallel.windows"
#: Final clock-alignment rounds (one per run_until/run_for).
PAR_ALIGNS = "parallel.aligns"
#: Demand-planner windows whose bound beat horizon + min_latency thanks to
#: advertised earliest-output-times.
PAR_EOT_JUMPS = "parallel.eot_jumps"
#: Demand-planner windows that jumped straight to the target because no
#: shard could produce cross-shard traffic before it.
PAR_QUIESCENCE_JUMPS = "parallel.quiescence_jumps"
#: Windows dispatched before the previous window's replies were drained.
PAR_PIPELINED_WINDOWS = "parallel.pipelined_windows"
#: Cross-shard messages, whichever path they took (rings + pipes).
PAR_CROSS_SHARD_MESSAGES = "parallel.cross_shard_messages"
#: Cross-shard messages that travelled shard-to-shard through the
#: shared-memory rings (direct_rings), never crossing a coordinator pipe.
PAR_RING_MESSAGES = "parallel.ring_messages"
#: Bytes written into the shard-to-shard rings (frames included).  Counted
#: separately from the pipe byte counters so ``coordination_stats()`` can
#: show pipe bytes per window dropping to trailer-plus-cursor size while
#: the payload traffic moves into shared memory.
PAR_RING_BYTES = "parallel.ring_bytes"
#: Cross-shard messages that found their ring full (or the record
#: oversized) and spilled to the legacy coordinator-routed pipe path.
PAR_RING_SPILLS = "parallel.ring_spills"

#: coordination_stats() key -> canonical facade counter name.
PARALLEL_STAT_NAMES = {
    "windows": PAR_WINDOWS,
    "aligns": PAR_ALIGNS,
    "eot_jumps": PAR_EOT_JUMPS,
    "quiescence_jumps": PAR_QUIESCENCE_JUMPS,
    "pipelined_windows": PAR_PIPELINED_WINDOWS,
    "cross_shard_messages": PAR_CROSS_SHARD_MESSAGES,
    "ring_messages": PAR_RING_MESSAGES,
    "ring_bytes": PAR_RING_BYTES,
    "ring_spills": PAR_RING_SPILLS,
}
