"""Structured protocol event logging.

Attach a :class:`TraceLog` to a simulation and it records, in simulated-time
order, the events an operator of the paper's system would want to audit:
local traces (with sweep counts), back-trace lifecycles (start, verdict),
barrier firings, and message traffic summaries.  Events are plain records --
filterable, assertable in tests, and renderable as a timeline.

The log observes through the same public hooks the system exposes
(metrics deltas plus site callbacks); it never changes behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..core.backtrace.messages import TraceOutcome
from ..ids import SiteId, TraceId
from ..sim.simulation import Simulation


@dataclass(frozen=True)
class Event:
    """One logged protocol event."""

    time: float
    site: SiteId
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.2f}] {self.site:>6} {self.kind:<18} {extras}"


class TraceLog:
    """Event recorder for one simulation."""

    def __init__(self, sim: Simulation, capacity: int = 100_000):
        self.sim = sim
        self.capacity = capacity
        self.events: List[Event] = []
        self.dropped = 0
        self._wrap_sites()

    # -- recording ------------------------------------------------------------

    def record(self, site: SiteId, kind: str, **detail) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            Event(time=self.sim.now, site=site, kind=kind, detail=detail)
        )

    def _wrap_sites(self) -> None:
        for site in self.sim.sites.values():
            self._wrap_one(site)

    def _wrap_one(self, site) -> None:
        log = self

        original_run = site.run_local_trace

        def run_local_trace():
            result = original_run()
            if result is not None:
                log.record(
                    site.site_id,
                    "local-trace",
                    swept=len(result.swept),
                    clean=len(result.clean_objects),
                    suspected=len(result.suspected_objects),
                )
            return result

        site.run_local_trace = run_local_trace

        original_start = site.engine.start_trace

        def start_trace(outref_target):
            trace_id = original_start(outref_target)
            if trace_id is not None:
                log.record(
                    site.site_id, "backtrace-start",
                    trace=str(trace_id), outref=str(outref_target),
                )
            return trace_id

        site.engine.start_trace = start_trace

        original_outcome = site.engine.on_outcome

        def on_outcome(trace_id: TraceId, verdict: TraceOutcome):
            log.record(
                site.site_id, "backtrace-outcome",
                trace=str(trace_id), verdict=verdict.value,
            )
            if original_outcome is not None:
                original_outcome(trace_id, verdict)

        site.engine.on_outcome = on_outcome

        original_barrier = site.barrier.on_reference_arrival

        def on_reference_arrival(target):
            before = site.metrics.count("barrier.transfer_applied")
            original_barrier(target)
            if site.metrics.count("barrier.transfer_applied") > before:
                log.record(site.site_id, "transfer-barrier", inref=str(target))

        site.barrier.on_reference_arrival = on_reference_arrival

        original_crash = site.crash

        def crash():
            original_crash()
            log.record(site.site_id, "crash")

        site.crash = crash

        original_recover = site.recover

        def recover():
            original_recover()
            log.record(site.site_id, "recover")

        site.recover = recover

    # -- querying -------------------------------------------------------------------

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]

    def at_site(self, site: SiteId) -> List[Event]:
        return [event for event in self.events if event.site == site]

    def between(self, start: float, end: float) -> List[Event]:
        return [event for event in self.events if start <= event.time <= end]

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- rendering -----------------------------------------------------------------------

    def render(
        self,
        kinds: Optional[Iterable[str]] = None,
        limit: Optional[int] = None,
    ) -> str:
        wanted = set(kinds) if kinds is not None else None
        lines = [
            str(event)
            for event in self.events
            if wanted is None or event.kind in wanted
        ]
        if limit is not None:
            lines = lines[-limit:]
        return "\n".join(lines)
