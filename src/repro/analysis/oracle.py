"""The omniscient reachability oracle.

The oracle sees every heap, every root, and every in-flight message at once,
and computes ground-truth liveness: an object is live iff it is reachable
from some root following references across sites.  It exists for testing and
benchmarking -- the collectors under test never consult it.

Roots, mirroring the paper's model plus our explicit message model:

- persistent roots at every site;
- application-variable roots: local pins and variable-held outrefs
  (mutator positions are pinned variables, so they are covered);
- references carried by in-flight messages (a mutator hop or remote copy in
  transit can still install the reference at its destination);
- references parked in a site's deferred writes during a non-atomic trace.

Safety is the statement checked by :meth:`check_safety`: every object
reachable from the roots actually exists.  A collector that deleted a live
object leaves a dangling reference on a live path, which the check reports
as an :class:`~repro.errors.OracleError`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import OracleError
from ..ids import ObjectId
from ..sim.simulation import Simulation


class Oracle:
    """Ground-truth liveness for a whole simulation."""

    def __init__(self, sim: Simulation):
        self.sim = sim

    # -- roots -------------------------------------------------------------------

    def roots(self) -> Set[ObjectId]:
        roots: Set[ObjectId] = set()
        for site in self.sim.sites.values():
            roots.update(site.heap.persistent_roots)
            roots.update(site.heap.variable_roots)
            roots.update(site.variable_outrefs)
            roots.update(site.pending_carried_refs())
        for message in self.sim.network.in_flight_messages():
            roots.update(message.payload.carried_refs())
        return roots

    # -- liveness -----------------------------------------------------------------

    def live_set(self) -> Set[ObjectId]:
        """All object ids reachable from the roots (existing objects only)."""
        live: Set[ObjectId] = set()
        stack: List[ObjectId] = list(self.roots())
        while stack:
            oid = stack.pop()
            if oid in live:
                continue
            site = self.sim.sites.get(oid.site)
            if site is None:
                continue
            obj = site.heap.maybe_get(oid)
            if obj is None:
                continue
            live.add(oid)
            for ref in obj.iter_refs():
                if ref not in live:
                    stack.append(ref)
        return live

    def garbage_set(self) -> Set[ObjectId]:
        """Existing objects not reachable from any root."""
        live = self.live_set()
        garbage: Set[ObjectId] = set()
        for site in self.sim.sites.values():
            for oid in site.heap.object_ids():
                if oid not in live:
                    garbage.add(oid)
        return garbage

    def distributed_cyclic_garbage(self) -> Set[ObjectId]:
        """Garbage objects lying on inter-site cycles (plus what they reach).

        These are exactly the objects plain local tracing can never collect:
        garbage objects reachable from some garbage cycle that spans sites.
        Computed as: garbage objects reachable from a garbage object that is
        part of a cross-site strongly connected component.
        """
        garbage = self.garbage_set()
        # Build the garbage subgraph.
        edges: Dict[ObjectId, List[ObjectId]] = {}
        for oid in garbage:
            obj = self.sim.sites[oid.site].heap.maybe_get(oid)
            if obj is None:
                continue
            edges[oid] = [ref for ref in obj.iter_refs() if ref in garbage]
        cyclic_seeds = _cross_site_scc_members(edges)
        # Everything reachable from a cross-site-cycle member stays
        # uncollectable under plain local tracing.
        reachable: Set[ObjectId] = set()
        stack = list(cyclic_seeds)
        while stack:
            oid = stack.pop()
            if oid in reachable:
                continue
            reachable.add(oid)
            stack.extend(edges.get(oid, ()))
        return reachable

    # -- checks --------------------------------------------------------------------

    def check_safety(self) -> None:
        """Raise :class:`OracleError` if any live path dangles."""
        live: Set[ObjectId] = set()
        stack: List[ObjectId] = list(self.roots())
        while stack:
            oid = stack.pop()
            if oid in live:
                continue
            site = self.sim.sites.get(oid.site)
            if site is None:
                raise OracleError(f"live reference to unknown site: {oid}")
            obj = site.heap.maybe_get(oid)
            if obj is None:
                raise OracleError(
                    f"SAFETY VIOLATION: live object {oid} was collected"
                )
            live.add(oid)
            for ref in obj.iter_refs():
                if ref not in live:
                    stack.append(ref)

    def assert_no_garbage(self) -> None:
        garbage = self.garbage_set()
        if garbage:
            sample = sorted(garbage)[:10]
            raise OracleError(f"{len(garbage)} garbage objects remain, e.g. {sample}")


def _cross_site_scc_members(edges: Dict[ObjectId, List[ObjectId]]) -> Set[ObjectId]:
    """Members of strongly connected components spanning more than one site.

    Iterative Tarjan over an explicit adjacency dict.  Single-site
    components (including self-loops) are excluded: local tracing handles
    those fine; only cross-site components defeat it.
    """
    index: Dict[ObjectId, int] = {}
    low: Dict[ObjectId, int] = {}
    on_stack: Set[ObjectId] = set()
    scc_stack: List[ObjectId] = []
    counter = 0
    members: Set[ObjectId] = set()

    for root in edges:
        if root in index:
            continue
        work = [(root, iter(edges[root]))]
        index[root] = low[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for ref in it:
                if ref not in edges:
                    continue
                if ref not in index:
                    index[ref] = low[ref] = counter
                    counter += 1
                    scc_stack.append(ref)
                    on_stack.add(ref)
                    work.append((ref, iter(edges[ref])))
                    advanced = True
                    break
                if ref in on_stack:
                    low[node] = min(low[node], index[ref])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component: List[ObjectId] = []
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sites = {member.site for member in component}
                if len(sites) > 1:
                    members.update(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return members
