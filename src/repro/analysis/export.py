"""Snapshot export of the distributed object graph and ioref tables.

Operators debugging a distributed collector need to *see* the state: which
objects exist where, which references cross sites, what the inref/outref
tables believe, and which iorefs are suspected or flagged.  This module
renders a simulation snapshot as Graphviz DOT (sites as clusters, suspicion
as color) or as a plain JSON-able dict for programmatic diffing.

Export is read-only and safe to call at any simulated time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from ..ids import ObjectId
from ..sim.simulation import Simulation


def site_snapshot(site) -> Dict[str, Any]:
    """A JSON-able dump of one site's heap and ioref tables.

    Shared between the whole-simulation :func:`graph_snapshot` and the parallel
    engine's shard workers (each worker snapshots exactly its shard and the
    coordinator merges, so a parallel snapshot is byte-comparable to a
    sequential one).
    """
    threshold = site.inrefs.suspicion_threshold
    objects = {}
    for obj in site.heap.objects():
        objects[str(obj.oid)] = {
            "refs": [str(ref) for ref in obj.iter_refs()],
            "persistent_root": obj.oid in site.heap.persistent_roots,
            "variable_root": obj.oid in site.heap.variable_roots,
        }
    inrefs = {}
    for entry in site.inrefs.entries():
        inrefs[str(entry.target)] = {
            "sources": dict(sorted(entry.sources.items())),
            "distance": entry.distance,
            "clean": entry.is_clean(threshold),
            "garbage": entry.garbage,
            "back_threshold": entry.back_threshold,
        }
    outrefs = {}
    for entry in site.outrefs.entries():
        outrefs[str(entry.target)] = {
            "distance": entry.distance,
            "clean": entry.is_clean,
            "pinned": entry.pin_count > 0,
            "inset": sorted(str(x) for x in entry.inset),
            "back_threshold": entry.back_threshold,
        }
    return {
        "objects": objects,
        "inrefs": inrefs,
        "outrefs": outrefs,
        "crashed": site.crashed,
    }


def site_snapshot_delta(site, last_digest: Optional[bytes]):
    """``(digest, snapshot_or_None)`` for the delta export protocol.

    The parallel engine's shard workers ship a site's snapshot only when it
    changed since the last export.  "Changed" is decided by content, not by
    instrumentation: the snapshot dict is pickled canonically and digested,
    so the check is exact -- any observable difference changes the digest,
    and nothing else does.  ``None`` in the second slot means "same as what
    you already have"; the coordinator keeps the previous payload.
    """
    import hashlib
    import pickle

    snap = site_snapshot(site)
    digest = hashlib.blake2b(
        pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL), digest_size=16
    ).digest()
    if digest == last_digest:
        return digest, None
    return digest, snap


def graph_snapshot(sim: Simulation) -> Dict[str, Any]:
    """A JSON-able dump of heaps and ioref tables, keyed by site."""
    data: Dict[str, Any] = {"time": sim.now, "sites": {}}
    for site_id in sorted(sim.sites):
        data["sites"][site_id] = site_snapshot(sim.sites[site_id])
    return data


def graph_diff(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """What changed between two snapshots: per site, objects born and died,
    and iorefs added/removed."""
    result: Dict[str, Any] = {}
    for site_id in sorted(set(before["sites"]) | set(after["sites"])):
        old = before["sites"].get(site_id, {"objects": {}, "inrefs": {}, "outrefs": {}})
        new = after["sites"].get(site_id, {"objects": {}, "inrefs": {}, "outrefs": {}})
        entry = {
            "objects_born": sorted(set(new["objects"]) - set(old["objects"])),
            "objects_died": sorted(set(old["objects"]) - set(new["objects"])),
            "inrefs_added": sorted(set(new["inrefs"]) - set(old["inrefs"])),
            "inrefs_removed": sorted(set(old["inrefs"]) - set(new["inrefs"])),
            "outrefs_added": sorted(set(new["outrefs"]) - set(old["outrefs"])),
            "outrefs_removed": sorted(set(old["outrefs"]) - set(new["outrefs"])),
        }
        if any(entry.values()):
            result[site_id] = entry
    return result


def to_dot(
    sim: Simulation,
    highlight: Optional[Set[ObjectId]] = None,
    include_iorefs: bool = True,
) -> str:
    """Render the distributed heap as Graphviz DOT.

    Sites become clusters; persistent roots are doubled octagons; suspected
    inref targets are colored orange, garbage-flagged ones red; ``highlight``
    objects get a bold outline.
    """
    highlight = highlight or set()
    lines: List[str] = [
        "digraph repro {",
        "  rankdir=LR;",
        "  node [shape=ellipse, fontsize=10];",
    ]
    for site_id in sorted(sim.sites):
        site = sim.sites[site_id]
        threshold = site.inrefs.suspicion_threshold
        lines.append(f'  subgraph "cluster_{site_id}" {{')
        label = site_id + (" (CRASHED)" if site.crashed else "")
        lines.append(f'    label="{label}";')
        for obj in sorted(site.heap.objects(), key=lambda o: o.oid):
            attrs = []
            if obj.oid in site.heap.persistent_roots:
                attrs.append("shape=doubleoctagon")
            entry = site.inrefs.get(obj.oid)
            if entry is not None:
                if entry.garbage:
                    attrs.append('color=red, style=filled, fillcolor="#ffcccc"')
                elif entry.is_suspected(threshold):
                    attrs.append('color=orange, style=filled, fillcolor="#ffeecc"')
            if obj.oid in highlight:
                attrs.append("penwidth=3")
            attr_text = (" [" + ", ".join(attrs) + "]") if attrs else ""
            lines.append(f'    "{obj.oid}"{attr_text};')
        lines.append("  }")
    # Edges after all clusters so cross-cluster references render.
    for site_id in sorted(sim.sites):
        site = sim.sites[site_id]
        for obj in sorted(site.heap.objects(), key=lambda o: o.oid):
            for ref in obj.iter_refs():
                style = "" if ref.site == site_id else ' [style=bold, color="#3355bb"]'
                lines.append(f'  "{obj.oid}" -> "{ref}"{style};')
    if include_iorefs:
        for site_id in sorted(sim.sites):
            site = sim.sites[site_id]
            for entry in sorted(site.outrefs.entries(), key=lambda e: e.target):
                if entry.is_suspected and entry.inset:
                    for inref in sorted(entry.inset):
                        lines.append(
                            f'  "{inref}" -> "{entry.target}"'
                            ' [style=dashed, color=gray, label="inset"];'
                        )
    lines.append("}")
    return "\n".join(lines)


# -- deprecated aliases ------------------------------------------------------

_DEPRECATED = {"snapshot": graph_snapshot, "diff_snapshots": graph_diff}


def __getattr__(name: str):
    """Old export names keep importing, with a :class:`DeprecationWarning`.

    The canonical spellings are ``graph_snapshot`` / ``graph_diff`` (also on
    the :mod:`repro.metrics` facade).
    """
    replacement = _DEPRECATED.get(name)
    if replacement is not None:
        import warnings

        warnings.warn(
            f"repro.analysis.export.{name} is deprecated; "
            f"use {replacement.__name__} (or the repro.metrics facade)",
            DeprecationWarning,
            stacklevel=2,
        )
        return replacement
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
