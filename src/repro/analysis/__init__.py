"""Analysis of a running simulation: ground-truth oracle + event logging."""

from .oracle import Oracle
from .tracelog import Event, TraceLog
from .export import diff_snapshots, snapshot, to_dot

__all__ = ["Oracle", "TraceLog", "Event", "snapshot", "diff_snapshots", "to_dot"]
