"""Analysis of a running simulation: ground-truth oracle + event logging."""

from .oracle import Oracle
from .tracelog import Event, TraceLog
from .export import graph_diff, graph_snapshot, to_dot

__all__ = [
    "Oracle",
    "TraceLog",
    "Event",
    "graph_snapshot",
    "graph_diff",
    "to_dot",
    # deprecated aliases, kept importable via __getattr__
    "snapshot",
    "diff_snapshots",
]


def __getattr__(name: str):
    if name in ("snapshot", "diff_snapshots"):
        from . import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
