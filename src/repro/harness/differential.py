"""Differential-testing harness: back tracing vs the termination backend.

Two complete cycle-collection backends now live behind the
:class:`~repro.core.collector.Collector` boundary -- the paper's back tracer
and the termination-detection trial-deletion rival.  They share *everything
below* the boundary (heaps, reference listing, local traces, distance
propagation, barriers, the network) and disagree about *everything above*
it, which makes them ideal differential-testing oracles for each other: on
the same seeded workload both must reclaim **exactly** the same garbage --
the set the omniscient :class:`~repro.analysis.Oracle` computes -- differing
only in *when* they reclaim it.

Each case builds one seeded workload twice (identical construction: the
backend only matters once GC rounds start), cuts the same anchors, asks the
oracle for the ground-truth garbage set, then drives each simulation with
audited GC rounds until it reclaims everything or a round bound passes.
The verdict compares three things per backend pair:

- **agreement** -- reclaimed sets identical, and identical to the oracle's
  garbage set (safety is audited every round on both sides as usual);
- **latency** -- rounds to full reclamation per backend, plus the mean gap
  in per-object reclaim rounds over the common set;
- **residue** -- any object one backend reclaimed and the other left.

Like :mod:`.chaos`, matrix cells never raise: every violation lands on the
result row so a full seed x workload sweep reports all cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.oracle import Oracle
from ..config import GcConfig, NetworkConfig, SimulationConfig
from ..errors import OracleError
from ..ids import ObjectId
from ..sim.simulation import Simulation
from ..workloads.churn import ChurnConfig, SiteChurn
from ..workloads.generators import build_ring_cycle
from ..workloads.hypertext import build_hypertext_web

#: The two rival backends every case cross-runs.
BACKENDS = ("backtrace", "termination")

#: Workload name -> builder; each builder makes garbage deterministically.
WORKLOADS = ("rings", "churn", "hypertext")

DEFAULT_SEEDS = tuple(range(8))


@dataclass
class BackendRun:
    """One backend's half of a differential case."""

    collector: str
    reclaimed: Set[ObjectId] = field(default_factory=set)
    #: object -> GC round (1-based) in which it disappeared.
    reclaim_round: Dict[ObjectId, int] = field(default_factory=dict)
    rounds_to_clear: Optional[int] = None
    residual_garbage: int = 0
    safety_ok: bool = True
    violations: List[str] = field(default_factory=list)


@dataclass
class DifferentialResult:
    """Verdict of one (seed, workload) cell."""

    seed: int
    workload: str
    expected_garbage: int = 0
    runs: Dict[str, BackendRun] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        return not self.violations and all(
            run.safety_ok and not run.violations for run in self.runs.values()
        )

    @property
    def latency_gap(self) -> Optional[float]:
        """Mean (termination - backtrace) per-object reclaim-round gap."""
        bt = self.runs.get("backtrace")
        tm = self.runs.get("termination")
        if bt is None or tm is None:
            return None
        common = [
            oid for oid in bt.reclaim_round if oid in tm.reclaim_round
        ]
        if not common:
            return None
        return sum(
            tm.reclaim_round[oid] - bt.reclaim_round[oid] for oid in common
        ) / len(common)


def _gc_config(collector: str) -> GcConfig:
    # Low thresholds bound rounds-to-suspicion so the drain loop converges
    # quickly under both backends; identical across the pair by construction.
    return GcConfig(
        collector=collector,
        suspicion_threshold=2,
        assumed_cycle_length=2,
    )


def _build_rings(sim: Simulation, seed: int, site_ids: Sequence[str]) -> None:
    n = len(site_ids)
    rotate = lambda offset: list(site_ids[offset:]) + list(site_ids[:offset])
    doomed = [
        build_ring_cycle(sim, rotate(index % n), objects_per_site=2)
        for index in range(3)
    ]
    for index in range(2):  # live bait: must survive both backends
        build_ring_cycle(sim, rotate((index + 1) % n))
    sim.settle()
    for ring in doomed:
        ring.make_garbage(sim)
    sim.settle()


def _build_churn(sim: Simulation, seed: int, site_ids: Sequence[str]) -> None:
    doomed = [build_ring_cycle(sim, list(site_ids)) for _ in range(2)]
    # Churn draws from the sim's named RNG streams, so both backend builds
    # replay the exact same operation sequence for one sim seed.
    churn = SiteChurn(sim, list(site_ids), config=ChurnConfig(mean_interval=5.0))
    churn.start(until=600.0)
    sim.run_for(700.0)
    churn.stop()
    sim.settle()
    for ring in doomed:
        ring.make_garbage(sim)
    sim.settle()


def _build_hypertext(sim: Simulation, seed: int, site_ids: Sequence[str]) -> None:
    # Sparse citations: with the default density one surviving catalog entry
    # transitively reaches nearly every document and no garbage forms.
    web = build_hypertext_web(
        sim,
        list(site_ids),
        citations_per_document=1,
        back_link_probability=0.9,
        seed=seed,
    )
    sim.settle()
    # Strand all but one catalogued document: whatever the surviving entry
    # doesn't reach through citations -- usually several cross-site citation
    # cycles -- becomes garbage; its own closure is the live bait.
    for index in list(web.catalog_entries)[1:]:
        web.unlink_from_catalog(sim, index)
    sim.settle()


_BUILDERS: Dict[str, Callable[[Simulation, int, Sequence[str]], None]] = {
    "rings": _build_rings,
    "churn": _build_churn,
    "hypertext": _build_hypertext,
}


def _run_backend(
    collector: str,
    seed: int,
    workload: str,
    n_sites: int,
    rounds_bound: int,
) -> Tuple[BackendRun, Set[ObjectId]]:
    """Build, cut, and drain one backend; return its run + oracle garbage."""
    run = BackendRun(collector=collector)
    config = SimulationConfig(
        seed=seed,
        gc=_gc_config(collector),
        network=NetworkConfig(pair_rng_streams=True),
    )
    sim = Simulation.create(config)
    site_ids = [f"s{index}" for index in range(n_sites)]
    sim.add_sites(site_ids, auto_gc=False)
    _BUILDERS[workload](sim, seed, site_ids)

    oracle = Oracle(sim)
    expected = oracle.garbage_set()
    remaining = set(sim.all_object_ids())
    initial = set(remaining)
    try:
        for round_index in range(1, rounds_bound + 1):
            sim.run_gc_round()
            oracle.check_safety()
            now_remaining = set(sim.all_object_ids())
            for oid in remaining - now_remaining:
                run.reclaim_round[oid] = round_index
            remaining = now_remaining
            if not oracle.garbage_set():
                run.rounds_to_clear = round_index
                break
        else:
            run.residual_garbage = len(oracle.garbage_set())
            run.violations.append(
                f"{collector}: {run.residual_garbage} garbage objects "
                f"survived {rounds_bound} rounds"
            )
    except OracleError as error:
        run.safety_ok = False
        run.violations.append(f"{collector}: {error}")
    run.reclaimed = initial - remaining
    return run, expected


def run_differential_case(
    seed: int,
    workload: str,
    n_sites: int = 4,
    rounds_bound: int = 40,
) -> DifferentialResult:
    """Cross-run both backends on one seeded workload; diff the outcome."""
    if workload not in _BUILDERS:
        raise ValueError(
            f"unknown workload {workload!r}; available: {', '.join(WORKLOADS)}"
        )
    result = DifferentialResult(seed=seed, workload=workload)
    expected_sets: Dict[str, Set[ObjectId]] = {}
    for collector in BACKENDS:
        run, expected = _run_backend(
            collector, seed, workload, n_sites, rounds_bound
        )
        result.runs[collector] = run
        expected_sets[collector] = expected

    # The build phase is backend-independent; if the ground truth differs,
    # the twin construction itself is broken -- flag it loudly.
    first, second = (expected_sets[name] for name in BACKENDS)
    if first != second:
        result.violations.append(
            f"non-identical twin builds: oracle garbage differs by "
            f"{len(first ^ second)} objects"
        )
        return result
    result.expected_garbage = len(first)

    bt, tm = (result.runs[name] for name in BACKENDS)
    if bt.reclaimed != tm.reclaimed:
        only_bt = sorted(str(oid) for oid in bt.reclaimed - tm.reclaimed)
        only_tm = sorted(str(oid) for oid in tm.reclaimed - bt.reclaimed)
        result.violations.append(
            f"reclaimed sets differ: only backtrace {only_bt[:5]}, "
            f"only termination {only_tm[:5]}"
        )
    for name, run in result.runs.items():
        if run.rounds_to_clear is not None and run.reclaimed != first:
            # Cleared the oracle's garbage set but swept a different set --
            # can only happen if it collected something live (the oracle
            # audit should have caught it first, but belt and braces).
            result.violations.append(
                f"{name}: reclaimed {len(run.reclaimed)} objects but oracle "
                f"expected {len(first)}"
            )
    return result


def run_differential_matrix(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workloads: Sequence[str] = WORKLOADS,
    **case_kwargs,
) -> List[DifferentialResult]:
    """Every seed against every workload; one result per cell."""
    results: List[DifferentialResult] = []
    for seed in seeds:
        for workload in workloads:
            results.append(run_differential_case(seed, workload, **case_kwargs))
    return results
