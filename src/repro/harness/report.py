"""Plain-text table formatting for benchmark output.

Benchmarks print the rows/series the paper's claims describe; this keeps the
formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import List, Sequence


class Table:
    """A fixed-column text table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(value) for value in values])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row))
            )
        lines.append(rule)
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
