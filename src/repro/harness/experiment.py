"""Parameter-sweep experiment runner.

A thin, dependency-free harness for the kind of study the benchmarks run:
define a function from parameters to a metrics dict, declare the grid, and
get back a result table with deterministic per-cell seeds, CSV export, and
aggregation over repeats.

Example::

    runner = ExperimentRunner(
        name="cycle-latency",
        run=lambda p, seed: {"rounds": measure(p["sites"], seed)},
        parameters={"sites": [2, 4, 8]},
        repeats=3,
    )
    results = runner.execute()
    print(results.to_table("rounds").render())
    results.write_csv("out.csv")
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

from ..errors import ConfigError
from .report import Table

RunFn = Callable[[Mapping[str, Any], int], Mapping[str, float]]


@dataclass(frozen=True)
class CellResult:
    """One (parameter combination, repeat) measurement."""

    parameters: Mapping[str, Any]
    seed: int
    metrics: Mapping[str, float]


@dataclass
class ExperimentResults:
    """All cells of one executed experiment."""

    name: str
    parameter_names: List[str]
    cells: List[CellResult] = field(default_factory=list)

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for cell in self.cells:
            for key in cell.metrics:
                if key not in names:
                    names.append(key)
        return names

    def grouped(self) -> Dict[tuple, List[CellResult]]:
        """Cells grouped by parameter combination (repeats together)."""
        groups: Dict[tuple, List[CellResult]] = {}
        for cell in self.cells:
            key = tuple(cell.parameters[name] for name in self.parameter_names)
            groups.setdefault(key, []).append(cell)
        return groups

    def mean(self, key: tuple, metric: str) -> float:
        cells = self.grouped()[key]
        values = [cell.metrics[metric] for cell in cells if metric in cell.metrics]
        return sum(values) / len(values) if values else 0.0

    def to_table(self, *metrics: str) -> Table:
        """Aggregate repeats into means and render as a table."""
        chosen = list(metrics) if metrics else self.metric_names()
        table = Table(self.name, [*self.parameter_names, *chosen])
        for key in sorted(self.grouped()):
            row = list(key) + [self.mean(key, metric) for metric in chosen]
            table.add_row(*row)
        return table

    def write_csv(self, path) -> None:
        """One row per cell (repeats unaggregated), for external analysis."""
        metric_names = self.metric_names()
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([*self.parameter_names, "seed", *metric_names])
            for cell in self.cells:
                writer.writerow(
                    [cell.parameters[name] for name in self.parameter_names]
                    + [cell.seed]
                    + [cell.metrics.get(metric, "") for metric in metric_names]
                )


class ExperimentRunner:
    """Executes ``run(parameters, seed)`` over the full parameter grid."""

    def __init__(
        self,
        name: str,
        run: RunFn,
        parameters: Mapping[str, Sequence[Any]],
        repeats: int = 1,
        base_seed: int = 0,
    ):
        if repeats < 1:
            raise ConfigError("repeats must be >= 1")
        if not parameters:
            raise ConfigError("at least one parameter axis is required")
        for axis, values in parameters.items():
            if not values:
                raise ConfigError(f"parameter axis {axis!r} has no values")
        self.name = name
        self.run = run
        self.parameters = dict(parameters)
        self.repeats = repeats
        self.base_seed = base_seed

    def grid(self) -> Iterable[Dict[str, Any]]:
        names = list(self.parameters)
        for combo in itertools.product(*(self.parameters[n] for n in names)):
            yield dict(zip(names, combo))

    def execute(self) -> ExperimentResults:
        results = ExperimentResults(
            name=self.name, parameter_names=list(self.parameters)
        )
        for cell_index, parameters in enumerate(self.grid()):
            for repeat in range(self.repeats):
                # Deterministic but distinct per (cell, repeat).
                seed = self.base_seed + cell_index * 1000 + repeat
                metrics = dict(self.run(parameters, seed))
                results.cells.append(
                    CellResult(parameters=dict(parameters), seed=seed, metrics=metrics)
                )
        return results
