"""Experiment harness: scenario builders, runners, and report formatting."""

from .scenarios import (
    FigureScenario,
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure5,
)
from .report import Table
from .profiling import profiled

__all__ = [
    "profiled",
    "FigureScenario",
    "build_figure1",
    "build_figure2",
    "build_figure3",
    "build_figure5",
    "Table",
]
