"""Experiment harness: scenario builders, runners, and report formatting."""

from .scenarios import (
    FigureScenario,
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure5,
)
from .report import Table
from .profiling import profiled
from .chaos import ChaosResult, run_chaos_case, run_chaos_matrix, standard_plans

__all__ = [
    "profiled",
    "ChaosResult",
    "run_chaos_case",
    "run_chaos_matrix",
    "standard_plans",
    "FigureScenario",
    "build_figure1",
    "build_figure2",
    "build_figure3",
    "build_figure5",
    "Table",
]
