"""Experiment harness: scenario builders, runners, and report formatting."""

from .scenarios import (
    FigureScenario,
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure5,
)
from .report import Table
from .profiling import profiled
from .chaos import ChaosResult, run_chaos_case, run_chaos_matrix, standard_plans
from .differential import (
    DifferentialResult,
    run_differential_case,
    run_differential_matrix,
)

__all__ = [
    "profiled",
    "ChaosResult",
    "run_chaos_case",
    "run_chaos_matrix",
    "standard_plans",
    "DifferentialResult",
    "run_differential_case",
    "run_differential_matrix",
    "FigureScenario",
    "build_figure1",
    "build_figure2",
    "build_figure3",
    "build_figure5",
    "Table",
]
