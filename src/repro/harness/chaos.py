"""Chaos harness: seed x fault-plan matrices audited by the oracle.

The paper's fault-tolerance claims (section 4.6) are two-sided:

- **safety** -- no live object is ever collected, no matter which messages
  are lost, duplicated, reordered, or which sites crash;
- **eventual collection** -- once the faults heal, every garbage cycle is
  reclaimed (conservative timeouts only *delay* collection).

Each chaos case builds a known object population (garbage rings that get cut
loose, live "bait" rings that must survive), runs GC rounds while a
:class:`~repro.net.faults.FaultPlan` mauls the network, audits
:class:`~repro.analysis.Oracle.check_safety` after every step, and finally
drives collection to completion after the plan heals.  It also reconciles
the network's accounting: for every payload kind,
``messages.<kind> == messages.delivered.<kind> + messages.dropped.<kind>``
(originals) and likewise for injected duplicates.

The workload deliberately performs **no remote-copy traffic inside fault
windows**: a lost insert leaves a pinned outref behind (the paper's "storage
leak, never incorrect collection"), which would make the eventual-collection
assertion fail for a reason that is expected, not a bug.  Garbage is created
by *local* anchor cuts, which need no messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.oracle import Oracle
from ..config import GcConfig, NetworkConfig, SimulationConfig
from ..errors import OracleError
from ..ids import SiteId
from ..net.faults import FaultPlan
from ..sim.simulation import Simulation
from ..workloads.generators import CycleWorkload, build_ring_cycle

#: Fault windows used by :func:`standard_plans`.  The workload is built and
#: settled well before ``FAULT_START`` so construction traffic (inserts,
#: initial updates) is never exposed to the plan.
FAULT_START = 1000.0
FAULT_END = 2600.0


@dataclass
class ChaosResult:
    """Outcome of one (seed, plan) chaos case."""

    seed: int
    plan: str
    safety_ok: bool = True
    collected: bool = False
    rounds_to_collect: int = 0
    residual_garbage: int = 0
    counters_ok: bool = True
    violations: List[str] = field(default_factory=list)
    dup_suppressed: int = 0
    retransmits: int = 0
    dropped: int = 0
    duplicated: int = 0

    @property
    def ok(self) -> bool:
        return self.safety_ok and self.collected and self.counters_ok


def standard_plans(sites: Sequence[SiteId]) -> List[FaultPlan]:
    """The default chaos matrix: clean path plus four flavours of mayhem."""
    sites = sorted(sites)
    half = max(1, len(sites) // 2)
    return [
        FaultPlan(name="clean"),
        FaultPlan.loss(0.20, start=FAULT_START, end=FAULT_END),
        FaultPlan.duplication(
            0.15, copies=2, lag=30.0, start=FAULT_START, end=FAULT_END
        ),
        FaultPlan.reorder_burst(0.30, delay=40.0, start=FAULT_START, end=FAULT_END),
        FaultPlan.loss(0.20, start=FAULT_START, end=FAULT_END).merge(
            FaultPlan.duplication(
                0.15, copies=2, lag=30.0, start=FAULT_START, end=FAULT_END
            ),
            FaultPlan.reorder_burst(
                0.30, delay=40.0, start=FAULT_START, end=FAULT_END
            ),
        ).named("storm"),
        FaultPlan.crash_window(
            sites[0], at=FAULT_START + 200.0, recover_at=FAULT_END - 200.0
        ),
        FaultPlan.partition_window(
            (frozenset(sites[:half]), frozenset(sites[half:])),
            at=FAULT_START + 200.0,
            heal_at=FAULT_END - 200.0,
        ),
    ]


def _apply_edge(sim: Simulation, action: str, data) -> None:
    if action == "crash":
        sim.site(data).crash()
    elif action == "recover":
        sim.site(data).recover()
        # recover() restarts the periodic GC ticker; this harness drives GC
        # manually, so silence it again.
        sim.site(data).stop_auto_gc()
    elif action == "partition":
        sim.network.partition(*[set(group) for group in data])
    elif action == "heal_partition":
        sim.network.heal_partition()


def _reconcile_counters(sim: Simulation, result: ChaosResult) -> None:
    """Check sent = delivered + dropped per payload kind (and per dup copy)."""
    counters: Dict[str, int] = sim.metrics.counts_with_prefix("")
    kinds = set()
    for key in counters:
        if key.startswith("messages.delivered."):
            kinds.add(key[len("messages.delivered.") :])
        elif key.startswith("messages.duplicated."):
            kinds.add(key[len("messages.duplicated.") :])
    for prefix in ("messages.dropped.", "messages.dup_delivered.", "messages.dup_dropped."):
        for key in counters:
            if key.startswith(prefix):
                suffix = key[len(prefix) :]
                # reason buckets (crash/partition/loss/fault) are not kinds
                if suffix[:1].isupper() or suffix == "Bundle":
                    kinds.add(suffix)
    for kind in sorted(kinds):
        sent = counters.get(f"messages.{kind}", 0)
        delivered = counters.get(f"messages.delivered.{kind}", 0)
        dropped = counters.get(f"messages.dropped.{kind}", 0)
        if sent != delivered + dropped:
            result.counters_ok = False
            result.violations.append(
                f"counter mismatch for {kind}: sent={sent} "
                f"delivered={delivered} dropped={dropped}"
            )
        dup = counters.get(f"messages.duplicated.{kind}", 0)
        dup_delivered = counters.get(f"messages.dup_delivered.{kind}", 0)
        dup_dropped = counters.get(f"messages.dup_dropped.{kind}", 0)
        if dup != dup_delivered + dup_dropped:
            result.counters_ok = False
            result.violations.append(
                f"duplicate-counter mismatch for {kind}: injected={dup} "
                f"delivered={dup_delivered} dropped={dup_dropped}"
            )
    result.dropped = counters.get("messages.lost", 0)
    result.duplicated = sum(
        value
        for key, value in counters.items()
        if key.startswith("messages.duplicated.")
    )
    result.retransmits = counters.get("gc.update_retransmits", 0)
    result.dup_suppressed = sum(
        value
        for key, value in counters.items()
        if key.startswith("protocol.dup_suppressed.")
    )


def run_chaos_case(
    seed: int,
    plan: FaultPlan,
    n_sites: int = 6,
    garbage_rings: int = 3,
    live_rings: int = 2,
    collect_rounds_bound: int = 40,
    gc: Optional[GcConfig] = None,
    parallel_workers: int = 1,
) -> ChaosResult:
    """Run one audited chaos case; never raises for protocol failures.

    Safety violations, missed collection, and counter mismatches are
    reported on the returned :class:`ChaosResult` so a matrix run surveys
    every cell instead of dying on the first bad one.
    """
    result = ChaosResult(seed=seed, plan=plan.name)
    config = SimulationConfig(
        seed=seed,
        gc=gc or GcConfig(),
        network=NetworkConfig(pair_rng_streams=True),
        parallel_workers=parallel_workers,
    )
    sim = Simulation.create(config, fault_plan=plan)
    site_ids = [f"s{index}" for index in range(n_sites)]
    sim.add_sites(site_ids, auto_gc=False)
    oracle = Oracle(sim)

    # -- build phase: all construction traffic drains before faults begin --
    rotate = lambda offset: site_ids[offset:] + site_ids[:offset]
    doomed: List[CycleWorkload] = [
        build_ring_cycle(sim, rotate(index % n_sites), rooted=True)
        for index in range(garbage_rings)
    ]
    for index in range(live_rings):
        build_ring_cycle(sim, rotate((index + 1) % n_sites), rooted=True)
    sim.settle()
    if sim.now >= FAULT_START and not plan.is_empty:
        result.violations.append(
            f"workload construction overran the fault window ({sim.now})"
        )

    # -- fault phase: cut anchors locally, run GC rounds under fire --------
    edges = plan.schedule_edges()
    edge_index = 0
    healed = plan.healed_at
    if healed == float("inf"):
        result.violations.append("plan never heals; eventual collection untestable")
        healed = FAULT_END
    horizon = max(healed, FAULT_END)
    cut_times = [
        FAULT_START + (index + 1) * (FAULT_END - FAULT_START) / (garbage_rings + 1)
        for index in range(garbage_rings)
    ]
    cut_index = 0
    try:
        while sim.now < horizon:
            candidates = [horizon]
            if edge_index < len(edges):
                candidates.append(edges[edge_index][0])
            if cut_index < len(cut_times):
                candidates.append(cut_times[cut_index])
            next_stop = min(candidates)
            if next_stop > sim.now:
                sim.run_until(next_stop)
            while edge_index < len(edges) and edges[edge_index][0] <= sim.now:
                _, action, data = edges[edge_index]
                edge_index += 1
                _apply_edge(sim, action, data)
            while cut_index < len(cut_times) and cut_times[cut_index] <= sim.now:
                doomed[cut_index].make_garbage(sim)
                cut_index += 1
            sim.run_gc_round()
            oracle.check_safety()
        # A GC round can overshoot the horizon with heal edges still queued
        # (recover/heal_partition at the window's edge): apply them now.
        while edge_index < len(edges):
            _, action, data = edges[edge_index]
            edge_index += 1
            _apply_edge(sim, action, data)
    except OracleError as error:
        result.safety_ok = False
        result.violations.append(str(error))
        return result

    # -- heal phase: drive collection to completion ------------------------
    for ring in doomed[cut_index:]:  # cuts scheduled past the horizon
        ring.make_garbage(sim)
    try:
        for round_index in range(1, collect_rounds_bound + 1):
            sim.run_gc_round()
            oracle.check_safety()
            remaining = oracle.garbage_set()
            if not remaining:
                result.collected = True
                result.rounds_to_collect = round_index
                break
        else:
            result.residual_garbage = len(oracle.garbage_set())
            result.violations.append(
                f"{result.residual_garbage} garbage objects survived "
                f"{collect_rounds_bound} post-heal rounds"
            )
        # Let abandoned retransmission chains and straggler duplicates die
        # before reconciling the books.
        sim.settle()
        oracle.check_safety()
    except OracleError as error:
        result.safety_ok = False
        result.violations.append(str(error))
        return result

    in_flight = list(sim.network.in_flight_messages())
    if in_flight:
        result.violations.append(f"{len(in_flight)} messages still in flight")
        result.counters_ok = False
    _reconcile_counters(sim, result)
    close = getattr(sim, "close", None)
    if close is not None:
        close()
    return result


def run_chaos_matrix(
    seeds: Sequence[int],
    plans: Optional[Sequence[FaultPlan]] = None,
    **case_kwargs,
) -> List[ChaosResult]:
    """Every seed against every plan; returns one result per cell."""
    results: List[ChaosResult] = []
    for seed in seeds:
        site_count = case_kwargs.get("n_sites", 6)
        resolved = plans
        if resolved is None:
            resolved = standard_plans([f"s{index}" for index in range(site_count)])
        for plan in resolved:
            results.append(run_chaos_case(seed, plan, **case_kwargs))
    return results
