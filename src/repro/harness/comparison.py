"""The collector-comparison driver behind benchmark E6 and the shootout
example.

One scenario, many collectors: a two-site garbage cycle (on s0, s1) inside an
8-site system whose remaining sites hold live inter-site structure.  Each
collector runs on an identical fresh simulation; per run we report rounds to
collection, protocol message count, the set of sites its protocol involved,
and whether collection still succeeds with a crashed bystander site.

Collectors are selected through ``GcConfig.collector`` and the registry
(:mod:`repro.core.collector`): per-site backends (backtrace, termination)
just run GC rounds, driver-style baselines are reached through
``sim.collector_driver``.  The short E6 row names below predate the registry
names and are kept for table/benchmark stability.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.oracle import Oracle
from ..config import GcConfig, SimulationConfig
from ..sim.simulation import Simulation
from ..workloads.generators import build_ring_cycle
from ..workloads.topology import GraphBuilder

N_SITES = 8
CYCLE_SITES = ["s0", "s1"]

PROTOCOL_KINDS: Dict[str, List[str]] = {
    "backtrace": ["BackCall", "BackReply", "BackOutcome"],
    "termination": [
        "TrialMark",
        "TrialRescueStart",
        "TrialRescue",
        "TrialAck",
        "TrialCollect",
        "TrialAbort",
    ],
    "global": ["StartGlobalMark", "MarkBatch", "MarkAck", "SweepCommand"],
    "hughes": ["StampUpdate", "GcTimeRequest", "GcTimeReply", "ThresholdAnnounce"],
    "migration": ["MigrateObject", "PatchRefs"],
    "group": [
        "GroupDiscover",
        "GroupDiscoverReply",
        "GroupMarkStart",
        "GroupMark",
        "GroupAck",
        "GroupSweep",
    ],
    "central": ["SummaryRequest", "SummaryReply", "FlagCommand"],
    "trial": ["RedBatch", "GreenBatch", "PhaseAck", "StartGreen", "CollectCommand"],
}

#: E6 row name -> GcConfig.collector registry name.
COLLECTOR_NAMES: Dict[str, str] = {
    "backtrace": "backtrace",
    "termination": "termination",
    "global": "baseline.global",
    "hughes": "baseline.hughes",
    "migration": "baseline.migration",
    "group": "baseline.group",
    "central": "baseline.central",
    "trial": "baseline.trial",
}


def build_scenario(seed: int = 7, enable_backtracing: bool = True, collector: str = "backtrace"):
    """The shared workload: cycle on s0/s1, live chain over the rest."""
    sites = [f"s{i}" for i in range(N_SITES)]
    gc = GcConfig(enable_backtracing=enable_backtracing, collector=collector)
    sim = Simulation.create(SimulationConfig(seed=seed, gc=gc))
    sim.add_sites(sites, auto_gc=False)
    workload = build_ring_cycle(sim, CYCLE_SITES)
    # Realistic object sizes: control messages stay unit-sized, but a
    # collector that ships whole objects (migration) pays for the payload.
    for member in workload.cycle:
        sim.site(member.site).heap.get(member).payload_size = 20
    builder = GraphBuilder(sim)
    previous = builder.obj("s2", root=True)
    for site_id in ("s3", "s4", "s5", "s6", "s7", "s3", "s5"):
        nxt = builder.obj(site_id)
        builder.link(previous, nxt)
        previous = nxt
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    return sim, workload


def protocol_stats(sim: Simulation, name: str, before):
    """Message count, size units, and involved sites for one protocol.

    ``units`` approximates bytes on the wire: constant-size control messages
    count 1, bulk payloads (object migration, reachability summaries) count
    their actual content -- which is how migration's two "cheap-looking"
    messages reveal their real cost.
    """
    delta = sim.metrics.snapshot().diff(before)
    kinds = PROTOCOL_KINDS[name]
    messages = sum(delta.get(f"messages.{kind}", 0) for kind in kinds)
    units = sum(delta.get(f"units.{kind}", 0) for kind in kinds)
    involved = set()
    for key, value in delta.items():
        parts = key.split(".")
        if len(parts) == 3 and parts[0] == "involve" and parts[1] in kinds and value:
            involved.add(parts[2])
    return messages, units, sorted(involved)


def run_with_collector(name: str, crash_bystander: bool = False) -> Dict:
    """Run one collector on a fresh scenario; return its comparison row."""
    registry_name = COLLECTOR_NAMES.get(name)
    if registry_name is None:
        raise ValueError(f"unknown collector {name!r}")
    per_site = name in ("backtrace", "termination")
    sim, workload = build_scenario(
        enable_backtracing=per_site, collector=registry_name
    )
    oracle = Oracle(sim)
    before = sim.metrics.snapshot()
    if crash_bystander:
        sim.site("s7").crash()

    def garbage_left():
        return {oid for oid in oracle.garbage_set() if oid.site != "s7"}

    rounds: Optional[int] = None
    if per_site:
        for r in range(1, 61):
            sim.run_gc_round()
            oracle.check_safety()
            if not garbage_left():
                rounds = r
                break
    elif name == "global":
        collector = sim.collector_driver
        for r in range(1, 13):
            collector.start_round()
            sim.run_for(3000.0)
            sim.settle()
            oracle.check_safety()
            if not garbage_left():
                rounds = r
                break
    elif name == "hughes":
        collector = sim.collector_driver
        for r in range(1, 13):
            collector.run_round()
            oracle.check_safety()
            if not garbage_left():
                rounds = r
                break
    elif name == "migration":
        collector = sim.collector_driver
        for r in range(1, 41):
            collector.run_round()
            oracle.check_safety()
            if not garbage_left():
                rounds = r
                break
    else:  # group / central / trial: round + message drain
        collector = sim.collector_driver
        for r in range(1, 41):
            collector.run_round()
            sim.run_for(3000.0)
            sim.settle()
            oracle.check_safety()
            if not garbage_left():
                rounds = r
                break

    messages, units, involved = protocol_stats(sim, name, before)
    return {
        "rounds": rounds,
        "messages": messages,
        "units": units,
        "involved": involved,
        "collected": rounds is not None,
    }
