"""Reconstructions of the paper's figures as runnable scenarios.

Each builder returns a :class:`FigureScenario` bundling the simulation, the
labelled object handles, and any scripted mutation steps the figure's
narrative requires.  Integration tests assert the figure's stated outcome;
benchmarks measure the message/step counts on the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import GcConfig, SimulationConfig
from ..ids import ObjectId
from ..sim.simulation import Simulation
from ..workloads.topology import GraphBuilder


@dataclass
class FigureScenario:
    """A built figure: simulation plus labelled objects."""

    sim: Simulation
    builder: GraphBuilder
    notes: Dict[str, str] = field(default_factory=dict)

    def __getitem__(self, label: str) -> ObjectId:
        return self.builder[label]


def _make_sim(seed: int, sites, gc: Optional[GcConfig]) -> Simulation:
    config = SimulationConfig(seed=seed, gc=gc or GcConfig())
    sim = Simulation(config)
    sim.add_sites(list(sites), auto_gc=False)
    return sim


def build_figure1(seed: int = 0, gc: Optional[GcConfig] = None) -> FigureScenario:
    """Figure 1: recording inter-site references.

    Sites P, Q, R.  ``a``@P is the persistent root.  Inrefs: P has {a: root,
    e: Q}; Q has {b: P, f: R}; R has {c: P,Q; g: Q}.  ``d``@Q is unreachable
    garbage pointing at ``e``@P (local tracing collects both through update
    messages).  ``f``@Q and ``g``@R form an inter-site garbage cycle local
    tracing never collects.
    """
    sim = _make_sim(seed, ("P", "Q", "R"), gc)
    b = GraphBuilder(sim)
    b.obj("P", "a", root=True)
    b.obj("P", "e")
    b.obj("Q", "b")
    b.obj("Q", "d")
    b.obj("Q", "f")
    b.obj("R", "c")
    b.obj("R", "g")
    b.link("a", "b")      # P -> Q
    b.link("a", "c")      # P -> R
    b.link("b", "c")      # Q -> R
    b.link("d", "e")      # Q -> P (d is garbage; e dies once d reports)
    b.link("f", "g")      # Q -> R \ the inter-site garbage cycle
    b.link("g", "f")      # R -> Q /
    return FigureScenario(
        sim=sim,
        builder=b,
        notes={"cycle": "f,g", "acyclic_garbage": "d,e"},
    )


def build_figure2(seed: int = 0, gc: Optional[GcConfig] = None) -> FigureScenario:
    """Figure 2: insets of suspected outrefs.

    Sites P, Q, R.  Q holds objects ``a`` and ``b`` (inrefs from P and R);
    ``a`` and ``b`` both reach Q's outref ``c`` (object at P), and ``b``
    reaches outref ``d`` (object at R).  Also c -> a (P -> Q) and d -> b
    (R -> Q), closing two interlocking inter-site cycles, so the whole
    structure is garbage once unrooted -- in the figure it is garbage
    already.
    """
    sim = _make_sim(seed, ("P", "Q", "R"), gc)
    b = GraphBuilder(sim)
    b.obj("Q", "a")
    b.obj("Q", "b")
    b.obj("P", "c")
    b.obj("R", "d")
    b.link("a", "c")
    b.link("b", "c")
    b.link("b", "d")
    b.link("c", "a")
    b.link("d", "b")
    return FigureScenario(sim=sim, builder=b, notes={"inset_of_c": "a,b"})


def build_figure3(seed: int = 0, gc: Optional[GcConfig] = None) -> FigureScenario:
    """Figure 3: a back trace from ``d`` branches.

    Sites P, Q, R plus S carrying the "long path from root".  R holds ``c``
    (inref sources P and Q); a@P <-> b@Q form a cycle that also reaches c;
    a is additionally reachable from the persistent root over a long
    inter-site path, so the structure is *live* and a back trace must return
    Live even though one branch dead-ends on visited marks.

    One liberty vs the figure: ``d`` lives on its own site T (referenced by
    c across sites) so that a back trace can *start* at an outref for d and
    reach inref c, where the figure's two-way fork to P and Q happens.  With
    d local to R (as drawn), no protocol-visible trace starts "from d" at
    all -- the figure abstracts that away.
    """
    sim = _make_sim(seed, ("P", "Q", "R", "S", "T"), gc)
    b = GraphBuilder(sim)
    b.obj("P", "a")
    b.obj("Q", "b")
    b.obj("R", "c")
    b.obj("T", "d")
    b.obj("S", "root", root=True)
    b.obj("S", "hop")
    b.link("a", "b")
    b.link("b", "a")
    b.link("a", "c")
    b.link("b", "c")
    b.link("c", "d")      # R -> T: gives R an outref for d with inset {c}
    b.link("root", "hop")
    b.link("hop", "a")    # S -> P: the long path from the root
    return FigureScenario(sim=sim, builder=b, notes={"live_via": "root->hop->a"})


def build_figure5(seed: int = 0, gc: Optional[GcConfig] = None) -> FigureScenario:
    """Figure 5: reference mutations that the transfer barrier must cover.

    Sites P, Q, R, S.  The clean spine is a@P(root) -> b@Q -> y (local).
    The suspected loop of remote references is c@R -> d@S -> e@R -> f@Q,
    with f -> z -> x -> g@P locally at Q (so Q's outref ``g`` has inset
    {f}).  The object ``z`` is reachable only through the suspected path
    ... -> f -> z until the mutator copies a reference to z into y.

    The figure's mutation: the mutator traverses the old path a, b, c, d, e,
    f (firing the transfer barrier at Q when it crosses e -> f), copies z
    into y (local copy), and then the reference d -> e is deleted.  Without
    the barrier, a back trace from g between those steps would wrongly
    confirm garbage.
    """
    sim = _make_sim(seed, ("P", "Q", "R", "S"), gc)
    b = GraphBuilder(sim)
    b.obj("P", "a", root=True)
    b.obj("P", "g")
    b.obj("Q", "b")
    b.obj("Q", "y")
    b.obj("Q", "f")
    b.obj("Q", "z")
    b.obj("Q", "x")
    b.obj("R", "c")
    b.obj("R", "e")
    b.obj("S", "d")
    # Clean spine.
    b.link("a", "b")      # P -> Q
    b.link("b", "y")
    # Old (suspected) path to z.
    b.link("b", "c")      # Q -> R: entry into the remote loop
    b.link("c", "d")      # R -> S
    b.link("d", "e")      # S -> R (this edge gets deleted)
    b.link("e", "f")      # R -> Q
    b.link("f", "z")
    b.link("z", "x")
    b.link("x", "g")      # Q -> P: the suspected outref g with inset {f}
    return FigureScenario(
        sim=sim,
        builder=b,
        notes={"mutation": "copy z into y; delete d->e", "watch": "g stays safe"},
    )
