"""cProfile wrapper for CLI commands and benchmark drivers.

``profiled(enabled)`` is a context manager: with ``enabled=False`` it is a
no-op (zero overhead on the normal path), with ``enabled=True`` the body
runs under :mod:`cProfile` and the top cumulative-time hotspots are printed
when the block exits -- the quickest way to answer "where does a run spend
its time" for the simulator's hot loops (clean-phase scans, scheduler pops,
message dispatch).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO

TOP_FUNCTIONS = 20


@contextmanager
def profiled(
    enabled: bool = True,
    top: int = TOP_FUNCTIONS,
    stream: Optional[TextIO] = None,
) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block and print the ``top`` cumulative hotspots.

    Yields the active :class:`cProfile.Profile` (or ``None`` when disabled)
    so callers can do their own reporting as well.  The report always goes
    to ``stream`` (default stderr, keeping stdout clean for command output).
    """
    if not enabled:
        yield None
        return
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative")
        stats.print_stats(top)
        out = stream if stream is not None else sys.stderr
        out.write(f"--- cProfile: top {top} by cumulative time ---\n")
        out.write(buffer.getvalue())
        out.flush()
