"""Shared-memory arena for the flat-graph mirror.

The sharded engine forks once and then drives windows over pipes; without
help, any graph-level statistic the coordinator wants (how many objects are
resident on each site, say) costs a round-trip broadcast per query.  This
module carves one :class:`multiprocessing.shared_memory.SharedMemory`
segment into fixed per-site *regions* so the flat mirror's hot buffers live
in memory both sides can see:

``+--------+-------------------+------------------+--------------------+``
``| header | alive bytes [cap] | mark bytes [cap] |  CSR area (int64)  |``
``+--------+-------------------+------------------+--------------------+``

- The **header** (32 bytes) holds the resident-object count, a flags word,
  and the declared capacities.  The owning worker updates the count on
  every allocation/sweep; the coordinator reads headers directly instead
  of broadcasting.
- **alive** / **mark** are the heap's liveness and trace bitmaps
  (:mod:`repro.store.heap` swaps its bytearrays for memoryviews over the
  region on attach).  They work as plain buffers -- no numpy required --
  and double as zero-copy ``uint8`` views for the vectorized kernel.
- The **CSR area** receives the int64 adjacency arrays the heap builds for
  :func:`repro.core.distance.trace_clean_phase_vector`; when numpy is
  absent the area simply goes unused (the pure-Python flat kernel reads
  the adjacency lists directly, and the bitmaps above still live in the
  arena).

The arena optionally carries a second area after the site regions: the
**ring area** of the direct shard-to-shard data path
(``SimulationConfig.direct_rings``).  For W workers it holds W*W
fixed-size byte rings, one per *ordered* worker pair; ring ``(i, j)`` is
written only by worker ``i`` and read only by worker ``j``, which is what
makes every ring single-producer single-consumer.  The rings themselves
are position-free: all cursors (write positions, certified read limits,
confirmed consumption) travel through the coordinator's command/reply
exchange, so no process ever reads a position another process is
concurrently writing -- no locks, no torn cursor reads, and deterministic
overflow behaviour (see :class:`SpscRing`).

Ownership and lifetime rules (also documented in DESIGN.md):

1. The coordinator creates the arena *before* forking, sized from the
   pre-fork heaps; the ``MAP_SHARED`` mapping is inherited by every worker.
   Segments created after the fork would not be shared, so the arena never
   grows -- a heap that outgrows its region *spills*: it copies the bitmaps
   back to private bytearrays, raises a ``RuntimeWarning``, sets the
   overflow flag in its header, and carries on locally.  Correctness never
   depends on fitting.
2. Each region is written by exactly one process: the worker that owns the
   site.  The coordinator only ever reads, and only between windows, when
   every worker is parked in ``recv`` on its command pipe -- so no locks.
3. The coordinator unlinks the segment in ``close()`` (with a finalizer
   backstop); workers drop their inherited mapping when they exit.
"""

from __future__ import annotations

import struct
import warnings
import weakref
from typing import Dict, List, Optional, Sequence

from ..errors import SimulationError
from ..ids import SiteId

try:  # pragma: no cover - exercised via the availability flag
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

_HEADER = struct.Struct("<qqqq")  # alive_count, flags, slot_capacity, csr_bytes
HEADER_BYTES = _HEADER.size

FLAG_SLOTS_OVERFLOW = 0x1  # bitmaps spilled back to private buffers
FLAG_CSR_LOCAL = 0x2  # adjacency arrays did not fit; built privately

#: Per-slot CSR budget: ``2*(n+1) + edges`` int64 words for the local CSR
#: plus the same again for the remote one; ~3 edges/object is generous for
#: the paper's workloads, and overflow just means a private build.
CSR_BYTES_PER_SLOT = 48

DEFAULT_SLOT_CAPACITY = 4096


def _pow2_at_least(value: int) -> int:
    result = 1
    while result < value:
        result <<= 1
    return result


def shared_memory_available() -> bool:
    return _shared_memory is not None


class SiteRegion:
    """One site's slice of the arena: header access plus buffer views."""

    def __init__(self, buf: memoryview, offset: int, slot_capacity: int,
                 csr_bytes: int):
        self._buf = buf
        self._offset = offset
        self.slot_capacity = slot_capacity
        self.csr_bytes = csr_bytes
        base = offset + HEADER_BYTES
        self.alive: memoryview = buf[base : base + slot_capacity]
        self.mark: memoryview = buf[base + slot_capacity : base + 2 * slot_capacity]
        csr_base = base + 2 * slot_capacity
        self.csr: memoryview = buf[csr_base : csr_base + csr_bytes]
        _HEADER.pack_into(buf, offset, 0, 0, slot_capacity, csr_bytes)

    def set_alive_count(self, count: int) -> None:
        struct.pack_into("<q", self._buf, self._offset, count)

    def alive_count(self) -> int:
        return struct.unpack_from("<q", self._buf, self._offset)[0]

    def flags(self) -> int:
        return struct.unpack_from("<q", self._buf, self._offset + 8)[0]

    def set_flag(self, flag: int) -> None:
        struct.pack_into("<q", self._buf, self._offset + 8, self.flags() | flag)

    def release_views(self) -> None:
        for view in (self.alive, self.mark, self.csr):
            view.release()


_RING_FRAME = struct.Struct("<I")
RING_FRAME_BYTES = _RING_FRAME.size


class SpscRing:
    """A single-producer single-consumer byte ring over a fixed buffer.

    Records are framed with a u32 length prefix and written at monotonically
    increasing *logical* positions; the physical offset is ``pos %
    capacity`` with split copies across the wrap point.  The ring holds no
    positions itself: the writer owns its write position, the reader owns
    its read position, and the free-space check uses whatever consumption
    point the caller has been *told* is safe (in the parallel engine, the
    coordinator-certified cursor).  That makes the class pure and
    deterministic -- the same sequence of calls always produces the same
    bytes -- and directly property-testable over a plain ``bytearray``.

    A write that does not fit returns ``None`` instead of blocking or
    overwriting (the caller spills to its fallback path); a read whose
    frame would cross the certified limit raises -- with
    coordinator-certified cursors that can only mean corruption, so it is
    an invariant check, not a retry condition.
    """

    __slots__ = ("buf", "capacity")

    def __init__(self, buf):
        self.buf = buf
        self.capacity = len(buf)
        if self.capacity < RING_FRAME_BYTES + 1:
            raise SimulationError(
                f"ring capacity {self.capacity} cannot frame any record"
            )

    def free_space(self, write_pos: int, consumed: int) -> int:
        """Bytes writable given the last position certified as consumed."""
        return self.capacity - (write_pos - consumed)

    def _copy_in(self, pos: int, data: bytes) -> None:
        offset = pos % self.capacity
        first = min(len(data), self.capacity - offset)
        self.buf[offset : offset + first] = data[:first]
        if first < len(data):
            self.buf[0 : len(data) - first] = data[first:]

    def _copy_out(self, pos: int, length: int) -> bytes:
        offset = pos % self.capacity
        first = min(length, self.capacity - offset)
        chunk = bytes(self.buf[offset : offset + first])
        if first < length:
            chunk += bytes(self.buf[0 : length - first])
        return chunk

    def try_write(
        self, record: bytes, write_pos: int, consumed: int
    ) -> Optional[int]:
        """Frame and write one record; return the new write position.

        ``None`` when the record (frame included) does not fit in the free
        space implied by ``consumed`` -- never a partial write, so the
        reader side can always trust certified byte ranges.
        """
        needed = RING_FRAME_BYTES + len(record)
        if needed > self.capacity - (write_pos - consumed):
            return None
        self._copy_in(write_pos, _RING_FRAME.pack(len(record)))
        self._copy_in(write_pos + RING_FRAME_BYTES, bytes(record))
        return write_pos + needed

    def read(self, start: int, limit: int) -> List[bytes]:
        """Return every framed record in ``[start, limit)``.

        ``limit`` must be a certified write position: a length prefix that
        would run past it (or that could never fit the ring) is a torn or
        corrupt frame and raises :class:`SimulationError`.
        """
        records: List[bytes] = []
        pos = start
        while pos < limit:
            if limit - pos < RING_FRAME_BYTES:
                raise SimulationError(
                    f"torn ring frame: {limit - pos} trailing bytes cannot "
                    "hold a length prefix"
                )
            (length,) = _RING_FRAME.unpack(self._copy_out(pos, RING_FRAME_BYTES))
            if (
                length > self.capacity - RING_FRAME_BYTES
                or pos + RING_FRAME_BYTES + length > limit
            ):
                raise SimulationError(
                    f"torn ring frame at position {pos}: declared size "
                    f"{length} exceeds the certified limit {limit}"
                )
            records.append(self._copy_out(pos + RING_FRAME_BYTES, length))
            pos += RING_FRAME_BYTES + length
        return records


class SharedArena:
    """A pre-fork shared segment holding one region per site."""

    def __init__(
        self,
        site_ids: Sequence[SiteId],
        slot_capacity: int = DEFAULT_SLOT_CAPACITY,
        csr_bytes: Optional[int] = None,
        name_hint: str = "repro-arena",
        ring_workers: int = 0,
        ring_bytes: int = 0,
    ):
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self._sites: List[SiteId] = sorted(site_ids)
        # Keep the int64 CSR area 8-aligned: header is 32 bytes and the two
        # bitmap blocks stay a multiple of 8 as long as the capacity is.
        self.slot_capacity = max(8, _pow2_at_least(slot_capacity))
        self.csr_bytes = (
            CSR_BYTES_PER_SLOT * self.slot_capacity
            if csr_bytes is None
            else max(0, (csr_bytes // 8) * 8)
        )
        self.ring_workers = ring_workers if ring_bytes > 0 else 0
        self.ring_bytes = ring_bytes if self.ring_workers > 0 else 0
        self._stride = HEADER_BYTES + 2 * self.slot_capacity + self.csr_bytes
        ring_area = self.ring_workers * self.ring_workers * self.ring_bytes
        total = max(1, self._stride * len(self._sites) + ring_area)
        self._shm = _shared_memory.SharedMemory(create=True, size=total)
        self._regions: Dict[SiteId, SiteRegion] = {}
        buf = self._shm.buf
        for index, site_id in enumerate(self._sites):
            self._regions[site_id] = SiteRegion(
                buf, index * self._stride, self.slot_capacity, self.csr_bytes
            )
        # Ring area: W*W fixed slices after the site regions; ring (i, j)
        # carries worker i's records for worker j (i==j slots exist for
        # index arithmetic but are never written).
        self._rings: List[Optional[SpscRing]] = []
        ring_base = self._stride * len(self._sites)
        for index in range(self.ring_workers * self.ring_workers):
            offset = ring_base + index * self.ring_bytes
            self._rings.append(SpscRing(buf[offset : offset + self.ring_bytes]))
        self._closed = False
        # Unlink even if close() is never reached (interpreter teardown,
        # coordinator crash paths); harmless double-unlink is swallowed.
        self._finalizer = weakref.finalize(
            self, SharedArena._cleanup, self._shm
        )

    @classmethod
    def for_heaps(
        cls,
        heap_sizes: Dict[SiteId, int],
        slot_capacity: Optional[int] = None,
        csr_bytes: Optional[int] = None,
        ring_workers: int = 0,
        ring_bytes: int = 0,
    ) -> "SharedArena":
        """Size an arena from the pre-fork heaps: 8x headroom, power of two."""
        if slot_capacity is None:
            largest = max(heap_sizes.values(), default=0)
            slot_capacity = max(DEFAULT_SLOT_CAPACITY, _pow2_at_least(8 * largest))
        return cls(list(heap_sizes), slot_capacity=slot_capacity,
                   csr_bytes=csr_bytes, ring_workers=ring_workers,
                   ring_bytes=ring_bytes)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def region(self, site_id: SiteId) -> SiteRegion:
        return self._regions[site_id]

    @property
    def has_site_regions(self) -> bool:
        """False for a rings-only arena (``shared_arena=False`` + rings)."""
        return bool(self._regions)

    def ring(self, src_worker: int, dst_worker: int) -> SpscRing:
        """The ring worker ``src_worker`` writes for worker ``dst_worker``."""
        if not (0 <= src_worker < self.ring_workers
                and 0 <= dst_worker < self.ring_workers):
            raise SimulationError(
                f"no ring for worker pair ({src_worker}, {dst_worker}) in an "
                f"arena sized for {self.ring_workers} workers"
            )
        return self._rings[src_worker * self.ring_workers + dst_worker]

    def total_alive(self) -> Optional[int]:
        """Sum of per-site resident counts, or None if any heap spilled.

        Also None for a rings-only arena: without site regions there are no
        published counts to read, and 0 would be a lie.
        """
        if not self._regions:
            return None
        total = 0
        for region in self._regions.values():
            if region.flags() & FLAG_SLOTS_OVERFLOW:
                return None
            total += region.alive_count()
        return total

    def alive_counts(self) -> Optional[Dict[SiteId, int]]:
        if not self._regions:
            return None
        counts: Dict[SiteId, int] = {}
        for site_id, region in self._regions.items():
            if region.flags() & FLAG_SLOTS_OVERFLOW:
                return None
            counts[site_id] = region.alive_count()
        return counts

    @staticmethod
    def _cleanup(shm) -> None:
        try:
            shm.close()
        except (BufferError, OSError, ValueError):
            # Views may still be exported (a heap holding its bitmap slices);
            # the mapping dies with the process either way.  Still unlink.
            pass
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass

    def detach(self) -> None:
        """Worker-side: drop the inherited mapping without unlinking."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        for region in self._regions.values():
            region.release_views()
        self._regions.clear()
        self._release_rings()
        try:
            self._shm.close()
        except (BufferError, OSError, ValueError):  # pragma: no cover
            pass

    def _release_rings(self) -> None:
        for ring in self._rings:
            if ring is not None:
                ring.buf.release()
        self._rings = []

    def close(self) -> None:
        """Coordinator-side: drop the mapping and unlink the segment."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        for region in self._regions.values():
            region.release_views()
        self._regions.clear()
        self._release_rings()
        self._cleanup(self._shm)


def create_arena(
    heap_sizes: Dict[SiteId, int],
    slot_capacity: Optional[int] = None,
    csr_bytes: Optional[int] = None,
    ring_workers: int = 0,
    ring_bytes: int = 0,
) -> Optional[SharedArena]:
    """Best-effort arena creation: warn and return None where unsupported."""
    if _shared_memory is None:
        warnings.warn(
            "multiprocessing.shared_memory unavailable; parallel engine "
            "runs without a shared arena",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    try:
        return SharedArena.for_heaps(
            heap_sizes, slot_capacity=slot_capacity, csr_bytes=csr_bytes,
            ring_workers=ring_workers, ring_bytes=ring_bytes,
        )
    except (OSError, ValueError, RuntimeError) as exc:
        warnings.warn(
            f"could not create shared-memory arena ({exc}); parallel engine "
            "runs without one",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
