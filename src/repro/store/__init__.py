"""Per-site object store: heaps, objects, and references.

Objects live on exactly one site and hold references (object ids) that may
point to local or remote objects.  The heap knows nothing about garbage
collection; the collector layers (:mod:`repro.gc`, :mod:`repro.core`) observe
and sweep it.
"""

from .objects import HeapObject
from .heap import Heap

__all__ = ["HeapObject", "Heap"]
