"""Per-site heap.

The heap owns object allocation, persistent roots, and *application roots*
(references the mutator holds in variables outside the object store --
section 6.3 of the paper).  The local collector treats both root kinds as
trace roots; application roots additionally keep the transfer-barrier story
safe when a mutator stashes a reference and reuses it later.

Flat-graph mirror
-----------------
Alongside the ``oid -> HeapObject`` map the heap maintains a dense
integer-indexed mirror of the local object graph for the flat trace kernel
(:func:`repro.core.distance.trace_clean_phase_flat`):

- local object ids are *interned* to dense indices (``_idx`` / ``_oids``);
- per-index adjacency is split into ``_succ_local`` (int indices of local
  successors, duplicates preserved) and ``_succ_remote`` (remote ObjectIds);
- ``_alive`` is a bytearray liveness bitmap and ``_mark`` a same-sized
  reusable trace bitmap (zeroed by the kernel after each trace);
- a dangling local reference (its target already swept -- ids are never
  reused, so it can never resurrect) keeps the target's index interned but
  dead; an index returns to the free-list only once it is dead *and* no
  adjacency slot points at it (``_slot_refs``), so indices never alias.

The mirror is maintained on every allocation, reference add/remove, and
sweep; traces read it without building any per-trace set keyed by ObjectId.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Set, Tuple

from ..errors import NotLocalError, UnknownObjectError
from ..ids import ObjectId, SiteId
from .objects import HeapObject
from .shm import FLAG_CSR_LOCAL, FLAG_SLOTS_OVERFLOW

try:  # numpy is an optional extra (pip install .[fast])
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None


class FlatCsr(NamedTuple):
    """Dense CSR snapshot of the mirror for the vectorized kernel.

    ``indptr``/``indices`` give each slot's local successor indices
    (duplicates preserved, dead slots have empty rows);
    ``r_indptr``/``r_indices`` do the same for remote references against
    the interned ``r_oids`` table.  Valid while the heap's graph epoch is
    unchanged; :meth:`Heap.csr_graph` rebuilds lazily.
    """

    indptr: "np.ndarray"
    indices: "np.ndarray"
    r_indptr: "np.ndarray"
    r_indices: "np.ndarray"
    r_oids: List[ObjectId]


class Heap:
    """All objects owned by one site."""

    def __init__(self, site_id: SiteId):
        self.site_id = site_id
        self._objects: Dict[ObjectId, HeapObject] = {}
        # Maintained mirror of ``_objects``' key set: ``object_id_set`` hands
        # out C-level copies of it so per-trace snapshots never re-hash every
        # ObjectId on the heap.
        self._oid_set: Set[ObjectId] = set()
        self._persistent_roots: Set[ObjectId] = set()
        self._variable_roots: Dict[ObjectId, int] = {}
        self._next_serial = 0
        self.objects_allocated = 0
        self.objects_collected = 0
        self._mutation_epoch = 0
        # -- flat-graph mirror (see module docstring) -----------------------
        self._idx: Dict[ObjectId, int] = {}
        self._oids: List[Optional[ObjectId]] = []
        self._alive = bytearray()
        self._mark = bytearray()
        self._succ_local: List[List[int]] = []
        self._succ_remote: List[List[ObjectId]] = []
        self._slot_refs: List[int] = []
        self._free: List[int] = []
        # Shared-memory backing (parallel engine): when attached, ``_alive``
        # and ``_mark`` are memoryviews over a SiteRegion instead of private
        # bytearrays, and the region header mirrors the resident count.
        self._region = None
        # Structural epoch for the CSR snapshot: bumped only on changes to
        # slots or adjacency (not roots/pins, which churn far more often).
        self._graph_epoch = 0
        self._csr: Optional[FlatCsr] = None
        self._csr_epoch = -1
        # Set by the vector clean-phase kernel when this heap's graph turned
        # out too deep-and-narrow for level-synchronous BFS: counts down the
        # traces to route straight to the flat scalar kernel before probing
        # the vector path again (see repro.core.distance).
        self.vector_kernel_backoff = 0

    # -- mutation epoch ---------------------------------------------------------
    #
    # A monotonically increasing counter bumped on every change that can
    # alter the outcome of a local trace: allocation, sweeping, reference
    # add/remove (including via directly-held HeapObjects), and any change
    # to the root sets.  The incremental local trace compares epochs to
    # decide whether a cached trace result is still valid.

    @property
    def mutation_epoch(self) -> int:
        return self._mutation_epoch

    def bump_epoch(self) -> None:
        self._mutation_epoch += 1

    # -- flat-graph mirror maintenance -----------------------------------------

    def _intern(self, oid: ObjectId) -> int:
        idx = self._idx.get(oid)
        if idx is not None:
            return idx
        self._graph_epoch += 1
        if self._free:
            idx = self._free.pop()
            self._oids[idx] = oid
        else:
            region = self._region
            if region is not None and len(self._oids) >= region.slot_capacity:
                self._spill_shared_region()
            idx = len(self._oids)
            self._oids.append(oid)
            if self._region is None:
                self._alive.append(0)
                self._mark.append(0)
            # else: the region's slots are pre-zeroed at creation
            self._succ_local.append([])
            self._succ_remote.append([])
            self._slot_refs.append(0)
        self._idx[oid] = idx
        return idx

    def _maybe_release(self, idx: int) -> None:
        """Return a dead, unreferenced index to the free-list."""
        if self._alive[idx] or self._slot_refs[idx]:
            return
        oid = self._oids[idx]
        if oid is None:
            return  # already free
        del self._idx[oid]
        self._oids[idx] = None
        self._free.append(idx)

    def _edge_added(self, holder_idx: int, target: ObjectId) -> None:
        self._graph_epoch += 1
        if target.site == self.site_id:
            tidx = self._intern(target)
            self._succ_local[holder_idx].append(tidx)
            self._slot_refs[tidx] += 1
        else:
            self._succ_remote[holder_idx].append(target)

    def _edge_removed(self, holder_idx: int, target: ObjectId) -> None:
        self._graph_epoch += 1
        if target.site == self.site_id:
            # Duplicate occurrences are interchangeable; drop the first.
            tidx = self._idx[target]
            self._succ_local[holder_idx].remove(tidx)
            self._slot_refs[tidx] -= 1
            self._maybe_release(tidx)
        else:
            self._succ_remote[holder_idx].remove(target)

    def _note_ref_added(self, obj: HeapObject, target: ObjectId) -> None:
        """Called by :meth:`HeapObject.add_ref` (the object knows its heap)."""
        if obj.index >= 0:
            self._edge_added(obj.index, target)
        self.bump_epoch()

    def _note_ref_removed(self, obj: HeapObject, target: ObjectId) -> None:
        if obj.index >= 0:
            self._edge_removed(obj.index, target)
        self.bump_epoch()

    def _retire(self, obj: HeapObject) -> None:
        """Drop a dying object from the mirror (keep its index while held)."""
        self._graph_epoch += 1
        idx = obj.index
        obj.index = -1
        self._alive[idx] = 0
        local = self._succ_local[idx]
        self._succ_remote[idx].clear()
        for tidx in local:
            self._slot_refs[tidx] -= 1
            if tidx != idx:
                self._maybe_release(tidx)
        local.clear()
        self._maybe_release(idx)

    def flat_graph(
        self,
    ) -> Tuple[
        Dict[ObjectId, int],
        bytearray,
        List[List[int]],
        List[List[ObjectId]],
        bytearray,
        List[Optional[ObjectId]],
    ]:
        """The mirror's internals for the flat trace kernel (no copies).

        Returns ``(idx, alive, succ_local, succ_remote, mark, oids)``.  The
        caller must leave ``mark`` all-zero when done (the kernel zeroes
        exactly the indices it marked).
        """
        return (
            self._idx,
            self._alive,
            self._succ_local,
            self._succ_remote,
            self._mark,
            self._oids,
        )

    # -- shared-memory backing (parallel engine) --------------------------------

    def attach_shared_region(self, region) -> bool:
        """Re-home the alive/mark bitmaps into a shared-memory region.

        Called by a shard worker just after the fork (see
        :mod:`repro.store.shm` for the ownership rules).  The current bitmap
        contents are copied into the region -- which this heap now owns
        exclusively -- and the header's resident count is published.
        Returns False (leaving the heap untouched) if the heap already
        exceeds the region's slot capacity.
        """
        n = len(self._oids)
        if n > region.slot_capacity:
            region.set_flag(FLAG_SLOTS_OVERFLOW)
            return False
        if n:
            region.alive[:n] = bytes(self._alive[:n])
            region.mark[:n] = bytes(self._mark[:n])
        self._alive = region.alive
        self._mark = region.mark
        self._region = region
        region.set_alive_count(len(self._objects))
        self._csr = None  # rebuild into the region's CSR area
        self._csr_epoch = -1
        return True

    def detach_shared_region(self) -> None:
        """Copy the bitmaps back to private buffers and drop every view.

        Workers call this on shutdown (before the arena itself detaches) so
        no memoryview exports outlive the shared segment.
        """
        region = self._region
        if region is None:
            return
        n = len(self._oids)
        self._alive = bytearray(region.alive[:n])
        self._mark = bytearray(region.mark[:n])
        self._region = None
        self._csr = None  # its arrays may view the region's CSR area
        self._csr_epoch = -1

    def _spill_shared_region(self) -> None:
        """Outgrew the region: fall back to private buffers, flag, and warn."""
        region = self._region
        n = len(self._oids)
        self._alive = bytearray(region.alive[:n])
        self._mark = bytearray(region.mark[:n])
        self._region = None
        self._csr = None
        self._csr_epoch = -1
        region.set_flag(FLAG_SLOTS_OVERFLOW)
        warnings.warn(
            f"heap {self.site_id!r} outgrew its shared-memory region "
            f"({n} slots >= capacity {region.slot_capacity}); continuing "
            "with private buffers",
            RuntimeWarning,
            stacklevel=3,
        )

    def _publish_alive_count(self) -> None:
        if self._region is not None:
            self._region.set_alive_count(len(self._objects))

    @property
    def shared_region_attached(self) -> bool:
        return self._region is not None

    @property
    def mirror_slots(self) -> int:
        """Slots the flat mirror occupies (resident + dead interned oids).

        This -- not ``len(heap)`` -- is what a shared region must be sized
        against, since interned slots are never compacted.
        """
        return len(self._oids)

    @property
    def graph_epoch(self) -> int:
        return self._graph_epoch

    def csr_graph(self) -> Optional[FlatCsr]:
        """The mirror as int64 CSR arrays (numpy only; None without it).

        Rebuilt lazily when the graph epoch moved; when a shared region is
        attached and the arrays fit its CSR area they are built there
        (zero-copy views), otherwise in private numpy memory.
        """
        if np is None:
            return None
        if self._csr is not None and self._csr_epoch == self._graph_epoch:
            return self._csr
        n = len(self._oids)
        local_lens = [len(s) for s in self._succ_local]
        remote_lens = [len(s) for s in self._succ_remote]
        edges = sum(local_lens)
        remote_edges = sum(remote_lens)
        words = 2 * (n + 1) + edges + remote_edges
        region = self._region
        if region is not None and words * 8 <= region.csr_bytes:
            buf = np.frombuffer(region.csr, dtype=np.int64, count=words)
        else:
            buf = np.empty(words, dtype=np.int64)
            if region is not None:
                region.set_flag(FLAG_CSR_LOCAL)
        indptr = buf[: n + 1]
        indices = buf[n + 1 : n + 1 + edges]
        r_indptr = buf[n + 1 + edges : 2 * (n + 1) + edges]
        r_indices = buf[2 * (n + 1) + edges :]
        indptr[0] = 0
        if n:
            np.cumsum(local_lens, out=indptr[1:])
        if edges:
            indices[:] = np.fromiter(
                (t for row in self._succ_local for t in row),
                dtype=np.int64,
                count=edges,
            )
        r_indptr[0] = 0
        if n:
            np.cumsum(remote_lens, out=r_indptr[1:])
        # Remote ObjectIds interned in first-seen slot order: deterministic
        # given the mirror, and only ever consumed order-insensitively.
        r_oids: List[ObjectId] = []
        r_map: Dict[ObjectId, int] = {}
        if remote_edges:
            fill = r_indices
            pos = 0
            for row in self._succ_remote:
                for target in row:
                    rid = r_map.get(target)
                    if rid is None:
                        rid = len(r_oids)
                        r_map[target] = rid
                        r_oids.append(target)
                    fill[pos] = rid
                    pos += 1
        self._csr = FlatCsr(indptr, indices, r_indptr, r_indices, r_oids)
        self._csr_epoch = self._graph_epoch
        return self._csr

    def check_flat_mirror(self) -> None:
        """Assert mirror == object map (test/debug support; O(V+E))."""
        assert self._oid_set == set(self._objects), "oid set drift"
        for oid, obj in self._objects.items():
            idx = self._idx.get(oid)
            assert idx is not None and self._alive[idx], f"missing mirror: {oid}"
            assert obj.index == idx, f"index drift: {oid}"
            want_local = sorted(
                self._oids[t] for t in self._succ_local[idx]
            )
            have_local = sorted(r for r in obj.ref_view if r.site == self.site_id)
            assert want_local == have_local, f"local adjacency drift: {oid}"
            want_remote = sorted(self._succ_remote[idx])
            have_remote = sorted(r for r in obj.ref_view if r.site != self.site_id)
            assert want_remote == have_remote, f"remote adjacency drift: {oid}"
        alive_count = sum(1 for b in self._alive if b)
        assert alive_count == len(self._objects), "alive bitmap drift"
        assert not any(self._mark), "mark bitmap not zeroed after trace"
        for idx, oid in enumerate(self._oids):
            if oid is None:
                assert not self._alive[idx] and not self._slot_refs[idx]
            else:
                assert self._idx[oid] == idx
                assert self._alive[idx] or self._slot_refs[idx] > 0, (
                    f"dead unreferenced index kept: {oid}"
                )

    # -- allocation -----------------------------------------------------------

    def alloc(
        self,
        refs: Optional[Iterable[ObjectId]] = None,
        persistent_root: bool = False,
        payload_size: int = 1,
    ) -> HeapObject:
        """Create a new object on this site."""
        oid = ObjectId(site=self.site_id, serial=self._next_serial)
        self._next_serial += 1
        obj = HeapObject(oid, refs=refs, payload_size=payload_size)
        obj._owner = self
        idx = self._intern(oid)
        obj.index = idx
        self._alive[idx] = 1
        for ref in obj.ref_view:
            self._edge_added(idx, ref)
        self._objects[oid] = obj
        self._oid_set.add(oid)
        self.objects_allocated += 1
        if persistent_root:
            self._persistent_roots.add(oid)
        self._publish_alive_count()
        self.bump_epoch()
        return obj

    def adopt(self, obj: HeapObject) -> HeapObject:
        """Install an object migrated from another site under a fresh id.

        Used by the migration baseline.  Returns the new resident object; the
        caller is responsible for reference patching.
        """
        clone = self.alloc(refs=obj.refs, payload_size=obj.payload_size)
        return clone

    # -- lookup ---------------------------------------------------------------

    def get(self, oid: ObjectId) -> HeapObject:
        if oid.site != self.site_id:
            raise NotLocalError(f"{oid} is not local to site {self.site_id}")
        obj = self._objects.get(oid)
        if obj is None:
            raise UnknownObjectError(f"{oid} not present on site {self.site_id}")
        return obj

    def maybe_get(self, oid: ObjectId) -> Optional[HeapObject]:
        return self._objects.get(oid)

    def contains(self, oid: ObjectId) -> bool:
        return oid in self._objects

    def objects_map(self) -> Dict[ObjectId, HeapObject]:
        """The internal oid->object mapping, no copy -- read-only by convention.

        The legacy clean phase's hot loop uses it for membership tests and
        successor fetches without a method call per edge; everything else
        should go through :meth:`get` / :meth:`contains`.
        """
        return self._objects

    def objects(self) -> Iterator[HeapObject]:
        return iter(self._objects.values())

    def object_ids(self) -> List[ObjectId]:
        return list(self._objects)

    def object_id_set(self) -> Set[ObjectId]:
        """A fresh set of every resident oid, copied without re-hashing."""
        return self._oid_set.copy()

    def __len__(self) -> int:
        return len(self._objects)

    # -- roots ----------------------------------------------------------------

    @property
    def persistent_roots(self) -> Set[ObjectId]:
        return set(self._persistent_roots)

    def make_persistent_root(self, oid: ObjectId) -> None:
        self.get(oid)  # validate
        if oid not in self._persistent_roots:
            self._persistent_roots.add(oid)
            self.bump_epoch()

    def drop_persistent_root(self, oid: ObjectId) -> None:
        if oid in self._persistent_roots:
            self._persistent_roots.discard(oid)
            self.bump_epoch()

    @property
    def variable_roots(self) -> Set[ObjectId]:
        """Local objects currently pinned by mutator variables."""
        return set(self._variable_roots)

    def pin_variable(self, oid: ObjectId) -> None:
        """Record that a mutator variable holds a reference to ``oid``.

        Only local targets are pinned here; a variable holding a *remote*
        reference is represented by pinning the local outref instead (handled
        by the site layer).  Pins are counted so nested holds unpin correctly.
        """
        count = self._variable_roots.get(oid, 0)
        self._variable_roots[oid] = count + 1
        if count == 0:  # the root set (not just a pin count) changed
            self.bump_epoch()

    def unpin_variable(self, oid: ObjectId) -> None:
        count = self._variable_roots.get(oid, 0)
        if count <= 1:
            if self._variable_roots.pop(oid, None) is not None:
                self.bump_epoch()
        else:
            self._variable_roots[oid] = count - 1

    # -- mutation helpers -------------------------------------------------------

    def add_ref(self, holder: ObjectId, target: ObjectId) -> None:
        self.get(holder).add_ref(target)

    def remove_ref(self, holder: ObjectId, target: ObjectId) -> None:
        self.get(holder).remove_ref(target)

    # -- reachability (local, used by collectors) --------------------------------

    def objects_holding(self, ref: ObjectId) -> List[HeapObject]:
        """All local objects with at least one reference slot equal to ``ref``."""
        return [obj for obj in self._objects.values() if obj.holds_ref(ref)]

    def locally_reachable_from(self, roots: Iterable[ObjectId]) -> Set[ObjectId]:
        """All local objects reachable from ``roots`` via local references.

        Remote references are not followed (they terminate local paths), and
        root ids that are remote or absent are ignored -- convenient for
        callers passing raw inref keys.
        """
        seen: Set[ObjectId] = set()
        stack = [oid for oid in roots if oid.site == self.site_id and oid in self._objects]
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            for ref in self._objects[oid].iter_refs():
                if ref.site == self.site_id and ref in self._objects and ref not in seen:
                    stack.append(ref)
        return seen

    # -- sweeping -----------------------------------------------------------------

    def sweep(self, live: Set[ObjectId]) -> List[ObjectId]:
        """Delete every object not in ``live``; return the deleted ids."""
        return self.sweep_ids([oid for oid in self._objects if oid not in live])

    def sweep_ids(self, dead: Iterable[ObjectId]) -> List[ObjectId]:
        """Delete exactly the listed objects (ids not present are skipped)."""
        deleted: List[ObjectId] = []
        for oid in dead:
            obj = self._objects.pop(oid, None)
            if obj is None:
                continue
            self._oid_set.discard(oid)
            self._retire(obj)
            self._persistent_roots.discard(oid)
            self._variable_roots.pop(oid, None)
            deleted.append(oid)
        self.objects_collected += len(deleted)
        if deleted:
            self._publish_alive_count()
            self.bump_epoch()
        return deleted

    def delete(self, oid: ObjectId) -> None:
        """Remove a single object (migration baseline support)."""
        obj = self._objects.pop(oid, None)
        if obj is not None:
            self._oid_set.discard(oid)
            self._retire(obj)
            self._publish_alive_count()
            self.bump_epoch()
        self._persistent_roots.discard(oid)
        self._variable_roots.pop(oid, None)
