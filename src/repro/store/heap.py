"""Per-site heap.

The heap owns object allocation, persistent roots, and *application roots*
(references the mutator holds in variables outside the object store --
section 6.3 of the paper).  The local collector treats both root kinds as
trace roots; application roots additionally keep the transfer-barrier story
safe when a mutator stashes a reference and reuses it later.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from ..errors import NotLocalError, UnknownObjectError
from ..ids import ObjectId, SiteId
from .objects import HeapObject


class Heap:
    """All objects owned by one site."""

    def __init__(self, site_id: SiteId):
        self.site_id = site_id
        self._objects: Dict[ObjectId, HeapObject] = {}
        self._persistent_roots: Set[ObjectId] = set()
        self._variable_roots: Dict[ObjectId, int] = {}
        self._next_serial = 0
        self.objects_allocated = 0
        self.objects_collected = 0
        self._mutation_epoch = 0

    # -- mutation epoch ---------------------------------------------------------
    #
    # A monotonically increasing counter bumped on every change that can
    # alter the outcome of a local trace: allocation, sweeping, reference
    # add/remove (including via directly-held HeapObjects), and any change
    # to the root sets.  The incremental local trace compares epochs to
    # decide whether a cached trace result is still valid.

    @property
    def mutation_epoch(self) -> int:
        return self._mutation_epoch

    def bump_epoch(self) -> None:
        self._mutation_epoch += 1

    # -- allocation -----------------------------------------------------------

    def alloc(
        self,
        refs: Optional[Iterable[ObjectId]] = None,
        persistent_root: bool = False,
        payload_size: int = 1,
    ) -> HeapObject:
        """Create a new object on this site."""
        oid = ObjectId(site=self.site_id, serial=self._next_serial)
        self._next_serial += 1
        obj = HeapObject(oid, refs=refs, payload_size=payload_size)
        obj.on_mutate = self.bump_epoch
        self._objects[oid] = obj
        self.objects_allocated += 1
        if persistent_root:
            self._persistent_roots.add(oid)
        self.bump_epoch()
        return obj

    def adopt(self, obj: HeapObject) -> HeapObject:
        """Install an object migrated from another site under a fresh id.

        Used by the migration baseline.  Returns the new resident object; the
        caller is responsible for reference patching.
        """
        clone = self.alloc(refs=obj.refs, payload_size=obj.payload_size)
        return clone

    # -- lookup ---------------------------------------------------------------

    def get(self, oid: ObjectId) -> HeapObject:
        if oid.site != self.site_id:
            raise NotLocalError(f"{oid} is not local to site {self.site_id}")
        obj = self._objects.get(oid)
        if obj is None:
            raise UnknownObjectError(f"{oid} not present on site {self.site_id}")
        return obj

    def maybe_get(self, oid: ObjectId) -> Optional[HeapObject]:
        return self._objects.get(oid)

    def contains(self, oid: ObjectId) -> bool:
        return oid in self._objects

    def objects_map(self) -> Dict[ObjectId, HeapObject]:
        """The internal oid->object mapping, no copy -- read-only by convention.

        The clean phase's hot loop uses it for membership tests and successor
        fetches without a method call per edge; everything else should go
        through :meth:`get` / :meth:`contains`.
        """
        return self._objects

    def objects(self) -> Iterator[HeapObject]:
        return iter(self._objects.values())

    def object_ids(self) -> List[ObjectId]:
        return list(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    # -- roots ----------------------------------------------------------------

    @property
    def persistent_roots(self) -> Set[ObjectId]:
        return set(self._persistent_roots)

    def make_persistent_root(self, oid: ObjectId) -> None:
        self.get(oid)  # validate
        if oid not in self._persistent_roots:
            self._persistent_roots.add(oid)
            self.bump_epoch()

    def drop_persistent_root(self, oid: ObjectId) -> None:
        if oid in self._persistent_roots:
            self._persistent_roots.discard(oid)
            self.bump_epoch()

    @property
    def variable_roots(self) -> Set[ObjectId]:
        """Local objects currently pinned by mutator variables."""
        return set(self._variable_roots)

    def pin_variable(self, oid: ObjectId) -> None:
        """Record that a mutator variable holds a reference to ``oid``.

        Only local targets are pinned here; a variable holding a *remote*
        reference is represented by pinning the local outref instead (handled
        by the site layer).  Pins are counted so nested holds unpin correctly.
        """
        count = self._variable_roots.get(oid, 0)
        self._variable_roots[oid] = count + 1
        if count == 0:  # the root set (not just a pin count) changed
            self.bump_epoch()

    def unpin_variable(self, oid: ObjectId) -> None:
        count = self._variable_roots.get(oid, 0)
        if count <= 1:
            if self._variable_roots.pop(oid, None) is not None:
                self.bump_epoch()
        else:
            self._variable_roots[oid] = count - 1

    # -- mutation helpers -------------------------------------------------------

    def add_ref(self, holder: ObjectId, target: ObjectId) -> None:
        self.get(holder).add_ref(target)

    def remove_ref(self, holder: ObjectId, target: ObjectId) -> None:
        self.get(holder).remove_ref(target)

    # -- reachability (local, used by collectors) --------------------------------

    def objects_holding(self, ref: ObjectId) -> List[HeapObject]:
        """All local objects with at least one reference slot equal to ``ref``."""
        return [obj for obj in self._objects.values() if obj.holds_ref(ref)]

    def locally_reachable_from(self, roots: Iterable[ObjectId]) -> Set[ObjectId]:
        """All local objects reachable from ``roots`` via local references.

        Remote references are not followed (they terminate local paths), and
        root ids that are remote or absent are ignored -- convenient for
        callers passing raw inref keys.
        """
        seen: Set[ObjectId] = set()
        stack = [oid for oid in roots if oid.site == self.site_id and oid in self._objects]
        while stack:
            oid = stack.pop()
            if oid in seen:
                continue
            seen.add(oid)
            for ref in self._objects[oid].iter_refs():
                if ref.site == self.site_id and ref in self._objects and ref not in seen:
                    stack.append(ref)
        return seen

    # -- sweeping -----------------------------------------------------------------

    def sweep(self, live: Set[ObjectId]) -> List[ObjectId]:
        """Delete every object not in ``live``; return the deleted ids."""
        return self.sweep_ids([oid for oid in self._objects if oid not in live])

    def sweep_ids(self, dead: Iterable[ObjectId]) -> List[ObjectId]:
        """Delete exactly the listed objects (ids not present are skipped)."""
        deleted: List[ObjectId] = []
        for oid in dead:
            if oid not in self._objects:
                continue
            del self._objects[oid]
            self._persistent_roots.discard(oid)
            self._variable_roots.pop(oid, None)
            deleted.append(oid)
        self.objects_collected += len(deleted)
        if deleted:
            self.bump_epoch()
        return deleted

    def delete(self, oid: ObjectId) -> None:
        """Remove a single object (migration baseline support)."""
        if self._objects.pop(oid, None) is not None:
            self.bump_epoch()
        self._persistent_roots.discard(oid)
        self._variable_roots.pop(oid, None)
