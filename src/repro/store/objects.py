"""Heap objects.

An object is a mutable container of references.  References are
:class:`~repro.ids.ObjectId` values; a reference whose ``site`` differs from
the holder's site is an inter-site (remote) reference.  Duplicate references
are allowed, as in real object fields/arrays, so removal must delete one
occurrence at a time.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..errors import HeapError
from ..ids import ObjectId


class HeapObject:
    """One object in a site's heap."""

    __slots__ = ("oid", "_refs", "payload_size", "_owner", "index")

    def __init__(
        self,
        oid: ObjectId,
        refs: Optional[Iterable[ObjectId]] = None,
        payload_size: int = 1,
    ):
        self.oid = oid
        self._refs: List[ObjectId] = list(refs or [])
        self.payload_size = payload_size
        # Set by the owning heap at allocation time: reference mutations must
        # notify the heap even when callers hold the object directly -- the
        # incremental local trace relies on the mutation epoch, and the
        # flat-graph mirror relies on learning which edge changed.  ``index``
        # is the object's dense slot in that mirror (-1 = not adopted).
        self._owner = None
        self.index: int = -1

    @property
    def refs(self) -> List[ObjectId]:
        """A copy of the reference slots (mutate via add_ref/remove_ref)."""
        return list(self._refs)

    @property
    def ref_view(self) -> List[ObjectId]:
        """The live reference list itself, no copy -- read-only by convention.

        Exists for hot loops (the clean phase scans every edge of every
        object per trace); mutate only through add_ref/remove_ref so the
        mutation epoch and the flat-graph mirror stay accurate.
        """
        return self._refs

    def iter_refs(self) -> Iterator[ObjectId]:
        return iter(self._refs)

    def add_ref(self, target: ObjectId) -> None:
        self._refs.append(target)
        if self._owner is not None:
            self._owner._note_ref_added(self, target)

    def remove_ref(self, target: ObjectId) -> None:
        """Remove one occurrence of ``target``; error if absent."""
        try:
            self._refs.remove(target)
        except ValueError:
            raise HeapError(f"{self.oid} holds no reference to {target}") from None
        if self._owner is not None:
            self._owner._note_ref_removed(self, target)

    def holds_ref(self, target: ObjectId) -> bool:
        return target in self._refs

    def remote_refs(self) -> List[ObjectId]:
        """References to objects on other sites."""
        return [ref for ref in self._refs if ref.site != self.oid.site]

    def local_refs(self) -> List[ObjectId]:
        """References to objects on this object's own site."""
        return [ref for ref in self._refs if ref.site == self.oid.site]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        targets = ",".join(str(ref) for ref in self._refs)
        return f"<obj {self.oid} -> [{targets}]>"
