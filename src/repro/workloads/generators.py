"""Parametric workload generators.

Each generator returns a small result object naming the interesting pieces
(the root, the cycle members, the edge whose deletion makes the cycle
garbage) so experiments can script the "becomes garbage" moment explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..ids import ObjectId, SiteId
from ..sim.simulation import Simulation
from .topology import GraphBuilder


@dataclass
class CycleWorkload:
    """A distributed cycle hanging off a persistent root by one edge."""

    root: ObjectId
    anchor: ObjectId
    cycle: List[ObjectId] = field(default_factory=list)
    sites: List[SiteId] = field(default_factory=list)
    inter_site_edges: int = 0

    def make_garbage(self, sim: Simulation) -> None:
        """Cut the anchoring edge: the whole cycle becomes garbage."""
        site = sim.site(self.anchor.site)
        site.mutator_remove_ref(self.anchor, self.cycle[0])


def build_ring_cycle(
    sim: Simulation,
    sites: Sequence[SiteId],
    objects_per_site: int = 1,
    rooted: bool = True,
) -> CycleWorkload:
    """A simple ring: one chain segment per site, closed into a cycle.

    With ``objects_per_site`` > 1 each site contributes a local chain, so the
    cycle has ``len(sites)`` inter-site references regardless.  ``rooted``
    attaches the first cycle object to a persistent root at the first site
    through an *anchor* object; cutting that edge makes the ring garbage.
    """
    builder = GraphBuilder(sim)
    members: List[ObjectId] = []
    for site_id in sites:
        for _ in range(objects_per_site):
            members.append(builder.obj(site_id))
    builder.link_cycle(members)

    first_site = sites[0]
    root = builder.obj(first_site, root=True)
    anchor = builder.obj(first_site)
    builder.link(root, anchor)
    if rooted:
        builder.link(anchor, members[0])
    return CycleWorkload(
        root=root,
        anchor=anchor,
        cycle=members,
        sites=list(sites),
        inter_site_edges=len(sites) if len(sites) > 1 else 0,
    )


def build_clique_cycle(
    sim: Simulation, sites: Sequence[SiteId], rooted: bool = True
) -> CycleWorkload:
    """A dense garbage structure: one object per site, all-to-all references.

    With N sites this has N*(N-1) inter-site references -- the worst case
    for back-trace message counts at a given site count (benchmark E1).
    """
    builder = GraphBuilder(sim)
    members = [builder.obj(site_id) for site_id in sites]
    for src in members:
        for dst in members:
            if src != dst:
                builder.link(src, dst)
    first_site = sites[0]
    root = builder.obj(first_site, root=True)
    anchor = builder.obj(first_site)
    builder.link(root, anchor)
    if rooted:
        builder.link(anchor, members[0])
    return CycleWorkload(
        root=root,
        anchor=anchor,
        cycle=members,
        sites=list(sites),
        inter_site_edges=len(sites) * (len(sites) - 1),
    )


def build_chain_across_sites(
    sim: Simulation, sites: Sequence[SiteId], rooted: bool = True
) -> CycleWorkload:
    """An acyclic chain across sites (collected by plain local tracing).

    Returned in the :class:`CycleWorkload` shape for uniform harness code;
    ``cycle`` holds the chain members and ``inter_site_edges`` the hops.
    """
    builder = GraphBuilder(sim)
    members = [builder.obj(site_id) for site_id in sites]
    builder.link_chain(members)
    first_site = sites[0]
    root = builder.obj(first_site, root=True)
    anchor = builder.obj(first_site)
    builder.link(root, anchor)
    if rooted:
        builder.link(anchor, members[0])
    return CycleWorkload(
        root=root,
        anchor=anchor,
        cycle=members,
        sites=list(sites),
        inter_site_edges=len(sites) - 1,
    )


@dataclass
class ClusteredGraphWorkload:
    """A random clustered graph: mostly-local references, a few remote."""

    roots: List[ObjectId] = field(default_factory=list)
    objects: List[ObjectId] = field(default_factory=list)
    inter_site_edges: List[Tuple[ObjectId, ObjectId]] = field(default_factory=list)
    local_edges: int = 0


def build_random_clustered_graph(
    sim: Simulation,
    sites: Sequence[SiteId],
    objects_per_site: int = 50,
    local_out_degree: float = 2.0,
    remote_edge_fraction: float = 0.05,
    seed: int = 0,
    root_fraction: float = 0.05,
) -> ClusteredGraphWorkload:
    """Random graph matching the paper's clustering assumption.

    Objects are clustered within sites so inter-site references are
    relatively uncommon (``remote_edge_fraction`` of all edges).  A fraction
    of objects at each site are persistent roots; the rest may or may not be
    reachable, giving a natural mix of live objects, acyclic garbage, and
    (occasionally) distributed cyclic garbage.
    """
    rng = random.Random(seed)
    builder = GraphBuilder(sim)
    result = ClusteredGraphWorkload()
    per_site: Dict[SiteId, List[ObjectId]] = {}
    for site_id in sites:
        per_site[site_id] = [builder.obj(site_id) for _ in range(objects_per_site)]
        result.objects.extend(per_site[site_id])
        root_count = max(1, int(objects_per_site * root_fraction))
        for oid in rng.sample(per_site[site_id], root_count):
            sim.site(site_id).heap.make_persistent_root(oid)
            result.roots.append(oid)

    total_edges = int(len(result.objects) * local_out_degree)
    remote_edges = int(total_edges * remote_edge_fraction)
    local_edges = total_edges - remote_edges
    for _ in range(local_edges):
        site_id = rng.choice(list(sites))
        src = rng.choice(per_site[site_id])
        dst = rng.choice(per_site[site_id])
        builder.link(src, dst)
        result.local_edges += 1
    for _ in range(remote_edges):
        src_site, dst_site = rng.sample(list(sites), 2)
        src = rng.choice(per_site[src_site])
        dst = rng.choice(per_site[dst_site])
        builder.link(src, dst)
        result.inter_site_edges.append((src, dst))
    return result
