"""Shard-safe mutator traffic for the parallel engine (and its benchmarks).

:class:`~repro.mutator.workload.RandomWorkload` inspects remote heaps
directly (to pick traversal targets that still resolve), which is fine on
one scheduler but impossible once sites live in separate worker processes.
:class:`SiteChurn` is the shard-local equivalent: every site runs its own
independently-seeded stream of operations that touch only *local* state plus
the messaging API --

- allocate an object and link it from the site's well-known *hub* (a
  persistent root created at construction);
- unlink a previously allocated object from the hub (making it garbage
  unless a copy of its reference reached another site);
- ship a local object's reference to another site's hub with
  :meth:`Site.mutator_send_ref` (the full remote-copy/insert protocol --
  this is the cross-shard traffic that exercises the lookahead windows);
- trim one reference out of the site's own hub (possibly dropping a
  remotely-inserted reference, creating distributed garbage).

Determinism: each site draws from its own ``churn:{site}`` RNG stream and
its events are tagged with its site id, so the operation sequence at a site
depends only on that site's own history -- identical under the sequential
and the sharded engine, which is exactly what the parallel equivalence
tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..errors import ConfigError
from ..ids import ObjectId, SiteId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.simulation import Simulation


@dataclass(frozen=True)
class ChurnConfig:
    """Operation mix and pacing for per-site churn."""

    mean_interval: float = 4.0
    alloc_weight: float = 3.0
    unlink_weight: float = 2.0
    send_weight: float = 2.0
    hub_trim_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_interval <= 0:
            raise ConfigError("mean_interval must be > 0")
        total = (
            self.alloc_weight
            + self.unlink_weight
            + self.send_weight
            + self.hub_trim_weight
        )
        if total <= 0:
            raise ConfigError("at least one churn weight must be > 0")


class SiteChurn:
    """Independent per-site churn across ``site_ids``.

    Build *before* the first run (the hubs must exist in every shard's
    inherited heap); :meth:`start` schedules one tagged ticker per site.
    Operation counts are recorded on the per-site metrics recorder under
    ``churn.ops`` so a parallel run can report them via
    ``ParallelSimulation.merged_metrics()``.
    """

    def __init__(
        self,
        sim: "Simulation",
        site_ids,
        config: Optional[ChurnConfig] = None,
    ):
        self.sim = sim
        self.config = config or ChurnConfig()
        self.site_ids: List[SiteId] = sorted(site_ids)
        if not self.site_ids:
            raise ConfigError("SiteChurn needs at least one site")
        self.hubs: Dict[SiteId, ObjectId] = {}
        for site_id in self.site_ids:
            site = sim.site(site_id)
            self.hubs[site_id] = site.heap.alloc(persistent_root=True).oid
        self._rngs = {
            site_id: sim.rng.stream(f"churn:{site_id}")
            for site_id in self.site_ids
        }
        # Objects this site allocated and still links from its hub.  Keyed
        # by site so a shard worker only ever touches its own sites' lists.
        self._local: Dict[SiteId, List[ObjectId]] = {
            site_id: [] for site_id in self.site_ids
        }
        self._running = False
        self._until: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self, until: Optional[float] = None) -> None:
        """Begin ticking; with ``until`` set, tickers expire at that time.

        ``until`` is the supported way to end churn under the parallel
        engine: :meth:`stop` flips a flag in the calling process, which a
        forked shard worker (holding its own copy of this object) never
        sees, whereas a time deadline is part of the pre-fork state every
        worker inherits -- and is deterministic in both engines.
        """
        self._running = True
        self._until = until
        for site_id in self.site_ids:
            self._schedule(site_id)

    def stop(self) -> None:
        """Stop ticking (sequential engine only -- see :meth:`start`)."""
        self._running = False

    def _schedule(self, site_id: SiteId) -> None:
        delay = self._rngs[site_id].expovariate(1.0 / self.config.mean_interval)
        self.sim.scheduler.schedule(
            delay,
            lambda: self._tick(site_id),
            label=f"churn:{site_id}",
            site=site_id,
        )

    def _tick(self, site_id: SiteId) -> None:
        if not self._running:
            return
        if self._until is not None and self.sim.scheduler.now >= self._until:
            return
        site = self.sim.site(site_id)
        if not site.crashed:
            self._operate(site_id, site)
            site.metrics.incr("churn.ops")
        self._schedule(site_id)

    # -- operations ---------------------------------------------------------

    def _operate(self, site_id: SiteId, site) -> None:
        cfg = self.config
        rng = self._rngs[site_id]
        ops = [
            (cfg.alloc_weight, self._op_alloc),
            (cfg.unlink_weight, self._op_unlink),
            (cfg.send_weight, self._op_send),
            (cfg.hub_trim_weight, self._op_trim),
        ]
        pick = rng.uniform(0.0, sum(weight for weight, _ in ops))
        for weight, op in ops:
            pick -= weight
            if pick <= 0:
                op(site_id, site, rng)
                return
        ops[-1][1](site_id, site, rng)

    def _op_alloc(self, site_id: SiteId, site, rng) -> None:
        oid = site.heap.alloc().oid
        site.mutator_add_ref(self.hubs[site_id], oid)
        self._local[site_id].append(oid)

    def _op_unlink(self, site_id: SiteId, site, rng) -> None:
        local = self._local[site_id]
        if not local:
            return
        victim = local.pop(rng.randrange(len(local)))
        site.mutator_remove_ref(self.hubs[site_id], victim)

    def _op_send(self, site_id: SiteId, site, rng) -> None:
        local = self._local[site_id]
        others = [other for other in self.site_ids if other != site_id]
        if not local or not others:
            return
        target = local[rng.randrange(len(local))]
        dst = others[rng.randrange(len(others))]
        site.mutator_send_ref(dst, target, self.hubs[dst])

    def _op_trim(self, site_id: SiteId, site, rng) -> None:
        hub = site.heap.maybe_get(self.hubs[site_id])
        if hub is None or not hub.refs:
            return
        refs = hub.refs
        victim = refs[rng.randrange(len(refs))]
        site.mutator_remove_ref(self.hubs[site_id], victim)
        # A mutator may only send references it still holds.  The hub is this
        # site's only handle on its allocations, so once the hub edge is
        # gone the object must leave the send pool too -- otherwise a later
        # _op_send could ship a reference to an object the collector has
        # (correctly) swept in the meantime.
        if victim.site == site_id:
            local = self._local[site_id]
            if victim in local:
                local.remove(victim)
