"""Workload construction: object-graph builders and generators.

:class:`GraphBuilder` creates objects and references with consistent
inref/outref tables, for scripted scenarios (the paper's figures) and for
the generators in :mod:`.generators` (multi-site cycles, clustered random
graphs) and :mod:`.hypertext` (the paper's motivating hypertext workload).
"""

from .topology import GraphBuilder
from .generators import (
    build_chain_across_sites,
    build_clique_cycle,
    build_ring_cycle,
    build_random_clustered_graph,
)
from .hypertext import build_hypertext_web
from .oodb import ObjectDatabase, build_object_database
from .churn import ChurnConfig, SiteChurn

__all__ = [
    "GraphBuilder",
    "ChurnConfig",
    "SiteChurn",
    "build_ring_cycle",
    "build_clique_cycle",
    "build_chain_across_sites",
    "build_random_clustered_graph",
    "build_hypertext_web",
    "ObjectDatabase",
    "build_object_database",
]
