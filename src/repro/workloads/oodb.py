"""An object-database workload (the paper's deployment target, Thor [LAC+96]).

Models a persistent object database partitioned across sites the way OODBs
actually shard: each entity class lives in its own partition (customers on
one site, orders on another, products on a third), with an *extent* object
(the class's index, a persistent root) per partition.

Inter-site cycles arise exactly where they do in real schemas -- from
**bidirectional associations**: every order points at its customer, and the
customer's order-list points back at each order.  Deleting a customer from
the extent (the only root path) strands the whole customer<->orders cluster
as a distributed garbage cycle, which plain local tracing can never reclaim.
Products are referenced one-way (no back-pointer), so dropped products are
ordinary acyclic garbage -- the workload mixes both kinds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import random

from ..ids import ObjectId, SiteId
from ..sim.simulation import Simulation
from .topology import GraphBuilder


@dataclass
class Customer:
    record: ObjectId          # the customer entity
    order_list: ObjectId      # its (local) collection of order back-refs
    orders: List[ObjectId] = field(default_factory=list)


@dataclass
class ObjectDatabase:
    """Handles into the built database."""

    customer_site: SiteId
    order_site: SiteId
    product_site: SiteId
    customer_extent: ObjectId
    order_extent: ObjectId
    product_extent: ObjectId
    customers: List[Customer] = field(default_factory=list)
    orders: List[ObjectId] = field(default_factory=list)
    products: List[ObjectId] = field(default_factory=list)

    def delete_customer(self, sim: Simulation, index: int) -> Customer:
        """Remove a customer from its extent: the customer record, its order
        list, and all its orders (each in a customer<->order cycle) become
        distributed cyclic garbage.  The orders also leave the order extent,
        as a cascading business rule."""
        customer = self.customers[index]
        site = sim.site(self.customer_site)
        if site.heap.maybe_get(self.customer_extent) is not None and site.heap.get(
            self.customer_extent
        ).holds_ref(customer.record):
            site.mutator_remove_ref(self.customer_extent, customer.record)
        order_site = sim.site(self.order_site)
        for order in customer.orders:
            extent_obj = order_site.heap.maybe_get(self.order_extent)
            if extent_obj is not None and extent_obj.holds_ref(order):
                order_site.mutator_remove_ref(self.order_extent, order)
        return customer

    def discontinue_product(self, sim: Simulation, index: int) -> ObjectId:
        """Drop a product from its extent: acyclic garbage *only if* no
        order still references it."""
        product = self.products[index]
        site = sim.site(self.product_site)
        extent_obj = site.heap.maybe_get(self.product_extent)
        if extent_obj is not None and extent_obj.holds_ref(product):
            site.mutator_remove_ref(self.product_extent, product)
        return product

    def customer_cluster_objects(self, index: int) -> List[ObjectId]:
        customer = self.customers[index]
        return [customer.record, customer.order_list, *customer.orders]


def build_object_database(
    sim: Simulation,
    customer_site: SiteId,
    order_site: SiteId,
    product_site: SiteId,
    n_customers: int = 5,
    orders_per_customer: int = 3,
    n_products: int = 8,
    products_per_order: int = 2,
    seed: int = 0,
) -> ObjectDatabase:
    """Build the partitioned schema with bidirectional associations."""
    rng = random.Random(seed)
    builder = GraphBuilder(sim)
    db = ObjectDatabase(
        customer_site=customer_site,
        order_site=order_site,
        product_site=product_site,
        customer_extent=builder.obj(customer_site, root=True),
        order_extent=builder.obj(order_site, root=True),
        product_extent=builder.obj(product_site, root=True),
    )
    for _ in range(n_products):
        product = builder.obj(product_site)
        builder.link(db.product_extent, product)
        db.products.append(product)
    for _ in range(n_customers):
        record = builder.obj(customer_site)
        order_list = builder.obj(customer_site)
        builder.link(db.customer_extent, record)
        builder.link(record, order_list)
        customer = Customer(record=record, order_list=order_list)
        for _ in range(orders_per_customer):
            order = builder.obj(order_site)
            builder.link(db.order_extent, order)
            # The bidirectional association: order -> customer record, and
            # the customer's order list -> order.  This is the inter-site
            # cycle (customer partition <-> order partition).
            builder.link(order, record)
            builder.link(order_list, order)
            for product in rng.sample(db.products, min(products_per_order, n_products)):
                builder.link(order, product)
            customer.orders.append(order)
            db.orders.append(order)
        db.customers.append(customer)
    return db
