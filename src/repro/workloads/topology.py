"""Direct construction of distributed object graphs.

The builder creates objects and reference edges *before* a simulation run,
keeping the inref/outref tables consistent with the heaps (every inter-site
edge yields an outref at the holder and a source entry in the owner's inref).
New inref sources start at the conservative distance 1, exactly as if the
reference had just been inserted; experiments then run warm-up GC rounds to
let the distance heuristic converge to true distances before the interesting
mutation happens.

Objects can be given string labels so scenario code reads like the paper's
figures: ``b["a"]``, ``b.link("a", "b")``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from ..errors import SimulationError
from ..ids import ObjectId, SiteId
from ..sim.simulation import Simulation

Handle = Union[str, ObjectId]


class GraphBuilder:
    """Builds labelled objects and reference edges across sites."""

    def __init__(self, sim: Simulation):
        self.sim = sim
        self._labels: Dict[str, ObjectId] = {}

    def __getitem__(self, label: str) -> ObjectId:
        try:
            return self._labels[label]
        except KeyError:
            raise SimulationError(f"no object labelled {label!r}") from None

    def resolve(self, handle: Handle) -> ObjectId:
        if isinstance(handle, ObjectId):
            return handle
        return self[handle]

    @property
    def labels(self) -> Dict[str, ObjectId]:
        return dict(self._labels)

    # -- creation ---------------------------------------------------------------

    def obj(
        self, site_id: SiteId, label: Optional[str] = None, root: bool = False
    ) -> ObjectId:
        """Create one object at ``site_id``; optionally a persistent root."""
        site = self.sim.site(site_id)
        oid = site.heap.alloc(persistent_root=root).oid
        if label is not None:
            if label in self._labels:
                raise SimulationError(f"label {label!r} already used")
            self._labels[label] = oid
        return oid

    def objs(self, site_id: SiteId, count: int, prefix: Optional[str] = None) -> List[ObjectId]:
        return [
            self.obj(site_id, label=f"{prefix}{i}" if prefix else None)
            for i in range(count)
        ]

    # -- edges --------------------------------------------------------------------

    def link(self, src: Handle, dst: Handle) -> None:
        """Add a reference from object ``src`` to object ``dst``.

        Cross-site links create/extend the matching outref and inref entries
        with the conservative new-source distance of 1.
        """
        src_oid = self.resolve(src)
        dst_oid = self.resolve(dst)
        src_site = self.sim.site(src_oid.site)
        src_site.heap.get(src_oid).add_ref(dst_oid)
        if dst_oid.site != src_oid.site:
            src_site.outrefs.ensure(dst_oid, clean=True, distance=1)
            dst_site = self.sim.site(dst_oid.site)
            dst_site.inrefs.ensure(dst_oid, source=src_oid.site, distance=1)

    def link_chain(self, handles: Iterable[Handle]) -> None:
        """Link consecutive handles: a -> b -> c -> ..."""
        previous: Optional[Handle] = None
        for handle in handles:
            if previous is not None:
                self.link(previous, handle)
            previous = handle

    def link_cycle(self, handles: Iterable[Handle]) -> None:
        """Link consecutive handles and close the loop back to the first."""
        items = list(handles)
        if not items:
            return
        self.link_chain(items)
        if len(items) > 1:
            self.link(items[-1], items[0])
        else:
            self.link(items[0], items[0])

    # -- convergence -------------------------------------------------------------------

    def warm_up(self, rounds: int = 0, settle_time: float = 50.0) -> None:
        """Run GC rounds so distance estimates converge to true distances.

        A path crossing k inter-site references needs about k rounds of
        alternating local traces and update messages to reach its exact
        distance; pass the diameter of your graph (in inter-site hops).
        """
        for _ in range(rounds):
            self.sim.run_gc_round(settle_time=settle_time)
