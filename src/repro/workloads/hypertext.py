"""The paper's motivating workload: hypertext documents.

"Hypertext documents often form large, complex cycles" (section 1).  This
generator models a web of documents spread across sites: each document is a
small local tree of page objects (title page plus sections), and documents
link to each other's title pages following a random citation pattern with a
configurable back-link probability -- back-links are what close inter-site
cycles (think "see also" / parent-child document relations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..ids import ObjectId, SiteId
from ..sim.simulation import Simulation
from .topology import GraphBuilder


@dataclass
class Document:
    """One hypertext document: a title page and its section objects."""

    title_page: ObjectId
    sections: List[ObjectId] = field(default_factory=list)

    @property
    def site(self) -> SiteId:
        return self.title_page.site

    @property
    def objects(self) -> List[ObjectId]:
        return [self.title_page, *self.sections]


@dataclass
class HypertextWeb:
    """A web of cross-linked documents, partly reachable from a catalog."""

    catalog: ObjectId
    documents: List[Document] = field(default_factory=list)
    links: List[Tuple[ObjectId, ObjectId]] = field(default_factory=list)
    catalog_entries: List[int] = field(default_factory=list)

    def document_objects(self, index: int) -> List[ObjectId]:
        return self.documents[index].objects

    def unlink_from_catalog(self, sim: Simulation, index: int) -> None:
        """Drop a document from the catalog (it may become garbage)."""
        if index not in self.catalog_entries:
            return
        site = sim.site(self.catalog.site)
        site.mutator_remove_ref(self.catalog, self.documents[index].title_page)
        self.catalog_entries.remove(index)


def build_hypertext_web(
    sim: Simulation,
    sites: Sequence[SiteId],
    documents_per_site: int = 3,
    sections_per_document: int = 3,
    citations_per_document: int = 2,
    back_link_probability: float = 0.5,
    catalog_fraction: float = 0.6,
    seed: int = 0,
) -> HypertextWeb:
    """Build a cross-site document web with cyclic citation structure.

    A *catalog* object (persistent root at the first site) lists a fraction
    of the documents; the rest are reachable only through citations.
    Cutting catalog entries strands citation cycles -- exactly the
    long-lived-system leak the paper motivates back tracing with.
    """
    rng = random.Random(seed)
    builder = GraphBuilder(sim)
    web = HypertextWeb(catalog=builder.obj(sites[0], root=True))

    for site_id in sites:
        for _ in range(documents_per_site):
            title = builder.obj(site_id)
            doc = Document(title_page=title)
            for _ in range(sections_per_document):
                section = builder.obj(site_id)
                builder.link(title, section)
                # Sections point back at their title page: local cycles.
                builder.link(section, title)
                doc.sections.append(section)
            web.documents.append(doc)

    count = len(web.documents)
    for index, doc in enumerate(web.documents):
        for _ in range(citations_per_document):
            other_index = rng.randrange(count)
            if other_index == index:
                continue
            other = web.documents[other_index]
            source_page = rng.choice(doc.objects)
            builder.link(source_page, other.title_page)
            web.links.append((source_page, other.title_page))
            if rng.random() < back_link_probability:
                back_source = rng.choice(other.objects)
                builder.link(back_source, doc.title_page)
                web.links.append((back_source, doc.title_page))

    for index in range(count):
        if rng.random() < catalog_fraction:
            builder.link(web.catalog, web.documents[index].title_page)
            web.catalog_entries.append(index)
    return web
