"""Inref table: incoming inter-site references.

Each entry records one local object that remote sites hold references to,
together with the *source list* (which sites, each with a distance estimate
per the distance heuristic of section 3).  The local trace uses non-garbage
inrefs as roots; back traces take *remote steps* from an inref to the
corresponding outrefs at its source sites.

Cleanliness: an inref is *clean* when its estimated distance is at or below
the suspicion threshold, or when the transfer barrier (section 6.1.1) has
cleaned it since the last local trace.  Otherwise it is *suspected*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set

from ..errors import GcInvariantError
from ..ids import ObjectId, SiteId, TraceId

INFINITE_DISTANCE = 10**9
"""Sentinel for 'unreachable'; the paper's 'distance of garbage is infinity'."""


class _SourceMap(dict):
    """Per-source distance map that notifies its entry on every change.

    Tests and scenario builders routinely poke ``entry.sources[site] = d``
    directly; routing notification through the mapping itself means those
    writes still advance the table's distance epoch, keeping the incremental
    trace's dirty tracking airtight.
    """

    __slots__ = ("entry",)

    def __init__(self, entry: "InrefEntry", initial=()):
        super().__init__(initial)
        self.entry = entry

    def __setitem__(self, site: SiteId, distance: int) -> None:
        added = site not in self
        if not added and self.get(site) == distance:
            return
        super().__setitem__(site, distance)
        if added:
            self.entry._source_added(site)
        self.entry._distance_changed()

    def __delitem__(self, site: SiteId) -> None:
        super().__delitem__(site)
        self.entry._source_removed(site)
        self.entry._distance_changed()

    def pop(self, site, *default):
        present = site in self
        value = super().pop(site, *default)
        if present:
            self.entry._source_removed(site)
            self.entry._distance_changed()
        return value


@dataclass
class InrefEntry:
    """One incoming reference: a local object plus its remote source list.

    ``garbage`` and ``barrier_clean`` are properties so that *any* writer --
    the back-trace engine, the transfer barrier, a baseline collector --
    automatically bumps the owning table's structure epoch; distance changes
    flow through the three source-list methods and bump the distance epoch.
    The incremental local trace depends on these notifications.
    """

    target: ObjectId
    sources: Dict[SiteId, int] = field(default_factory=dict)
    visited: Set[TraceId] = field(default_factory=set)
    back_threshold: int = 0
    # Outset of this inref as of the last local trace (suspected outrefs
    # locally reachable from it).  The transfer barrier cleans exactly these
    # outrefs when the inref is cleaned (section 6.1.1); it is also the dual
    # of the insets stored on outrefs.
    outset: FrozenSet[ObjectId] = frozenset()
    # Per-entry mutation epoch: advanced on every semantically relevant
    # change (source list, garbage flag, barrier clean).  Table-owned entries
    # draw epochs from a table-global monotonic counter, so a deleted and
    # recreated entry can never reproduce an epoch a cached back-trace
    # verdict snapshotted from its predecessor.
    epoch: int = 0
    _garbage: bool = field(default=False, repr=False)
    _barrier_clean: bool = field(default=False, repr=False)
    _on_structure_change: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )
    _on_distance_change: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )
    _next_epoch: Optional[Callable[[], int]] = field(
        default=None, repr=False, compare=False
    )
    _on_source_added: Optional[Callable[[SiteId], None]] = field(
        default=None, repr=False, compare=False
    )
    _on_source_removed: Optional[Callable[[SiteId], None]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.sources, _SourceMap):
            self.sources = _SourceMap(self, self.sources)

    def _bump_epoch(self) -> None:
        if self._next_epoch is not None:
            self.epoch = self._next_epoch()
        else:
            self.epoch += 1

    def _structure_changed(self) -> None:
        self._bump_epoch()
        if self._on_structure_change is not None:
            self._on_structure_change()

    def _distance_changed(self) -> None:
        self._bump_epoch()
        if self._on_distance_change is not None:
            self._on_distance_change()

    def _source_added(self, site: SiteId) -> None:
        if self._on_source_added is not None:
            self._on_source_added(site)

    def _source_removed(self, site: SiteId) -> None:
        if self._on_source_removed is not None:
            self._on_source_removed(site)

    @property
    def garbage(self) -> bool:
        return self._garbage

    @garbage.setter
    def garbage(self, value: bool) -> None:
        if value != self._garbage:
            self._garbage = value
            self._structure_changed()

    @property
    def barrier_clean(self) -> bool:
        return self._barrier_clean

    @barrier_clean.setter
    def barrier_clean(self, value: bool) -> None:
        if value != self._barrier_clean:
            self._barrier_clean = value
            self._structure_changed()

    @property
    def distance(self) -> int:
        """Estimated distance: minimum over the per-source estimates."""
        if not self.sources:
            return INFINITE_DISTANCE
        return min(self.sources.values())

    def is_clean(self, threshold: int) -> bool:
        """Clean iff within the suspicion threshold or barrier-cleaned."""
        if self.garbage:
            return False
        return self.barrier_clean or self.distance <= threshold

    def is_suspected(self, threshold: int) -> bool:
        return not self.is_clean(threshold)

    def add_source(self, site: SiteId, distance: int = 1) -> None:
        """Insert or refresh a source site.

        A *new* source is conservatively given distance 1 (section 3); an
        existing source keeps the smaller of old and offered estimates until
        the next update message re-propagates exact values.
        """
        current = self.sources.get(site)
        if current is None:
            self.sources[site] = distance
        else:
            self.sources[site] = min(current, distance)

    def set_source_distance(self, site: SiteId, distance: int) -> None:
        """Apply a distance carried by an update message (authoritative)."""
        if site not in self.sources:
            # The source may have been dropped concurrently; ignore stale news.
            return
        self.sources[site] = distance

    def remove_source(self, site: SiteId) -> None:
        self.sources.pop(site, None)

    @property
    def empty(self) -> bool:
        """True when no source remains; the entry should then be deleted."""
        return not self.sources


class InrefTable:
    """All inrefs of one site, keyed by the referenced local object."""

    def __init__(self, site_id: SiteId, suspicion_threshold: int, initial_back_threshold: int):
        self.site_id = site_id
        self._suspicion_threshold = suspicion_threshold
        self.initial_back_threshold = initial_back_threshold
        self._entries: Dict[ObjectId, InrefEntry] = {}
        self._order_dirty = False
        self._structure_epoch = 0
        self._distance_epoch = 0
        # Monotonic feed for per-entry epochs (see InrefEntry.epoch).
        self._entry_epoch_counter = 0
        # source site -> inref targets listing it; lets the full-update prune
        # in gc.update touch only inrefs sourced from the sender.
        self._by_source: Dict[SiteId, Set[ObjectId]] = {}

    # -- mutation epochs --------------------------------------------------------
    #
    # ``structure_epoch`` advances on changes that can alter which entries
    # exist or how they classify (creation, deletion, garbage flags, barrier
    # cleans, threshold moves); ``distance_epoch`` advances on distance-only
    # changes.  The split lets the incremental local trace run its cheap
    # distance-only reconciliation when nothing structural moved.

    @property
    def structure_epoch(self) -> int:
        return self._structure_epoch

    @property
    def distance_epoch(self) -> int:
        return self._distance_epoch

    def bump_structure(self) -> None:
        self._structure_epoch += 1

    def bump_distance(self) -> None:
        self._distance_epoch += 1

    def _advance_entry_epoch(self) -> int:
        self._entry_epoch_counter += 1
        return self._entry_epoch_counter

    @property
    def suspicion_threshold(self) -> int:
        return self._suspicion_threshold

    @suspicion_threshold.setter
    def suspicion_threshold(self, value: int) -> None:
        if value != self._suspicion_threshold:
            self._suspicion_threshold = value
            self.bump_structure()  # clean/suspected classification may flip

    # -- basic access ---------------------------------------------------------

    def get(self, target: ObjectId) -> Optional[InrefEntry]:
        return self._entries.get(target)

    def require(self, target: ObjectId) -> InrefEntry:
        entry = self._entries.get(target)
        if entry is None:
            raise GcInvariantError(f"site {self.site_id} has no inref for {target}")
        return entry

    def __contains__(self, target: ObjectId) -> bool:
        return target in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def _ensure_order(self) -> None:
        """Keep ``_entries`` sorted by target, re-sorting only after inserts.

        Deletions preserve order, so steady-state iteration costs nothing
        extra; the sorted order is the deterministic iteration invariant the
        collector's update building relies on.
        """
        if self._order_dirty:
            self._entries = dict(sorted(self._entries.items()))
            self._order_dirty = False

    def entries(self) -> Iterator[InrefEntry]:
        """All entries in deterministic (target) order (see _ensure_order)."""
        self._ensure_order()
        return iter(self._entries.values())

    def targets(self) -> List[ObjectId]:
        self._ensure_order()
        return list(self._entries)

    def targets_from_source(self, source: SiteId) -> List[ObjectId]:
        """Inref targets whose source list includes ``source`` (sorted)."""
        return sorted(self._by_source.get(source, ()))

    # -- per-source index maintenance ---------------------------------------------

    def _index_source_added(self, target: ObjectId, source: SiteId) -> None:
        self._by_source.setdefault(source, set()).add(target)

    def _index_source_removed(self, target: ObjectId, source: SiteId) -> None:
        members = self._by_source.get(source)
        if members is not None:
            members.discard(target)
            if not members:
                del self._by_source[source]

    # -- mutation ---------------------------------------------------------------

    def ensure(self, target: ObjectId, source: SiteId, distance: int = 1) -> InrefEntry:
        """Get-or-create the entry for ``target`` and record ``source``."""
        if target.site != self.site_id:
            raise GcInvariantError(
                f"inref target {target} does not belong to site {self.site_id}"
            )
        entry = self._entries.get(target)
        if entry is None:
            entry = InrefEntry(
                target=target, back_threshold=self.initial_back_threshold
            )
            entry._on_structure_change = self.bump_structure
            entry._on_distance_change = self.bump_distance
            entry._next_epoch = self._advance_entry_epoch
            entry._on_source_added = lambda site: self._index_source_added(
                target, site
            )
            entry._on_source_removed = lambda site: self._index_source_removed(
                target, site
            )
            entry.epoch = self._advance_entry_epoch()
            self._entries[target] = entry
            self._order_dirty = True
            self.bump_structure()
        entry.add_source(source, distance)
        return entry

    def remove(self, target: ObjectId) -> None:
        entry = self._entries.pop(target, None)
        if entry is not None:
            for source in list(entry.sources):
                self._index_source_removed(target, source)
            self.bump_structure()

    def remove_source(self, target: ObjectId, source: SiteId) -> None:
        """Apply an update-message removal; drop the entry when empty."""
        entry = self._entries.get(target)
        if entry is None:
            return
        entry.remove_source(source)
        if entry.empty:
            del self._entries[target]
            self.bump_structure()

    # -- views used by the collector ----------------------------------------------

    def root_targets(self) -> List[ObjectId]:
        """Inref targets that serve as local-trace roots (not garbage-flagged)."""
        self._ensure_order()
        return [target for target, entry in self._entries.items() if not entry.garbage]

    def entries_by_distance(self) -> List[InrefEntry]:
        """Entries ordered by increasing distance (trace order of section 3)."""
        return sorted(
            self._entries.values(), key=lambda entry: (entry.distance, entry.target)
        )

    def clean_entries(self) -> List[InrefEntry]:
        self._ensure_order()
        return [e for e in self._entries.values() if e.is_clean(self.suspicion_threshold)]

    def suspected_entries(self) -> List[InrefEntry]:
        self._ensure_order()
        return [
            e for e in self._entries.values() if e.is_suspected(self.suspicion_threshold)
        ]

    def is_clean(self, target: ObjectId) -> bool:
        entry = self._entries.get(target)
        return entry is not None and entry.is_clean(self.suspicion_threshold)

    def reset_barrier_cleans(self) -> None:
        """Called when a local trace completes: barrier cleans expire."""
        for entry in self._entries.values():
            entry.barrier_clean = False

    def garbage_targets(self) -> List[ObjectId]:
        return [t for t, e in self._entries.items() if e.garbage]
