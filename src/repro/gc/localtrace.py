"""The per-site local trace (sections 2, 3, 5, 6.2).

One local trace performs, in order:

1. **Clean phase** (:mod:`repro.core.distance`): trace from persistent roots,
   application-variable roots, and clean inrefs in increasing distance order,
   marking clean objects and computing clean-outref distances.
2. **Suspected phase** (:mod:`repro.core.backinfo`): trace the remaining
   suspected region from suspected inrefs, computing their outsets (and thus
   the insets of suspected outrefs) for future back traces.
3. **Outref reconciliation**: refresh distances and clean/suspected states;
   trim outrefs reached by neither phase (unless pinned by the insert
   barrier or held in a mutator variable) and build per-target-site update
   messages carrying removals and distance changes.
4. **Sweep**: delete local objects reached by neither phase.  Inrefs flagged
   garbage by a back trace are not roots, so confirmed cycles die here; their
   table entries persist until update messages empty their source lists.

To model the non-atomic traces of section 6.2, computation (steps 1-3 deciding
everything) is separated from **commit** (installing new tables and sweeping).
The site keeps serving back traces from the old tables between the two, and
replays transfer barriers that arrived in the window onto the new tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..config import GcConfig
from ..core.backinfo import (
    BackInfoResult,
    TraceEnvironment,
    compute_outsets_bottom_up,
    compute_outsets_independent,
    invert_outsets,
)
from ..core.distance import (
    CleanPhaseResult,
    np as _np,
    trace_clean_phase,
    trace_clean_phase_flat,
    trace_clean_phase_vector,
)
from ..ids import ObjectId, SiteId
from ..metrics import MetricsRecorder, names
from ..store.heap import Heap
from .inrefs import InrefTable
from .outrefs import OutrefTable
from .update import UpdateDeltaPayload, UpdatePayload


@dataclass
class LocalTraceResult:
    """Everything one local trace decided, ready to be committed."""

    # "full" or "fast" (distance-only reconciliation reusing the cached
    # reachability sets); skipped ticks never produce a result at all.
    mode: str = "full"
    # True when this full trace was forced by the incremental safety net
    # (``full_trace_every_n``); it then also sends a full update refresh.
    forced_full: bool = False
    # The variable-held outrefs the trace was computed against (cache key).
    variable_outrefs: FrozenSet[ObjectId] = frozenset()
    clean_objects: Set[ObjectId] = field(default_factory=set)
    suspected_objects: Set[ObjectId] = field(default_factory=set)
    outsets: Dict[ObjectId, FrozenSet[ObjectId]] = field(default_factory=dict)
    insets: Dict[ObjectId, FrozenSet[ObjectId]] = field(default_factory=dict)
    # outref target -> (is_clean, distance); targets absent here and in
    # ``kept_pinned`` are trimmed.
    outref_states: Dict[ObjectId, Tuple[bool, int]] = field(default_factory=dict)
    kept_pinned: Set[ObjectId] = field(default_factory=set)
    removals: List[ObjectId] = field(default_factory=list)
    snapshot_outrefs: Set[ObjectId] = field(default_factory=set)
    snapshot_objects: Set[ObjectId] = field(default_factory=set)
    swept: List[ObjectId] = field(default_factory=list)
    updates_by_site: Dict[SiteId, UpdatePayload] = field(default_factory=dict)
    backinfo: Optional[BackInfoResult] = None
    clean_phase: Optional[CleanPhaseResult] = None

    @property
    def live_objects(self) -> Set[ObjectId]:
        return self.clean_objects | self.suspected_objects


@dataclass
class _TraceCache:
    """The last committed trace plus the state it was committed against.

    ``epochs`` is (heap mutation, inref structure, inref distance, outref
    mutation) captured at the end of commit; ``inref_distances`` and
    ``inref_clean`` record each inref's distance and classification so a
    distance-epoch bump can be vetted entry by entry.
    """

    result: LocalTraceResult
    epochs: Tuple[int, int, int, int]
    variable_outrefs: FrozenSet[ObjectId]
    inref_distances: Dict[ObjectId, int]
    inref_clean: Dict[ObjectId, bool]


class LocalCollector:
    """Runs local traces for one site."""

    def __init__(
        self,
        heap: Heap,
        inrefs: InrefTable,
        outrefs: OutrefTable,
        config: GcConfig,
        metrics: Optional[MetricsRecorder] = None,
    ):
        self.heap = heap
        self.inrefs = inrefs
        self.outrefs = outrefs
        self.config = config
        self.metrics = metrics or MetricsRecorder()
        # What the last update chain told each destination: dst -> (outref
        # target -> last shipped distance).  Legacy mode uses it as the
        # changed-distance dedup (the former ``_last_reported_distance``);
        # delta mode additionally diffs the committed table against it to
        # build :class:`UpdateDeltaPayload`s, so it must be re-based whenever
        # a full state transfer goes out (see :meth:`build_full_update`).
        self._shipped: Dict[SiteId, Dict[ObjectId, int]] = {}
        # Outref mutation epoch as of the last delta build: when unchanged
        # (and no periodic refresh is due) no entry can have moved, so the
        # whole diff is skipped -- a quiescent tick builds nothing at all.
        self._shipped_epoch: Optional[int] = None
        # Full traces committed so far; every ``full_update_period``-th one
        # sends the periodic full refresh in delta mode.
        self._full_traces_run = 0
        self.traces_run = 0
        # Incremental-trace state (the mutation-epoch / dirty-tracking layer).
        self._cached: Optional[_TraceCache] = None
        self._ticks_since_full = 0
        self._periodic_full_due = False
        self._epochs_at_compute: Optional[Tuple[int, int, int, int]] = None

    @property
    def _delta_mode(self) -> bool:
        """Deltas require the reliable channel's ordering guarantees."""
        return self.config.delta_updates and self.config.reliable_updates

    # -- incremental planning ----------------------------------------------------

    def _current_epochs(self) -> Tuple[int, int, int, int]:
        return (
            self.heap.mutation_epoch,
            self.inrefs.structure_epoch,
            self.inrefs.distance_epoch,
            self.outrefs.mutation_epoch,
        )

    def plan_trace(self, variable_outrefs: Iterable[ObjectId] = ()) -> str:
        """Decide how the next gc tick should resolve: skip, fast, or full.

        - ``"skip"``: nothing relevant changed since the cached committed
          trace; retracing would recompute identical tables and (thanks to
          the ``_shipped`` dedup) send no new updates.
        - ``"fast"``: only distances of suspected inrefs moved, and no inref
          crossed the suspicion threshold; reachability, outsets and insets
          are unchanged, so only suspected outref distances need
          reconciliation (no heap scan).
        - ``"full"``: anything else -- heap or table structure changed, a
          clean inref's distance moved (the clean-phase Dijkstra depends on
          it), a classification flipped, or the periodic safety net is due.
        """
        self._ticks_since_full += 1
        cache = self._cached
        if not self.config.incremental_traces or cache is None:
            return "full"
        if self._ticks_since_full > self.config.full_trace_every_n:
            self._periodic_full_due = True
            return "full"
        now = self._current_epochs()
        if (now[0], now[1], now[3]) != (cache.epochs[0], cache.epochs[1], cache.epochs[3]):
            return "full"
        if frozenset(variable_outrefs) != cache.variable_outrefs:
            return "full"
        if now[2] == cache.epochs[2]:
            return "skip"
        # Distance epoch moved: vet each entry.  The structure epoch being
        # unchanged guarantees the entry *set* matches the cache.
        threshold = self.inrefs.suspicion_threshold
        any_changed = False
        for entry in self.inrefs.entries():
            clean_now = entry.is_clean(threshold)
            if clean_now != cache.inref_clean.get(entry.target):
                return "full"
            if entry.distance != cache.inref_distances.get(entry.target):
                if clean_now:
                    return "full"
                any_changed = True
        if not any_changed:
            # Source-list churn that left every min-distance alone (e.g. a
            # redundant insert): the cached result still holds verbatim.
            self._cached = _TraceCache(
                result=cache.result,
                epochs=now,
                variable_outrefs=cache.variable_outrefs,
                inref_distances=cache.inref_distances,
                inref_clean=cache.inref_clean,
            )
            return "skip"
        return "fast"

    def record_skip(self) -> None:
        """Book-keeping for a tick resolved without any trace."""
        self.metrics.incr("gc.traces_skipped")

    def predict_quiet_ticks(self, variable_outrefs: Iterable[ObjectId] = ()) -> int:
        """How many upcoming gc ticks provably send nothing, absent new input.

        A side-effect-free twin of :meth:`plan_trace`'s skip test (that
        method mutates the tick counter, so the parallel engine's
        earliest-output-time scan cannot simply call it): with every
        mutation epoch equal to the cached trace's and the variable-root set
        unchanged, the next ``full_trace_every_n - _ticks_since_full`` ticks
        resolve as skips.  In delta mode the budget-exhausting *forced full*
        is looked through as well: with the shipped epoch also current, its
        recomputation equals the cache and :meth:`_build_delta_updates`
        ships nothing -- unless that full lands on the periodic
        full-refresh cadence, which is where the prediction stops.  The
        count is a conservative lower bound, never exact: any event that
        perturbs the site before a predicted tick fires makes later ticks
        louder, and the caller's safety argument must (and does) charge
        such perturbations to the perturbing event instead.
        """
        cache = self._cached
        if not self.config.incremental_traces or cache is None:
            return 0
        if self._current_epochs() != cache.epochs:
            return 0
        if frozenset(variable_outrefs) != cache.variable_outrefs:
            return 0
        quiet = max(0, self.config.full_trace_every_n - self._ticks_since_full)
        if self._delta_mode and self._shipped_epoch == self.outrefs.mutation_epoch:
            # Each silent forced full resets the skip budget: one full tick
            # plus a fresh run of skips, repeated until a full lands on the
            # refresh cadence ((_full_traces_run - 1) % period == 0 at
            # build time, i.e. the k-th future full is loud when
            # (_full_traces_run + k - 1) % period == 0).
            fulls = self._full_traces_run
            while fulls % self.config.full_update_period != 0:
                quiet += 1 + self.config.full_trace_every_n
                fulls += 1
        return quiet

    # -- computation ------------------------------------------------------------

    def compute(
        self, variable_outrefs: Iterable[ObjectId] = (), mode: str = "full"
    ) -> LocalTraceResult:
        """Decide the outcome of a local trace without changing any state."""
        self._epochs_at_compute = self._current_epochs()
        if mode == "fast":
            return self._compute_fast(variable_outrefs)
        result = LocalTraceResult()
        result.forced_full = self._periodic_full_due
        result.variable_outrefs = frozenset(variable_outrefs)
        self._periodic_full_due = False
        # targets() is maintained in sorted target order; iterating the list
        # (not the set) below keeps ``result.removals`` sorted by construction.
        snapshot_outref_order = self.outrefs.targets()
        result.snapshot_outrefs = set(snapshot_outref_order)
        result.snapshot_objects = self.heap.object_id_set()
        # Read the (possibly tuner-adjusted) live threshold off the table,
        # not the static config (see repro.core.tuning).
        threshold = self.inrefs.suspicion_threshold

        # Phase 1: clean trace.  Persistent and variable roots at distance 0;
        # clean inrefs at their estimated distances.
        roots: List[Tuple[ObjectId, int]] = [
            (oid, 0) for oid in sorted(self.heap.persistent_roots)
        ]
        roots.extend((oid, 0) for oid in sorted(self.heap.variable_roots))
        suspected_targets: List[ObjectId] = []
        for entry in self.inrefs.entries_by_distance():
            if entry.garbage:
                continue
            if entry.is_clean(threshold):
                roots.append((entry.target, entry.distance))
            else:
                suspected_targets.append(entry.target)
        # Kernel ladder: all three produce identical results (the twin tests
        # assert byte-equality); pick the cheapest that applies.  The vector
        # kernel's fixed numpy costs only amortise past a minimum heap size
        # AND a minimum frontier width -- it self-demotes to the flat kernel
        # on deep narrow graphs (see the shape gate in repro.core.distance).
        if not self.config.flat_kernel:
            kernel = trace_clean_phase
        elif (
            self.config.vector_kernel
            and _np is not None
            and len(self.heap) >= self.config.vector_kernel_min_objects
        ):
            kernel = trace_clean_phase_vector
        else:
            kernel = trace_clean_phase_flat
        clean_phase = kernel(self.heap, roots, variable_outrefs=variable_outrefs)
        result.clean_phase = clean_phase
        result.clean_objects = clean_phase.clean_objects

        # Phase 2: suspected trace computing outsets/insets.
        clean_outrefs = set(clean_phase.outref_distances)
        pinned = {
            entry.target for entry in self.outrefs.entries() if entry.pin_count > 0
        }

        def is_clean_outref(target: ObjectId) -> bool:
            return target in clean_outrefs or target in pinned

        env = TraceEnvironment(
            heap=self.heap,
            clean_objects=result.clean_objects,
            is_clean_outref=is_clean_outref,
        )
        if self.config.backinfo_algorithm == "independent":
            backinfo = compute_outsets_independent(env, suspected_targets)
        else:
            backinfo = compute_outsets_bottom_up(env, suspected_targets)
        result.backinfo = backinfo
        result.suspected_objects = backinfo.visited_objects
        result.outsets = backinfo.outsets
        result.insets = invert_outsets(backinfo.outsets)

        # Phase 3: reconcile outrefs.
        inref_distance = {
            entry.target: entry.distance for entry in self.inrefs.entries()
        }
        for target, distance in clean_phase.outref_distances.items():
            result.outref_states[target] = (True, distance)
        for target, inset in result.insets.items():
            distances = [inref_distance.get(i, 0) for i in inset]
            distance = 1 + (min(distances) if distances else 0)
            result.outref_states[target] = (False, distance)
        result.kept_pinned = pinned - set(result.outref_states)
        for target in snapshot_outref_order:
            if target not in result.outref_states and target not in result.kept_pinned:
                result.removals.append(target)

        self._record_metrics(result)
        return result

    def _compute_fast(self, variable_outrefs: Iterable[ObjectId]) -> LocalTraceResult:
        """Distance-only reconciliation against the cached committed trace.

        Valid only when :meth:`plan_trace` returned ``"fast"``: the heap, the
        table structures, the classifications, and all *clean* inref
        distances are unchanged, so reachability (clean/suspected sets),
        outsets, insets, and clean-outref distances can be reused verbatim.
        Only suspected outref distances -- ``1 + min`` over their insets'
        inref distances, exactly phase 3 of the full trace -- are recomputed.
        No object is scanned.
        """
        cache = self._cached
        assert cache is not None, "fast trace without a cached result"
        prev = cache.result
        result = LocalTraceResult(mode="fast")
        result.variable_outrefs = frozenset(variable_outrefs)
        snapshot_outref_order = self.outrefs.targets()
        result.snapshot_outrefs = set(snapshot_outref_order)
        result.snapshot_objects = self.heap.object_id_set()
        result.clean_objects = prev.clean_objects.copy()
        result.suspected_objects = prev.suspected_objects.copy()
        result.outsets = dict(prev.outsets)
        result.insets = dict(prev.insets)
        result.clean_phase = prev.clean_phase
        result.backinfo = prev.backinfo
        for target, (clean, distance) in prev.outref_states.items():
            if clean:
                result.outref_states[target] = (True, distance)
        inref_distance = {
            entry.target: entry.distance for entry in self.inrefs.entries()
        }
        for target, inset in result.insets.items():
            distances = [inref_distance.get(i, 0) for i in inset]
            distance = 1 + (min(distances) if distances else 0)
            result.outref_states[target] = (False, distance)
        pinned = {
            entry.target for entry in self.outrefs.entries() if entry.pin_count > 0
        }
        result.kept_pinned = pinned - set(result.outref_states)
        for target in snapshot_outref_order:
            if target not in result.outref_states and target not in result.kept_pinned:
                result.removals.append(target)
        self.metrics.incr("gc.local_traces")
        self.metrics.incr("gc.traces_fast_path")
        return result

    def _assert_update_order(self, entries: List) -> None:
        """Debug-mode check of the maintained-sorted iteration invariant.

        ``_build_updates`` used to ``sorted()`` the table (and the removal
        list) on every full trace; both now rely on the tables keeping
        deterministic target order on mutation, so a regression here would
        silently reorder wire messages.  Compiled out under ``-O``.
        """
        targets = [entry.target for entry in entries]
        assert targets == sorted(targets), "outref iteration order invariant broken"

    def _build_updates(self, result: LocalTraceResult) -> None:
        """Batch per-target-site update payloads at *commit* time.

        Runs against the reconciled outref table, so that a full update's
        "complete list" semantics cannot miss entries created while a
        non-atomic trace was computing.  Legacy mode (``delta_updates`` off
        or unreliable channel) sends changed distances plus removals, with a
        full list every ``full_update_period``-th trace and on every forced
        full.  Delta mode ships :class:`UpdateDeltaPayload` diffs against the
        per-destination shipped state and reserves full state transfers for
        every ``full_update_period``-th *full* trace (the reliable channel
        and the gap-triggered refresh cover loss, so the periodic cadence can
        be much sparser).
        """
        if self._delta_mode:
            self._build_delta_updates(result)
        else:
            self._build_legacy_updates(result)

    def _build_legacy_updates(self, result: LocalTraceResult) -> None:
        full_refresh = (
            self.traces_run % self.config.full_update_period == 0
            or result.forced_full
        )
        distances_by_site: Dict[SiteId, List[Tuple[ObjectId, int]]] = {}
        removals_by_site: Dict[SiteId, List[ObjectId]] = {}
        entries = list(self.outrefs.entries())
        if __debug__:
            self._assert_update_order(entries)
        for entry in entries:
            target = entry.target
            shipped = self._shipped.setdefault(target.site, {})
            if full_refresh or shipped.get(target) != entry.distance:
                distances_by_site.setdefault(target.site, []).append(
                    (target, entry.distance)
                )
                shipped[target] = entry.distance
        # result.removals is already sorted (built from the ordered snapshot).
        if __debug__:
            assert result.removals == sorted(result.removals)
        for target in result.removals:
            if target not in self.outrefs:  # actually removed (not pinned)
                removals_by_site.setdefault(target.site, []).append(target)
                shipped = self._shipped.get(target.site)
                if shipped is not None:
                    shipped.pop(target, None)
        sites = set(distances_by_site) | set(removals_by_site)
        if full_refresh:
            # A site that holds *no* outrefs toward a previous target would
            # normally go silent; explicit removals already cover the known
            # cases, so nothing extra is required here.
            pass
        for site in sorted(sites):
            result.updates_by_site[site] = UpdatePayload(
                distances=tuple(distances_by_site.get(site, ())),
                removals=tuple(removals_by_site.get(site, ())),
                full=full_refresh,
            )

    def _build_delta_updates(self, result: LocalTraceResult) -> None:
        if result.mode == "full":
            self._full_traces_run += 1
        full_refresh = (
            result.mode == "full"
            and (self._full_traces_run - 1) % self.config.full_update_period == 0
        )
        outrefs_epoch = self.outrefs.mutation_epoch
        if not full_refresh and self._shipped_epoch == outrefs_epoch:
            # Nothing in the table moved since the last build: every diff
            # would be empty.  A quiescent steady-state tick ends here.
            return
        entries = list(self.outrefs.entries())
        if __debug__:
            self._assert_update_order(entries)
            assert result.removals == sorted(result.removals)
        current: Dict[SiteId, Dict[ObjectId, int]] = {}
        for entry in entries:
            current.setdefault(entry.target.site, {})[entry.target] = entry.distance
        # Outrefs the trace trimmed must be reported even when they were
        # never shipped in an update: the peer learned of us as a source
        # through the *insert protocol*, so the shipped-state diff alone
        # would never empty its inref source list (acyclic distributed
        # garbage would survive forever).
        explicit_removals: Dict[SiteId, List[ObjectId]] = {}
        for target in result.removals:
            if target not in self.outrefs:  # actually removed (not pinned)
                explicit_removals.setdefault(target.site, []).append(target)
        sites = set(current) | set(self._shipped) | set(explicit_removals)
        for site in sorted(sites):
            cur = current.get(site, {})
            shipped = self._shipped.get(site, {})
            explicit = explicit_removals.get(site, ())
            if full_refresh:
                if not cur and not shipped and not explicit:
                    continue
                # Complete list; the receiver-side prune replaces explicit
                # removals, and the payload re-anchors a desynced peer.
                result.updates_by_site[site] = UpdatePayload(
                    distances=tuple(cur.items()), removals=(), full=True
                )
                self.metrics.incr(names.UPDATE_FULL_REFRESHES)
            else:
                adds = tuple(
                    (target, distance)
                    for target, distance in cur.items()
                    if target not in shipped
                )
                changes = tuple(
                    (target, distance)
                    for target, distance in cur.items()
                    if target in shipped and shipped[target] != distance
                )
                removal_set = {t for t in shipped if t not in cur}
                removal_set.update(explicit)
                if not adds and not changes and not removal_set:
                    continue
                result.updates_by_site[site] = UpdateDeltaPayload(
                    adds=adds, distances=changes, removals=tuple(sorted(removal_set))
                )
                self.metrics.incr(names.UPDATE_DELTAS_SENT)
            if cur:
                self._shipped[site] = dict(cur)
            else:
                self._shipped.pop(site, None)
        self._shipped_epoch = outrefs_epoch

    def build_full_update(self, dst: SiteId) -> UpdatePayload:
        """The complete current outref list toward ``dst`` (idempotent).

        The site layer sends these for retransmissions, desynced-peer repair,
        and refresh requests.  In delta mode the shipped state is re-based on
        the transfer so subsequent deltas diff against what the peer now
        holds; legacy mode leaves the changed-distance dedup untouched
        (historical behaviour).
        """
        entries = list(self.outrefs.entries())
        if __debug__:
            self._assert_update_order(entries)
        distances = tuple(
            (entry.target, entry.distance)
            for entry in entries
            if entry.target.site == dst
        )
        if self._delta_mode:
            if distances:
                self._shipped[dst] = dict(distances)
            else:
                self._shipped.pop(dst, None)
        return UpdatePayload(distances=distances, removals=(), full=True)

    def _record_metrics(self, result: LocalTraceResult) -> None:
        metrics = self.metrics
        metrics.incr("gc.local_traces")
        metrics.incr("gc.traces_full")
        if result.clean_phase is not None:
            metrics.incr("gc.clean_objects_scanned", result.clean_phase.objects_scanned)
            metrics.incr("gc.objects_scanned", result.clean_phase.objects_scanned)
        if result.backinfo is not None:
            metrics.incr("gc.suspected_objects_scanned", result.backinfo.objects_scanned)
            metrics.incr("gc.objects_scanned", result.backinfo.objects_scanned)
            metrics.incr("backinfo.unions_computed", result.backinfo.unions_computed)
            metrics.incr("backinfo.union_memo_hits", result.backinfo.union_memo_hits)
            metrics.observe("backinfo.distinct_outsets", result.backinfo.distinct_outsets)
        inset_units = sum(len(inset) for inset in result.insets.values())
        metrics.observe("backinfo.inset_storage_units", inset_units)

    # -- commit --------------------------------------------------------------------

    def commit(
        self,
        result: LocalTraceResult,
        replay_barrier_inrefs: Iterable[ObjectId] = (),
    ) -> List[ObjectId]:
        """Install the trace outcome: rewrite tables and sweep the heap.

        ``replay_barrier_inrefs`` are inrefs the transfer barrier cleaned
        while this trace was computing (section 6.2): their barrier-clean
        status and that of the outrefs in their *new* outsets is re-applied
        on the new tables.  Returns the list of swept object ids.
        """
        # Anything (messages, barriers) that slipped in between compute and
        # commit -- only possible for non-atomic traces -- makes the computed
        # result unsafe to cache: the next tick must retrace.
        interleaved = self._current_epochs() != self._epochs_at_compute
        # Rewrite outref entries.
        for target in result.removals:
            entry = self.outrefs.get(target)
            if entry is None:
                continue
            if entry.pin_count > 0:
                # Pinned since computation started: retain (insert barrier).
                continue
            self.outrefs.remove(target)
        for target, (clean, distance) in result.outref_states.items():
            entry = self.outrefs.get(target)
            if entry is None:
                # Trimmed concurrently is impossible (we are the only
                # remover); but a brand-new entry may exist -- ensure() it.
                entry = self.outrefs.ensure(target, clean=clean, distance=distance)
            entry.apply_trace_state(
                clean=clean,
                distance=distance,
                inset=result.insets.get(target, frozenset()),
            )
            entry.barrier_clean = False
            entry.reached_by_last_trace = True
        # Entries created after the snapshot (insert protocol) keep their
        # clean birth state; nothing to do for them.

        # Refresh per-inref outsets (the dual view the transfer barrier uses).
        for entry in self.inrefs.entries():
            entry.outset = result.outsets.get(entry.target, frozenset())

        # Inref barrier flags expire with this trace...
        self.inrefs.reset_barrier_cleans()
        # ...except those that must be replayed onto the new copy.
        for inref_target in replay_barrier_inrefs:
            entry = self.inrefs.get(inref_target)
            if entry is not None:
                entry.barrier_clean = True
            for outref_target in result.outsets.get(inref_target, frozenset()):
                out_entry = self.outrefs.get(outref_target)
                if out_entry is not None:
                    out_entry.barrier_clean = True

        # Sweep the heap: only objects that existed when the trace computed
        # may die; objects allocated during a non-atomic trace window were
        # born reachable and survive unconditionally.
        live = result.live_objects
        dead = result.snapshot_objects - live
        swept = self.heap.sweep_ids(dead)
        result.swept = swept
        self.metrics.incr("gc.objects_swept", len(swept))

        # Build outgoing updates from the committed table state.
        self._build_updates(result)
        self.traces_run += 1
        if result.mode == "full":
            self._ticks_since_full = 0
        if self.config.incremental_traces and not interleaved:
            threshold = self.inrefs.suspicion_threshold
            self._cached = _TraceCache(
                result=result,
                epochs=self._current_epochs(),
                variable_outrefs=result.variable_outrefs,
                inref_distances={
                    entry.target: entry.distance for entry in self.inrefs.entries()
                },
                inref_clean={
                    entry.target: entry.is_clean(threshold)
                    for entry in self.inrefs.entries()
                },
            )
        else:
            self._cached = None
        return swept

    def run(
        self,
        variable_outrefs: Iterable[ObjectId] = (),
        replay_barrier_inrefs: Iterable[ObjectId] = (),
    ) -> LocalTraceResult:
        """Atomic convenience wrapper: compute then commit immediately."""
        result = self.compute(variable_outrefs=variable_outrefs)
        self.commit(result, replay_barrier_inrefs=replay_barrier_inrefs)
        return result
