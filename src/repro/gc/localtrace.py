"""The per-site local trace (sections 2, 3, 5, 6.2).

One local trace performs, in order:

1. **Clean phase** (:mod:`repro.core.distance`): trace from persistent roots,
   application-variable roots, and clean inrefs in increasing distance order,
   marking clean objects and computing clean-outref distances.
2. **Suspected phase** (:mod:`repro.core.backinfo`): trace the remaining
   suspected region from suspected inrefs, computing their outsets (and thus
   the insets of suspected outrefs) for future back traces.
3. **Outref reconciliation**: refresh distances and clean/suspected states;
   trim outrefs reached by neither phase (unless pinned by the insert
   barrier or held in a mutator variable) and build per-target-site update
   messages carrying removals and distance changes.
4. **Sweep**: delete local objects reached by neither phase.  Inrefs flagged
   garbage by a back trace are not roots, so confirmed cycles die here; their
   table entries persist until update messages empty their source lists.

To model the non-atomic traces of section 6.2, computation (steps 1-3 deciding
everything) is separated from **commit** (installing new tables and sweeping).
The site keeps serving back traces from the old tables between the two, and
replays transfer barriers that arrived in the window onto the new tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..config import GcConfig
from ..core.backinfo import (
    BackInfoResult,
    TraceEnvironment,
    compute_outsets_bottom_up,
    compute_outsets_independent,
    invert_outsets,
)
from ..core.distance import CleanPhaseResult, trace_clean_phase
from ..ids import ObjectId, SiteId
from ..metrics import MetricsRecorder
from ..store.heap import Heap
from .inrefs import InrefTable
from .outrefs import OutrefTable
from .update import UpdatePayload


@dataclass
class LocalTraceResult:
    """Everything one local trace decided, ready to be committed."""

    # "full" or "fast" (distance-only reconciliation reusing the cached
    # reachability sets); skipped ticks never produce a result at all.
    mode: str = "full"
    # True when this full trace was forced by the incremental safety net
    # (``full_trace_every_n``); it then also sends a full update refresh.
    forced_full: bool = False
    # The variable-held outrefs the trace was computed against (cache key).
    variable_outrefs: FrozenSet[ObjectId] = frozenset()
    clean_objects: Set[ObjectId] = field(default_factory=set)
    suspected_objects: Set[ObjectId] = field(default_factory=set)
    outsets: Dict[ObjectId, FrozenSet[ObjectId]] = field(default_factory=dict)
    insets: Dict[ObjectId, FrozenSet[ObjectId]] = field(default_factory=dict)
    # outref target -> (is_clean, distance); targets absent here and in
    # ``kept_pinned`` are trimmed.
    outref_states: Dict[ObjectId, Tuple[bool, int]] = field(default_factory=dict)
    kept_pinned: Set[ObjectId] = field(default_factory=set)
    removals: List[ObjectId] = field(default_factory=list)
    snapshot_outrefs: Set[ObjectId] = field(default_factory=set)
    snapshot_objects: Set[ObjectId] = field(default_factory=set)
    swept: List[ObjectId] = field(default_factory=list)
    updates_by_site: Dict[SiteId, UpdatePayload] = field(default_factory=dict)
    backinfo: Optional[BackInfoResult] = None
    clean_phase: Optional[CleanPhaseResult] = None

    @property
    def live_objects(self) -> Set[ObjectId]:
        return self.clean_objects | self.suspected_objects


@dataclass
class _TraceCache:
    """The last committed trace plus the state it was committed against.

    ``epochs`` is (heap mutation, inref structure, inref distance, outref
    mutation) captured at the end of commit; ``inref_distances`` and
    ``inref_clean`` record each inref's distance and classification so a
    distance-epoch bump can be vetted entry by entry.
    """

    result: LocalTraceResult
    epochs: Tuple[int, int, int, int]
    variable_outrefs: FrozenSet[ObjectId]
    inref_distances: Dict[ObjectId, int]
    inref_clean: Dict[ObjectId, bool]


class LocalCollector:
    """Runs local traces for one site."""

    def __init__(
        self,
        heap: Heap,
        inrefs: InrefTable,
        outrefs: OutrefTable,
        config: GcConfig,
        metrics: Optional[MetricsRecorder] = None,
    ):
        self.heap = heap
        self.inrefs = inrefs
        self.outrefs = outrefs
        self.config = config
        self.metrics = metrics or MetricsRecorder()
        self._last_reported_distance: Dict[Tuple[SiteId, ObjectId], int] = {}
        self.traces_run = 0
        # Incremental-trace state (the mutation-epoch / dirty-tracking layer).
        self._cached: Optional[_TraceCache] = None
        self._ticks_since_full = 0
        self._periodic_full_due = False
        self._epochs_at_compute: Optional[Tuple[int, int, int, int]] = None

    # -- incremental planning ----------------------------------------------------

    def _current_epochs(self) -> Tuple[int, int, int, int]:
        return (
            self.heap.mutation_epoch,
            self.inrefs.structure_epoch,
            self.inrefs.distance_epoch,
            self.outrefs.mutation_epoch,
        )

    def plan_trace(self, variable_outrefs: Iterable[ObjectId] = ()) -> str:
        """Decide how the next gc tick should resolve: skip, fast, or full.

        - ``"skip"``: nothing relevant changed since the cached committed
          trace; retracing would recompute identical tables and (thanks to
          the ``_last_reported_distance`` dedup) send no new updates.
        - ``"fast"``: only distances of suspected inrefs moved, and no inref
          crossed the suspicion threshold; reachability, outsets and insets
          are unchanged, so only suspected outref distances need
          reconciliation (no heap scan).
        - ``"full"``: anything else -- heap or table structure changed, a
          clean inref's distance moved (the clean-phase Dijkstra depends on
          it), a classification flipped, or the periodic safety net is due.
        """
        self._ticks_since_full += 1
        cache = self._cached
        if not self.config.incremental_traces or cache is None:
            return "full"
        if self._ticks_since_full > self.config.full_trace_every_n:
            self._periodic_full_due = True
            return "full"
        now = self._current_epochs()
        if (now[0], now[1], now[3]) != (cache.epochs[0], cache.epochs[1], cache.epochs[3]):
            return "full"
        if frozenset(variable_outrefs) != cache.variable_outrefs:
            return "full"
        if now[2] == cache.epochs[2]:
            return "skip"
        # Distance epoch moved: vet each entry.  The structure epoch being
        # unchanged guarantees the entry *set* matches the cache.
        threshold = self.inrefs.suspicion_threshold
        any_changed = False
        for entry in self.inrefs.entries():
            clean_now = entry.is_clean(threshold)
            if clean_now != cache.inref_clean.get(entry.target):
                return "full"
            if entry.distance != cache.inref_distances.get(entry.target):
                if clean_now:
                    return "full"
                any_changed = True
        if not any_changed:
            # Source-list churn that left every min-distance alone (e.g. a
            # redundant insert): the cached result still holds verbatim.
            self._cached = _TraceCache(
                result=cache.result,
                epochs=now,
                variable_outrefs=cache.variable_outrefs,
                inref_distances=cache.inref_distances,
                inref_clean=cache.inref_clean,
            )
            return "skip"
        return "fast"

    def record_skip(self) -> None:
        """Book-keeping for a tick resolved without any trace."""
        self.metrics.incr("gc.traces_skipped")

    # -- computation ------------------------------------------------------------

    def compute(
        self, variable_outrefs: Iterable[ObjectId] = (), mode: str = "full"
    ) -> LocalTraceResult:
        """Decide the outcome of a local trace without changing any state."""
        self._epochs_at_compute = self._current_epochs()
        if mode == "fast":
            return self._compute_fast(variable_outrefs)
        result = LocalTraceResult()
        result.forced_full = self._periodic_full_due
        result.variable_outrefs = frozenset(variable_outrefs)
        self._periodic_full_due = False
        result.snapshot_outrefs = set(self.outrefs.targets())
        result.snapshot_objects = set(self.heap.object_ids())
        # Read the (possibly tuner-adjusted) live threshold off the table,
        # not the static config (see repro.core.tuning).
        threshold = self.inrefs.suspicion_threshold

        # Phase 1: clean trace.  Persistent and variable roots at distance 0;
        # clean inrefs at their estimated distances.
        roots: List[Tuple[ObjectId, int]] = [
            (oid, 0) for oid in sorted(self.heap.persistent_roots)
        ]
        roots.extend((oid, 0) for oid in sorted(self.heap.variable_roots))
        suspected_targets: List[ObjectId] = []
        for entry in self.inrefs.entries_by_distance():
            if entry.garbage:
                continue
            if entry.is_clean(threshold):
                roots.append((entry.target, entry.distance))
            else:
                suspected_targets.append(entry.target)
        clean_phase = trace_clean_phase(
            self.heap, roots, variable_outrefs=variable_outrefs
        )
        result.clean_phase = clean_phase
        result.clean_objects = clean_phase.clean_objects

        # Phase 2: suspected trace computing outsets/insets.
        clean_outrefs = set(clean_phase.outref_distances)
        pinned = {
            entry.target for entry in self.outrefs.entries() if entry.pin_count > 0
        }

        def is_clean_outref(target: ObjectId) -> bool:
            return target in clean_outrefs or target in pinned

        env = TraceEnvironment(
            heap=self.heap,
            clean_objects=result.clean_objects,
            is_clean_outref=is_clean_outref,
        )
        if self.config.backinfo_algorithm == "independent":
            backinfo = compute_outsets_independent(env, suspected_targets)
        else:
            backinfo = compute_outsets_bottom_up(env, suspected_targets)
        result.backinfo = backinfo
        result.suspected_objects = backinfo.visited_objects
        result.outsets = backinfo.outsets
        result.insets = invert_outsets(backinfo.outsets)

        # Phase 3: reconcile outrefs.
        inref_distance = {
            entry.target: entry.distance for entry in self.inrefs.entries()
        }
        for target, distance in clean_phase.outref_distances.items():
            result.outref_states[target] = (True, distance)
        for target, inset in result.insets.items():
            distances = [inref_distance.get(i, 0) for i in inset]
            distance = 1 + (min(distances) if distances else 0)
            result.outref_states[target] = (False, distance)
        result.kept_pinned = pinned - set(result.outref_states)
        for target in result.snapshot_outrefs:
            if target not in result.outref_states and target not in result.kept_pinned:
                result.removals.append(target)

        self._record_metrics(result)
        return result

    def _compute_fast(self, variable_outrefs: Iterable[ObjectId]) -> LocalTraceResult:
        """Distance-only reconciliation against the cached committed trace.

        Valid only when :meth:`plan_trace` returned ``"fast"``: the heap, the
        table structures, the classifications, and all *clean* inref
        distances are unchanged, so reachability (clean/suspected sets),
        outsets, insets, and clean-outref distances can be reused verbatim.
        Only suspected outref distances -- ``1 + min`` over their insets'
        inref distances, exactly phase 3 of the full trace -- are recomputed.
        No object is scanned.
        """
        cache = self._cached
        assert cache is not None, "fast trace without a cached result"
        prev = cache.result
        result = LocalTraceResult(mode="fast")
        result.variable_outrefs = frozenset(variable_outrefs)
        result.snapshot_outrefs = set(self.outrefs.targets())
        result.snapshot_objects = set(self.heap.object_ids())
        result.clean_objects = set(prev.clean_objects)
        result.suspected_objects = set(prev.suspected_objects)
        result.outsets = dict(prev.outsets)
        result.insets = dict(prev.insets)
        result.clean_phase = prev.clean_phase
        result.backinfo = prev.backinfo
        for target, (clean, distance) in prev.outref_states.items():
            if clean:
                result.outref_states[target] = (True, distance)
        inref_distance = {
            entry.target: entry.distance for entry in self.inrefs.entries()
        }
        for target, inset in result.insets.items():
            distances = [inref_distance.get(i, 0) for i in inset]
            distance = 1 + (min(distances) if distances else 0)
            result.outref_states[target] = (False, distance)
        pinned = {
            entry.target for entry in self.outrefs.entries() if entry.pin_count > 0
        }
        result.kept_pinned = pinned - set(result.outref_states)
        for target in result.snapshot_outrefs:
            if target not in result.outref_states and target not in result.kept_pinned:
                result.removals.append(target)
        self.metrics.incr("gc.local_traces")
        self.metrics.incr("gc.traces_fast_path")
        return result

    def _build_updates(self, result: LocalTraceResult) -> None:
        """Batch removals and distance changes per target site.

        Runs at *commit* time, against the reconciled outref table, so that a
        full update's "complete list" semantics cannot miss entries created
        while a non-atomic trace was computing.  Normally only changed
        distances are sent (the paper's optimization); every
        ``full_update_period``-th trace sends the full list, which
        resynchronizes targets that missed earlier messages -- updates are
        idempotent, so duplicates are harmless.
        """
        full_refresh = (
            self.traces_run % self.config.full_update_period == 0
            or result.forced_full
        )
        distances_by_site: Dict[SiteId, List[Tuple[ObjectId, int]]] = {}
        removals_by_site: Dict[SiteId, List[ObjectId]] = {}
        entries = sorted(self.outrefs.entries(), key=lambda entry: entry.target)
        for entry in entries:
            target = entry.target
            key = (target.site, target)
            if full_refresh or self._last_reported_distance.get(key) != entry.distance:
                distances_by_site.setdefault(target.site, []).append(
                    (target, entry.distance)
                )
                self._last_reported_distance[key] = entry.distance
        for target in sorted(result.removals):
            if target not in self.outrefs:  # actually removed (not pinned)
                removals_by_site.setdefault(target.site, []).append(target)
        sites = set(distances_by_site) | set(removals_by_site)
        if full_refresh:
            # A site that holds *no* outrefs toward a previous target would
            # normally go silent; explicit removals already cover the known
            # cases, so nothing extra is required here.
            pass
        for site in sorted(sites):
            result.updates_by_site[site] = UpdatePayload(
                distances=tuple(distances_by_site.get(site, ())),
                removals=tuple(removals_by_site.get(site, ())),
                full=full_refresh,
            )

    def _record_metrics(self, result: LocalTraceResult) -> None:
        metrics = self.metrics
        metrics.incr("gc.local_traces")
        metrics.incr("gc.traces_full")
        if result.clean_phase is not None:
            metrics.incr("gc.clean_objects_scanned", result.clean_phase.objects_scanned)
            metrics.incr("gc.objects_scanned", result.clean_phase.objects_scanned)
        if result.backinfo is not None:
            metrics.incr("gc.suspected_objects_scanned", result.backinfo.objects_scanned)
            metrics.incr("gc.objects_scanned", result.backinfo.objects_scanned)
            metrics.incr("backinfo.unions_computed", result.backinfo.unions_computed)
            metrics.incr("backinfo.union_memo_hits", result.backinfo.union_memo_hits)
            metrics.observe("backinfo.distinct_outsets", result.backinfo.distinct_outsets)
        inset_units = sum(len(inset) for inset in result.insets.values())
        metrics.observe("backinfo.inset_storage_units", inset_units)

    # -- commit --------------------------------------------------------------------

    def commit(
        self,
        result: LocalTraceResult,
        replay_barrier_inrefs: Iterable[ObjectId] = (),
    ) -> List[ObjectId]:
        """Install the trace outcome: rewrite tables and sweep the heap.

        ``replay_barrier_inrefs`` are inrefs the transfer barrier cleaned
        while this trace was computing (section 6.2): their barrier-clean
        status and that of the outrefs in their *new* outsets is re-applied
        on the new tables.  Returns the list of swept object ids.
        """
        # Anything (messages, barriers) that slipped in between compute and
        # commit -- only possible for non-atomic traces -- makes the computed
        # result unsafe to cache: the next tick must retrace.
        interleaved = self._current_epochs() != self._epochs_at_compute
        # Rewrite outref entries.
        for target in result.removals:
            entry = self.outrefs.get(target)
            if entry is None:
                continue
            if entry.pin_count > 0:
                # Pinned since computation started: retain (insert barrier).
                continue
            self.outrefs.remove(target)
            self._last_reported_distance.pop((target.site, target), None)
        for target, (clean, distance) in result.outref_states.items():
            entry = self.outrefs.get(target)
            if entry is None:
                # Trimmed concurrently is impossible (we are the only
                # remover); but a brand-new entry may exist -- ensure() it.
                entry = self.outrefs.ensure(target, clean=clean, distance=distance)
            entry.apply_trace_state(
                clean=clean,
                distance=distance,
                inset=result.insets.get(target, frozenset()),
            )
            entry.barrier_clean = False
            entry.reached_by_last_trace = True
        # Entries created after the snapshot (insert protocol) keep their
        # clean birth state; nothing to do for them.

        # Refresh per-inref outsets (the dual view the transfer barrier uses).
        for entry in self.inrefs.entries():
            entry.outset = result.outsets.get(entry.target, frozenset())

        # Inref barrier flags expire with this trace...
        self.inrefs.reset_barrier_cleans()
        # ...except those that must be replayed onto the new copy.
        for inref_target in replay_barrier_inrefs:
            entry = self.inrefs.get(inref_target)
            if entry is not None:
                entry.barrier_clean = True
            for outref_target in result.outsets.get(inref_target, frozenset()):
                out_entry = self.outrefs.get(outref_target)
                if out_entry is not None:
                    out_entry.barrier_clean = True

        # Sweep the heap: only objects that existed when the trace computed
        # may die; objects allocated during a non-atomic trace window were
        # born reachable and survive unconditionally.
        live = result.live_objects
        dead = result.snapshot_objects - live
        swept = self.heap.sweep_ids(dead)
        result.swept = swept
        self.metrics.incr("gc.objects_swept", len(swept))

        # Build outgoing updates from the committed table state.
        self._build_updates(result)
        self.traces_run += 1
        if result.mode == "full":
            self._ticks_since_full = 0
        if self.config.incremental_traces and not interleaved:
            threshold = self.inrefs.suspicion_threshold
            self._cached = _TraceCache(
                result=result,
                epochs=self._current_epochs(),
                variable_outrefs=result.variable_outrefs,
                inref_distances={
                    entry.target: entry.distance for entry in self.inrefs.entries()
                },
                inref_clean={
                    entry.target: entry.is_clean(threshold)
                    for entry in self.inrefs.entries()
                },
            )
        else:
            self._cached = None
        return swept

    def run(
        self,
        variable_outrefs: Iterable[ObjectId] = (),
        replay_barrier_inrefs: Iterable[ObjectId] = (),
    ) -> LocalTraceResult:
        """Atomic convenience wrapper: compute then commit immediately."""
        result = self.compute(variable_outrefs=variable_outrefs)
        self.commit(result, replay_barrier_inrefs=replay_barrier_inrefs)
        return result
