"""Update messages (sections 2 and 3).

After a local trace, a site reports to each target site:

- **removals**: outrefs the trace no longer reached (the target removes this
  site from the source list of the matching inref; an inref whose source list
  empties is deleted, which is how acyclic distributed garbage dies);
- **distances**: new distance estimates for surviving outrefs (the target
  folds them into the per-source distance of the matching inref, driving the
  distance heuristic forward).

Normally only *changed* distances are sent (the paper's optimization).  Every
``full_update_period``-th trace a site instead sends a **full** update: the
complete list of outrefs it holds toward the target.  Full updates are
idempotent state transfers in the spirit of the fault-tolerant reference
listing of [ML94]: they resynchronize a target that missed earlier messages
(crash, partition, drop) without acknowledgement machinery.  On receiving a
full update the target also prunes this source from any inref *not* listed --
which is safe because the sender builds the list from its committed table at
send time, and per-pair FIFO delivery means no insert from the same sender
can be outstanding behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..ids import ObjectId, SiteId
from ..net.message import Payload
from .inrefs import InrefTable


@dataclass(frozen=True, slots=True)
class UpdatePayload(Payload):
    """One post-trace update batch to a single target site.

    ``seq`` is the at-least-once channel sequence number stamped by the
    sending site (``GcConfig.reliable_updates``): contiguous per
    (sender, target) pair, acknowledged with :class:`UpdateAck`, and used by
    the receiver to suppress duplicate deliveries.  ``-1`` marks a payload
    outside the reliable channel (direct construction, reliability off).
    """

    distances: Tuple[Tuple[ObjectId, int], ...] = ()
    removals: Tuple[ObjectId, ...] = ()
    full: bool = False
    seq: int = -1

    def size_units(self) -> int:
        return max(1, len(self.distances) + len(self.removals))


@dataclass(frozen=True, slots=True)
class UpdateDeltaPayload(Payload):
    """Only what changed since the previous update to this target site.

    ``GcConfig.delta_updates``: instead of re-listing distances for every
    surviving outref, the sender diffs its committed outref table against
    the per-destination *shipped* state (what the last update chain said)
    and transmits ``adds`` (outrefs the peer has not been told distances
    for), ``distances`` (changed estimates), and ``removals``.  Deltas only
    make sense applied **in order on top of the state they were diffed
    against**, so they require the reliable update channel: ``seq`` numbers
    are contiguous with the full updates on the same (sender, dst) pair and
    the receiver applies a delta only when ``seq`` is exactly one past its
    anchor (the last in-order update).  Anything else is a *gap*: the
    receiver discards the delta, requests a state transfer with
    :class:`UpdateRefreshRequest`, and stays un-anchored (rejecting further
    deltas) until a full :class:`UpdatePayload` re-anchors it.

    ``full`` mirrors :class:`UpdatePayload` so the channel layer can treat
    both uniformly; a delta is never a full state transfer.
    """

    adds: Tuple[Tuple[ObjectId, int], ...] = ()
    distances: Tuple[Tuple[ObjectId, int], ...] = ()
    removals: Tuple[ObjectId, ...] = ()
    seq: int = -1

    full = False  # class attribute: deltas never carry full-refresh semantics

    def size_units(self) -> int:
        return max(1, len(self.adds) + len(self.distances) + len(self.removals))


@dataclass(frozen=True, slots=True)
class UpdateRefreshRequest(Payload):
    """Receiver -> sender: 'my update state desynced; send a full update'.

    Sent on every gap-rejected delta.  Not itself acknowledged or
    retransmitted: a lost request is repaired by the next rejected delta,
    by the sender's own retransmission ladder (the gapped sequence was never
    acked), or at the latest by the periodic full refresh.
    """


@dataclass(frozen=True, slots=True)
class UpdateAck(Payload):
    """Receiver -> sender: update ``seq`` arrived (possibly as a duplicate).

    Acks are per-sequence, not cumulative: under FIFO a higher ack does not
    prove a lower sequence arrived (the lower one may have been dropped), so
    each outstanding sequence is confirmed individually.  Acks are never
    themselves retransmitted -- a lost ack just means one spurious
    retransmission, which the receiver's dedup window absorbs (and re-acks).
    """

    seq: int


def apply_update_delta(
    inrefs: InrefTable, source: SiteId, payload: UpdateDeltaPayload
) -> bool:
    """Apply one in-order delta at the target site.

    The caller (the site's gap check) guarantees ordering; application
    itself is the non-full half of :func:`apply_update`: adds and changed
    distances both fold into the per-source distance of the matching inref
    (an "add" the receiver has no source entry for is stale news about a
    reference already dropped -- ignored, exactly like a distance for an
    unknown source), removals empty source lists.  No prune: a delta never
    claims to be the complete list.
    """
    changed = False
    for target, distance in payload.adds:
        entry = inrefs.get(target)
        if entry is None or source not in entry.sources:
            continue
        if entry.sources[source] != distance:
            entry.set_source_distance(source, distance)
            changed = True
    for target, distance in payload.distances:
        entry = inrefs.get(target)
        if entry is None or source not in entry.sources:
            continue
        if entry.sources[source] != distance:
            entry.set_source_distance(source, distance)
            changed = True
    for target in payload.removals:
        entry = inrefs.get(target)
        if entry is not None and source in entry.sources:
            inrefs.remove_source(target, source)
            changed = True
    return changed


def apply_update(inrefs: InrefTable, source: SiteId, payload: UpdatePayload) -> bool:
    """Apply an update message at the target site.

    Returns True if any inref distance changed or any source was removed,
    which tells the caller whether suspicion states may have shifted.
    """
    changed = False
    for target, distance in payload.distances:
        entry = inrefs.get(target)
        if entry is None or source not in entry.sources:
            continue
        if entry.sources[source] != distance:
            entry.set_source_distance(source, distance)
            changed = True
    for target in payload.removals:
        entry = inrefs.get(target)
        if entry is not None and source in entry.sources:
            inrefs.remove_source(target, source)
            changed = True
    if payload.full:
        listed = {target for target, _ in payload.distances}
        listed.update(payload.removals)
        # The per-source index makes this prune proportional to the inrefs
        # actually sourced from the sender, not the whole table.
        for target in inrefs.targets_from_source(source):
            if target in listed:
                continue
            entry = inrefs.get(target)
            if entry is not None and source in entry.sources:
                inrefs.remove_source(target, source)
                changed = True
    return changed
