"""The safe insert protocol with the insert barrier (sections 2 and 6.1.2).

When site X sends a reference z (owned by site Z) to site Y:

1. X **pins** its outref for z -- the insert barrier: the outref stays clean
   and cannot be trimmed until Z is known to have the insert.  (If X owns z,
   X instead registers Y in z's inref source list directly; no pin needed.)
2. Y, on receipt, follows the remote-copy cases of section 6.1.2:
   - z owned by Y: apply the transfer barrier to inref z, release X's pin;
   - Y already has an outref for z: clean it if suspected, release X's pin;
   - otherwise: create a clean outref and send an :class:`InsertRequest`
     to Z.
3. Z, on :class:`InsertRequest`, adds Y to inref z's source list (distance 1,
   the conservative new-source estimate), applies the transfer barrier to
   inref z, and notifies X with :class:`InsertDone` so X releases its pin.

Message loss is safe: an unreleased pin only keeps one outref alive longer
than necessary (storage leak, never incorrect collection), matching the
paper's "a safe insert protocol exists" assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ids import ObjectId, SiteId
from ..net.message import Payload


@dataclass(frozen=True, slots=True)
class InsertRequest(Payload):
    """Y -> Z: 'I now hold a reference to your object ``target``'.

    ``pin_holder`` is the site X whose outref is pinned awaiting this insert;
    Z releases it with :class:`InsertDone`.  ``None`` means no pin is
    outstanding (e.g. the reference arrived from the owner itself).

    ``release_owner_custody`` marks inserts whose in-flight custody is a pin
    taken *at the owner* (a mutator materialized a variable-held reference at
    a new site -- section 6.3); processing the insert creates the inref that
    roots the object, so the owner releases one custody pin.
    """

    target: ObjectId
    pin_holder: Optional[SiteId] = None
    release_owner_custody: bool = False
    #: Per-(sender, receiver) mutation-protocol sequence number (stamped by
    #: Site.send; -1 = unstamped).  A duplicate delivery of an insert is NOT
    #: idempotent by itself -- it would re-run the transfer barrier and,
    #: worse, release a pin twice -- so receivers suppress replays by seq.
    seq: int = -1


@dataclass(frozen=True, slots=True)
class InsertDone(Payload):
    """Z -> X: the owner has recorded the insert; X may release its pin."""

    target: ObjectId
    seq: int = -1


@dataclass(frozen=True, slots=True)
class UnpinRequest(Payload):
    """Y -> X: no insert was needed (cases 1-3); X may release its pin."""

    target: ObjectId
    seq: int = -1
