"""Local-tracing garbage collection substrate.

This package implements the baseline machinery of section 2 of the paper:
per-site mark-sweep tracing (:mod:`.localtrace`), inter-site reference
listing via inref/outref tables (:mod:`.inrefs`, :mod:`.outrefs`), the safe
insert protocol with the insert barrier (:mod:`.insert`), and post-trace
update messages (:mod:`.update`).

On its own this substrate collects all acyclic distributed garbage with the
locality property, and fails to collect inter-site cycles -- exactly the gap
the core back-tracing collector (:mod:`repro.core`) fills.
"""

from .inrefs import INFINITE_DISTANCE, InrefEntry, InrefTable
from .outrefs import OutrefEntry, OutrefTable

__all__ = [
    "INFINITE_DISTANCE",
    "InrefEntry",
    "InrefTable",
    "OutrefEntry",
    "OutrefTable",
]
