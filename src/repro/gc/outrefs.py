"""Outref table: outgoing inter-site references.

Each entry records one remote reference held somewhere in this site's heap.
The local trace refreshes outref distances (one more than the distance of the
first inref/root that reaches them) and trims entries no longer reachable,
reporting removals and distance changes to target sites in update messages.

For *suspected* outrefs the table also stores the **inset** -- the set of
suspected inrefs the outref is locally reachable from (section 4.1) -- which
back traces consume when taking local steps.  Insets are computed by
:mod:`repro.core.backinfo` during the local trace.

Cleanliness: an outref is clean when the last local trace reached it from a
clean root/inref, when the transfer barrier cleaned it since then, or while
the insert barrier pins it (section 6.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from ..errors import GcInvariantError
from ..ids import ObjectId, SiteId, TraceId


@dataclass
class OutrefEntry:
    """One outgoing reference: a remote object id plus collector state."""

    target: ObjectId
    distance: int = 1
    traced_clean: bool = True
    barrier_clean: bool = False
    pin_count: int = 0
    inset: FrozenSet[ObjectId] = frozenset()
    visited: Set[TraceId] = field(default_factory=set)
    back_threshold: int = 0
    reached_by_last_trace: bool = True

    @property
    def is_clean(self) -> bool:
        """Clean outrefs stop back traces with a Live verdict."""
        return self.traced_clean or self.barrier_clean or self.pin_count > 0

    @property
    def is_suspected(self) -> bool:
        return not self.is_clean

    def pin(self) -> None:
        """Insert barrier: retain this outref, clean, until the owner has
        received the insert message (section 6.1.2)."""
        self.pin_count += 1

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise GcInvariantError(f"unbalanced unpin on outref {self.target}")
        self.pin_count -= 1


class OutrefTable:
    """All outrefs of one site, keyed by the remote object id."""

    def __init__(self, site_id: SiteId, initial_back_threshold: int):
        self.site_id = site_id
        self.initial_back_threshold = initial_back_threshold
        self._entries: Dict[ObjectId, OutrefEntry] = {}

    # -- basic access -----------------------------------------------------------

    def get(self, target: ObjectId) -> Optional[OutrefEntry]:
        return self._entries.get(target)

    def require(self, target: ObjectId) -> OutrefEntry:
        entry = self._entries.get(target)
        if entry is None:
            raise GcInvariantError(f"site {self.site_id} has no outref for {target}")
        return entry

    def __contains__(self, target: ObjectId) -> bool:
        return target in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[OutrefEntry]:
        return iter(self._entries.values())

    def targets(self) -> List[ObjectId]:
        return list(self._entries)

    # -- mutation -----------------------------------------------------------------

    def ensure(self, target: ObjectId, clean: bool = True, distance: int = 1) -> OutrefEntry:
        """Get-or-create the entry for a remote reference."""
        if target.site == self.site_id:
            raise GcInvariantError(
                f"outref target {target} is local to site {self.site_id}"
            )
        entry = self._entries.get(target)
        if entry is None:
            entry = OutrefEntry(
                target=target,
                distance=distance,
                traced_clean=clean,
                back_threshold=self.initial_back_threshold,
            )
            self._entries[target] = entry
        return entry

    def remove(self, target: ObjectId) -> None:
        self._entries.pop(target, None)

    # -- views ---------------------------------------------------------------------

    def suspected_entries(self) -> List[OutrefEntry]:
        return [entry for entry in self._entries.values() if entry.is_suspected]

    def clean_entries(self) -> List[OutrefEntry]:
        return [entry for entry in self._entries.values() if entry.is_clean]

    def is_clean(self, target: ObjectId) -> bool:
        entry = self._entries.get(target)
        return entry is not None and entry.is_clean

    def inset_storage_units(self) -> int:
        """Total inset cardinality: the O(n_i * n_o) space of section 5.2."""
        return sum(len(entry.inset) for entry in self._entries.values())
