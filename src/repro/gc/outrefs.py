"""Outref table: outgoing inter-site references.

Each entry records one remote reference held somewhere in this site's heap.
The local trace refreshes outref distances (one more than the distance of the
first inref/root that reaches them) and trims entries no longer reachable,
reporting removals and distance changes to target sites in update messages.

For *suspected* outrefs the table also stores the **inset** -- the set of
suspected inrefs the outref is locally reachable from (section 4.1) -- which
back traces consume when taking local steps.  Insets are computed by
:mod:`repro.core.backinfo` during the local trace.

Cleanliness: an outref is clean when the last local trace reached it from a
clean root/inref, when the transfer barrier cleaned it since then, or while
the insert barrier pins it (section 6.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set

from ..errors import GcInvariantError
from ..ids import ObjectId, SiteId, TraceId


@dataclass
class OutrefEntry:
    """One outgoing reference: a remote object id plus collector state.

    ``barrier_clean`` is a property and pin/unpin notify the owning table, so
    every semantically relevant change bumps the table's mutation epoch for
    the incremental local trace.  ``traced_clean``/``distance``/``inset`` are
    written only by the local trace commit itself and stay plain fields.
    """

    target: ObjectId
    distance: int = 1
    traced_clean: bool = True
    pin_count: int = 0
    inset: FrozenSet[ObjectId] = frozenset()
    visited: Set[TraceId] = field(default_factory=set)
    back_threshold: int = 0
    reached_by_last_trace: bool = True
    # Per-entry mutation epoch for the back-trace verdict cache; fed from the
    # owning table's monotonic counter so recreated entries never alias (see
    # InrefEntry.epoch for the full rationale).
    epoch: int = 0
    _barrier_clean: bool = field(default=False, repr=False)
    _on_change: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )
    _next_epoch: Optional[Callable[[], int]] = field(
        default=None, repr=False, compare=False
    )

    def _changed(self) -> None:
        if self._next_epoch is not None:
            self.epoch = self._next_epoch()
        else:
            self.epoch += 1
        if self._on_change is not None:
            self._on_change()

    def apply_trace_state(
        self, clean: bool, distance: int, inset: FrozenSet[ObjectId]
    ) -> None:
        """Install a local trace's verdict for this outref (commit phase).

        Bumps the entry epoch only when a value actually changes, so a
        quiescent site's periodic full traces leave cached back-trace
        verdicts valid.
        """
        if (
            clean == self.traced_clean
            and distance == self.distance
            and inset == self.inset
        ):
            return
        self.traced_clean = clean
        self.distance = distance
        self.inset = inset
        self._changed()

    @property
    def barrier_clean(self) -> bool:
        return self._barrier_clean

    @barrier_clean.setter
    def barrier_clean(self, value: bool) -> None:
        if value != self._barrier_clean:
            self._barrier_clean = value
            self._changed()

    @property
    def is_clean(self) -> bool:
        """Clean outrefs stop back traces with a Live verdict."""
        return self.traced_clean or self.barrier_clean or self.pin_count > 0

    @property
    def is_suspected(self) -> bool:
        return not self.is_clean

    def pin(self) -> None:
        """Insert barrier: retain this outref, clean, until the owner has
        received the insert message (section 6.1.2)."""
        self.pin_count += 1
        self._changed()

    def unpin(self) -> None:
        if self.pin_count <= 0:
            raise GcInvariantError(f"unbalanced unpin on outref {self.target}")
        self.pin_count -= 1
        self._changed()


class OutrefTable:
    """All outrefs of one site, keyed by the remote object id."""

    def __init__(self, site_id: SiteId, initial_back_threshold: int):
        self.site_id = site_id
        self.initial_back_threshold = initial_back_threshold
        self._entries: Dict[ObjectId, OutrefEntry] = {}
        self._mutation_epoch = 0
        self._order_dirty = False
        self._entry_epoch_counter = 0

    # -- mutation epoch ----------------------------------------------------------

    @property
    def mutation_epoch(self) -> int:
        return self._mutation_epoch

    def bump(self) -> None:
        self._mutation_epoch += 1

    def _advance_entry_epoch(self) -> int:
        self._entry_epoch_counter += 1
        return self._entry_epoch_counter

    # -- basic access -----------------------------------------------------------

    def get(self, target: ObjectId) -> Optional[OutrefEntry]:
        return self._entries.get(target)

    def require(self, target: ObjectId) -> OutrefEntry:
        entry = self._entries.get(target)
        if entry is None:
            raise GcInvariantError(f"site {self.site_id} has no outref for {target}")
        return entry

    def __contains__(self, target: ObjectId) -> bool:
        return target in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[OutrefEntry]:
        """All entries in deterministic (target) order.

        The sorted order is an invariant maintained on mutation (lazily: the
        first read after an insert re-sorts, deletions preserve order), so
        per-trace consumers -- update building, the back-trace trigger check
        -- never pay a ``sorted()`` of their own.
        """
        self._ensure_order()
        return iter(self._entries.values())

    def targets(self) -> List[ObjectId]:
        """All targets, same deterministic (target) order as :meth:`entries`."""
        self._ensure_order()
        return list(self._entries)

    # -- mutation -----------------------------------------------------------------

    def ensure(self, target: ObjectId, clean: bool = True, distance: int = 1) -> OutrefEntry:
        """Get-or-create the entry for a remote reference."""
        if target.site == self.site_id:
            raise GcInvariantError(
                f"outref target {target} is local to site {self.site_id}"
            )
        entry = self._entries.get(target)
        if entry is None:
            entry = OutrefEntry(
                target=target,
                distance=distance,
                traced_clean=clean,
                back_threshold=self.initial_back_threshold,
            )
            entry._on_change = self.bump
            entry._next_epoch = self._advance_entry_epoch
            entry.epoch = self._advance_entry_epoch()
            self._entries[target] = entry
            self._order_dirty = True
            self.bump()
        return entry

    def remove(self, target: ObjectId) -> None:
        if self._entries.pop(target, None) is not None:
            self.bump()

    # -- views ---------------------------------------------------------------------

    def _ensure_order(self) -> None:
        """Keep ``_entries`` sorted by target, re-sorting only after inserts.

        Deletions preserve order, so in steady state the views below iterate
        an already-ordered dict and callers (the per-tick back-trace trigger
        check in particular) never pay a per-call ``sorted()``.
        """
        if self._order_dirty:
            self._entries = dict(sorted(self._entries.items()))
            self._order_dirty = False

    def suspected_entries(self) -> List[OutrefEntry]:
        """Suspected entries in deterministic (target) order."""
        self._ensure_order()
        return [entry for entry in self._entries.values() if entry.is_suspected]

    def clean_entries(self) -> List[OutrefEntry]:
        self._ensure_order()
        return [entry for entry in self._entries.values() if entry.is_clean]

    def is_clean(self, target: ObjectId) -> bool:
        entry = self._entries.get(target)
        return entry is not None and entry.is_clean

    def inset_storage_units(self) -> int:
        """Total inset cardinality: the O(n_i * n_o) space of section 5.2."""
        return sum(len(entry.inset) for entry in self._entries.values())
