"""Group tracing (LQP92 / MKI+95 / RJ96 family).

A site with a sufficiently suspected inref initiates a **group**: the set of
sites holding objects reachable *forward* from the suspect (discovered by
following outrefs with :class:`GroupDiscover` messages).  The initiator then
coordinates a mark over exactly those sites: every member marks from its
persistent/variable roots and from inrefs whose source lies *outside* the
group; marking crosses member boundaries with :class:`GroupMark` messages,
and the coordinator detects termination with the credit-recovery scheme of
:mod:`.termination`, scoped to the group.  Unmarked objects at member sites are
swept.

Drawbacks the paper cites, all measurable here:

- a group can be much larger than the cycle it targets, because a garbage
  cycle may point to long chains of garbage or live objects whose sites all
  get drafted into the group (compare ``group_sizes`` with the cycle size);
- a crashed member stalls the whole group trace;
- concurrent groups initiated from the same cycle can interfere; we
  serialize initiations per collector instance, which mirrors the published
  mitigation of electing one initiator.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from ..core.collector import CollectorSpec, NullCollector, register_collector
from ..ids import ObjectId, SiteId
from ..net.message import Message, Payload
from ..sim.simulation import Simulation
from .registry import DeprecatedDirectInit
from .termination import CreditPool, split_credit


@dataclass(frozen=True)
class GroupDiscover(Payload):
    """Ask a site which other sites its suspected closure points to."""

    group_id: int
    seeds: Tuple[ObjectId, ...]


@dataclass(frozen=True)
class GroupDiscoverReply(Payload):
    group_id: int
    reaches: Tuple[SiteId, ...]
    new_seeds: Tuple[Tuple[SiteId, ObjectId], ...]


@dataclass(frozen=True)
class GroupMarkStart(Payload):
    group_id: int
    members: Tuple[SiteId, ...]
    credit: Fraction = Fraction(0)


@dataclass(frozen=True)
class GroupMark(Payload):
    group_id: int
    refs: Tuple[ObjectId, ...]
    credit: Fraction = Fraction(0)


@dataclass(frozen=True)
class GroupAck(Payload):
    group_id: int
    credit: Fraction


@dataclass(frozen=True)
class GroupSweep(Payload):
    group_id: int


class GroupTraceCollector(DeprecatedDirectInit):
    """Suspect-seeded group formation and intra-group mark-sweep."""

    registry_name = "baseline.group"

    def __init__(self, sim: Simulation, suspicion_threshold: Optional[int] = None):
        self._warn_if_direct()
        self.sim = sim
        gc = sim.config.gc
        self.suspicion_threshold = (
            suspicion_threshold
            if suspicion_threshold is not None
            else gc.initial_back_threshold
        )
        self._next_group = 0
        self._active: Optional[_GroupState] = None
        self.group_sizes: List[int] = []
        self.groups_completed = 0
        for site in sim.sites.values():
            site.register_handler(GroupDiscover, self._on_discover)
            site.register_handler(GroupDiscoverReply, self._on_discover_reply)
            site.register_handler(GroupMarkStart, self._on_mark_start)
            site.register_handler(GroupMark, self._on_mark)
            site.register_handler(GroupAck, self._on_ack)
            site.register_handler(GroupSweep, self._on_sweep)

    @property
    def group_in_progress(self) -> bool:
        return self._active is not None

    # -- initiation -----------------------------------------------------------------

    def maybe_initiate(self, site_id: SiteId) -> bool:
        """Start a group from this site's most suspected inref, if any."""
        if self._active is not None:
            return False
        site = self.sim.site(site_id)
        suspects = [
            entry.target
            for entry in site.inrefs.entries()
            if not entry.garbage and entry.distance > self.suspicion_threshold
        ]
        if not suspects:
            return False
        self._next_group += 1
        state = _GroupState(
            group_id=self._next_group,
            initiator=site_id,
            members={site_id},
            pending_discovery=0,
        )
        self._active = state
        seeds = tuple(sorted(suspects))
        state.pending_discovery += 1
        site.send(site_id, GroupDiscover(group_id=state.group_id, seeds=seeds))
        return True

    # -- discovery phase -----------------------------------------------------------------

    def _on_discover(self, message: Message) -> None:
        payload: GroupDiscover = message.payload
        state = self._active
        if state is None or payload.group_id != state.group_id:
            return
        site = self.sim.site(message.dst)
        # Forward closure of the seeds over the local heap.
        closure = site.heap.locally_reachable_from(payload.seeds)
        state.seeds_by_site.setdefault(message.dst, set()).update(
            oid for oid in payload.seeds if site.heap.contains(oid)
        )
        remote: Dict[SiteId, Set[ObjectId]] = {}
        for oid in closure:
            for ref in site.heap.get(oid).iter_refs():
                if ref.site != message.dst:
                    remote.setdefault(ref.site, set()).add(ref)
        new_seeds = tuple(
            (target_site, ref)
            for target_site in sorted(remote)
            for ref in sorted(remote[target_site])
        )
        site.send(
            state.initiator,
            GroupDiscoverReply(
                group_id=state.group_id,
                reaches=tuple(sorted(remote)),
                new_seeds=new_seeds,
            ),
        )

    def _on_discover_reply(self, message: Message) -> None:
        payload: GroupDiscoverReply = message.payload
        state = self._active
        if state is None or payload.group_id != state.group_id:
            return
        state.pending_discovery -= 1
        initiator = self.sim.site(state.initiator)
        fresh: Dict[SiteId, Set[ObjectId]] = {}
        for target_site, ref in payload.new_seeds:
            seen = state.seeds_by_site.setdefault(target_site, set())
            if ref not in seen:
                seen.add(ref)
                fresh.setdefault(target_site, set()).add(ref)
        for target_site in sorted(fresh):
            state.members.add(target_site)
            state.pending_discovery += 1
            initiator.send(
                target_site,
                GroupDiscover(
                    group_id=state.group_id, seeds=tuple(sorted(fresh[target_site]))
                ),
            )
        if state.pending_discovery == 0:
            self._begin_mark(state)

    # -- mark phase ------------------------------------------------------------------------

    def _begin_mark(self, state: "_GroupState") -> None:
        state.marking = True
        state.credits.reset()
        self.group_sizes.append(len(state.members))
        initiator = self.sim.site(state.initiator)
        members = tuple(sorted(state.members))
        shares = state.credits.hand_out(len(members))
        for member, share in zip(members, shares):
            initiator.send(
                member,
                GroupMarkStart(
                    group_id=state.group_id, members=members, credit=share
                ),
            )

    def _local_mark(
        self, state: "_GroupState", site_id: SiteId, seeds, credit: Fraction
    ) -> Fraction:
        site = self.sim.site(site_id)
        marked = state.marks.setdefault(site_id, set())
        remote: Dict[SiteId, Set[ObjectId]] = {}
        stack = [oid for oid in seeds if site.heap.contains(oid)]
        while stack:
            oid = stack.pop()
            if oid in marked:
                continue
            marked.add(oid)
            for ref in site.heap.get(oid).iter_refs():
                if ref.site == site_id:
                    if ref not in marked and site.heap.contains(ref):
                        stack.append(ref)
                elif ref.site in state.members:
                    remote.setdefault(ref.site, set()).add(ref)
                # References leaving the group need no marking: the group
                # sweeps only member sites.
        targets = sorted(remote)
        shares, kept = split_credit(credit, len(targets))
        for target_site, share in zip(targets, shares):
            site.send(
                target_site,
                GroupMark(
                    group_id=state.group_id,
                    refs=tuple(sorted(remote[target_site])),
                    credit=share,
                ),
            )
        return kept

    def _on_mark_start(self, message: Message) -> None:
        payload: GroupMarkStart = message.payload
        state = self._active
        if state is None or payload.group_id != state.group_id:
            return
        site = self.sim.site(message.dst)
        members = set(payload.members)
        seeds = set(site.heap.persistent_roots | site.heap.variable_roots)
        # Inrefs from outside the group are roots for the group trace.
        for target in site.inrefs.targets():
            entry = site.inrefs.get(target)
            if entry is None or entry.garbage:
                continue
            if any(source not in members for source in entry.sources):
                seeds.add(target)
        kept = self._local_mark(state, message.dst, sorted(seeds), message.payload.credit)
        site.send(state.initiator, GroupAck(group_id=state.group_id, credit=kept))

    def _on_mark(self, message: Message) -> None:
        payload: GroupMark = message.payload
        state = self._active
        if state is None or payload.group_id != state.group_id:
            return
        site = self.sim.site(message.dst)
        marked = state.marks.setdefault(message.dst, set())
        fresh = [ref for ref in payload.refs if ref not in marked]
        kept = self._local_mark(state, message.dst, fresh, payload.credit)
        site.send(state.initiator, GroupAck(group_id=state.group_id, credit=kept))

    def _on_ack(self, message: Message) -> None:
        payload: GroupAck = message.payload
        state = self._active
        if state is None or payload.group_id != state.group_id or not state.marking:
            return
        state.credits.give_back(payload.credit)
        if state.credits.complete:
            initiator = self.sim.site(state.initiator)
            for member in sorted(state.members):
                initiator.send(member, GroupSweep(group_id=state.group_id))
            self.groups_completed += 1
            self._active = None
            self._last_state = state

    # -- sweep -----------------------------------------------------------------------------

    def _on_sweep(self, message: Message) -> None:
        payload: GroupSweep = message.payload
        state = getattr(self, "_last_state", None)
        if state is None or payload.group_id != state.group_id:
            return
        site = self.sim.site(message.dst)
        marked = state.marks.get(message.dst, set())
        swept = site.heap.sweep(marked)
        self.sim.metrics.incr("baseline.group.objects_swept", len(swept))
        for oid in swept:
            site.inrefs.remove(oid)

    # -- convenience ------------------------------------------------------------------------

    def run_round(self, settle_time: float = 50.0) -> None:
        """Local traces everywhere, then at most one group trace."""
        self.sim.run_gc_round(settle_time)
        for site_id in sorted(self.sim.sites):
            if self.sim.site(site_id).crashed:
                continue
            if self.maybe_initiate(site_id):
                break
        self.sim.settle(settle_time)


@dataclass
class _GroupState:
    group_id: int
    initiator: SiteId
    members: Set[SiteId]
    pending_discovery: int = 0
    marking: bool = False
    credits: CreditPool = None
    marks: Dict[SiteId, Set[ObjectId]] = None
    seeds_by_site: Dict[SiteId, Set[ObjectId]] = None

    def __post_init__(self):
        if self.credits is None:
            self.credits = CreditPool()
        if self.marks is None:
            self.marks = {}
        if self.seeds_by_site is None:
            self.seeds_by_site = {}


def _driver(sim: Simulation) -> GroupTraceCollector:
    return GroupTraceCollector._create(sim)


register_collector(
    CollectorSpec(
        name="baseline.group", site_factory=NullCollector, driver_factory=_driver
    )
)
