"""Registration glue for the sim-driven baseline collectors.

The six baseline schemes predate the :class:`~repro.core.collector.Collector`
strategy boundary: each is a *driver* object constructed against a running
simulation (it registers its handlers on the sites itself) plus an explicit
``run_round``/``start_round``.  Rather than force-fit them into the per-site
strategy protocol, the registry models them as driver-style backends: their
:class:`~repro.core.collector.CollectorSpec` pairs a
:class:`~repro.core.collector.NullCollector` site strategy (plain local
tracing -- exactly what these schemes assume underneath) with a
``driver_factory`` reached through :attr:`Simulation.collector_driver`.

Direct construction (``GlobalTraceCollector(sim, ...)``) still works but
warns: the supported spelling is ``GcConfig.collector = "baseline.global"``
plus ``sim.collector_driver``, which keeps collector selection in config
where the comparison harness, the CLI, and the differential oracle can see
it.  The shim follows the ``ParallelSimulation._create`` precedent from the
engine-selection redesign.
"""

from __future__ import annotations

import warnings


class DeprecatedDirectInit:
    """Mixin: warn when a baseline driver is constructed directly.

    Subclasses set ``registry_name`` and call :meth:`_warn_if_direct` first
    thing in ``__init__``; the registry's ``driver_factory`` constructs
    through :meth:`_create`, which suppresses the warning.
    """

    #: > 0 while the registry's driver_factory is constructing us.
    _factory_depth = 0
    registry_name: str = ""

    @classmethod
    def _create(cls, *args, **kwargs):
        cls._factory_depth += 1
        try:
            return cls(*args, **kwargs)
        finally:
            cls._factory_depth -= 1

    def _warn_if_direct(self) -> None:
        cls = type(self)
        if cls._factory_depth == 0:
            warnings.warn(
                f"constructing {cls.__name__} directly is deprecated; set "
                f"GcConfig.collector = {cls.registry_name!r} and use "
                "Simulation.collector_driver",
                DeprecationWarning,
                stacklevel=3,
            )
