"""Trial deletion / cyclic reference counting over subgraphs (Lins-Jones
[LJ93, JL92] family -- "Subgraph Tracing" in the paper's section 7).

From a suspect, the collector delineates the *subgraph* of objects reachable
forward from it (crossing sites), then runs the classic three-phase trial
deletion over exactly that subgraph:

1. **red phase** -- walk the subgraph from the suspect, counting, for every
   member, how many of its incoming references come from *inside* the
   subgraph (equivalently: trial-decrement its total reference count once
   per internal edge);
2. **green phase** -- every member whose external count is positive (some
   reference from outside the subgraph, a persistent root, or a mutator
   variable still reaches it) is externally alive: re-walk from all such
   members, rescuing their closures;
3. **collect phase** -- members never rescued form garbage (the suspect's
   cycle); delete them.

Cross-site edges make each phase a message exchange (Red/Green batches with
credit-recovery termination per phase -- see :mod:`.termination` -- much as
[JL92] synchronizes its parallel traces).  The
paper's criticisms are directly measurable:

- **no locality**: "a garbage cycle might point to live objects, and the
  associated subgraph would include all such objects" -- the red phase
  spreads into live structure and its sites (compare ``subgraph_sizes``
  against the actual cycle);
- two full distributed passes over the subgraph per attempt, plus a third
  for collection;
- a crashed subgraph member stalls the attempt.

The suspect-selection here reuses the distance heuristic, as the paper does
for its own scheme, to keep the comparison about the *checking* technique.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from ..core.collector import CollectorSpec, NullCollector, register_collector
from ..ids import ObjectId, SiteId
from ..net.message import Message, Payload
from ..sim.simulation import Simulation
from .registry import DeprecatedDirectInit
from .termination import FULL_CREDIT, CreditPool, split_credit


@dataclass(frozen=True)
class RedBatch(Payload):
    """Phase 1: trial-walk these objects (arrived via internal edges)."""

    trial_id: int
    # (target object, number of internal edges arriving at it in this batch)
    arrivals: Tuple[Tuple[ObjectId, int], ...]
    credit: Fraction = Fraction(0)

    def size_units(self) -> int:
        return max(1, len(self.arrivals))


@dataclass(frozen=True)
class GreenBatch(Payload):
    """Phase 2: rescue these objects (reachable from an external survivor)."""

    trial_id: int
    targets: Tuple[ObjectId, ...]
    credit: Fraction = Fraction(0)

    def size_units(self) -> int:
        return max(1, len(self.targets))


@dataclass(frozen=True)
class PhaseAck(Payload):
    trial_id: int
    phase: str
    credit: Fraction


@dataclass(frozen=True)
class StartGreen(Payload):
    trial_id: int
    credit: Fraction = Fraction(0)


@dataclass(frozen=True)
class CollectCommand(Payload):
    trial_id: int


@dataclass
class _TrialState:
    trial_id: int
    initiator: SiteId
    suspect: ObjectId
    phase: str = "red"
    credits: CreditPool = field(default_factory=CreditPool)
    # site -> member object -> internal-edge count accumulated so far
    members: Dict[SiteId, Dict[ObjectId, int]] = field(default_factory=dict)
    green: Dict[SiteId, Set[ObjectId]] = field(default_factory=dict)


class TrialDeletionCollector(DeprecatedDirectInit):
    """Distributed trial deletion seeded by the distance heuristic."""

    registry_name = "baseline.trial"

    def __init__(self, sim: Simulation, suspicion_threshold: Optional[int] = None):
        self._warn_if_direct()
        self.sim = sim
        gc = sim.config.gc
        self.suspicion_threshold = (
            suspicion_threshold
            if suspicion_threshold is not None
            else gc.initial_back_threshold
        )
        self._next_trial = 0
        self._active: Optional[_TrialState] = None
        self._last: Optional[_TrialState] = None
        self.trials_completed = 0
        self.subgraph_sizes: List[int] = []
        self.subgraph_site_counts: List[int] = []
        for site in sim.sites.values():
            site.register_handler(RedBatch, self._on_red)
            site.register_handler(GreenBatch, self._on_green)
            site.register_handler(PhaseAck, self._on_ack)
            site.register_handler(StartGreen, self._on_start_green)
            site.register_handler(CollectCommand, self._on_collect)

    @property
    def trial_in_progress(self) -> bool:
        return self._active is not None

    # -- initiation ---------------------------------------------------------------

    def maybe_initiate(self, site_id: SiteId) -> bool:
        if self._active is not None:
            return False
        site = self.sim.site(site_id)
        suspects = [
            entry.target
            for entry in site.inrefs.entries()
            if not entry.garbage
            and entry.distance > self.suspicion_threshold
            and site.heap.contains(entry.target)
        ]
        if not suspects:
            return False
        suspect = sorted(suspects)[0]
        self._next_trial += 1
        state = _TrialState(
            trial_id=self._next_trial, initiator=site_id, suspect=suspect
        )
        self._active = state
        state.phase = "red"
        state.credits.reset()
        site.send(
            site_id,
            RedBatch(
                trial_id=state.trial_id,
                arrivals=((suspect, 0),),
                credit=FULL_CREDIT,
            ),
        )
        return True

    def run_round(self, settle_time: float = 50.0) -> None:
        self.sim.run_gc_round(settle_time)
        for site_id in sorted(self.sim.sites):
            if not self.sim.site(site_id).crashed:
                if self.maybe_initiate(site_id):
                    break
        self.sim.settle(settle_time)

    # -- red phase -------------------------------------------------------------------

    def _on_red(self, message: Message) -> None:
        payload: RedBatch = message.payload
        state = self._active
        if state is None or payload.trial_id != state.trial_id or state.phase != "red":
            return
        site = self.sim.site(message.dst)
        members = state.members.setdefault(message.dst, {})
        remote: Dict[SiteId, Dict[ObjectId, int]] = {}
        stack: List[ObjectId] = []
        for target, internal_edges in payload.arrivals:
            if not site.heap.contains(target):
                continue
            first_visit = target not in members
            members[target] = members.get(target, 0) + internal_edges
            if first_visit:
                stack.append(target)
        while stack:
            oid = stack.pop()
            for ref in site.heap.get(oid).iter_refs():
                if ref.site == message.dst:
                    if not site.heap.contains(ref):
                        continue
                    first_visit = ref not in members
                    members[ref] = members.get(ref, 0) + 1
                    if first_visit:
                        stack.append(ref)
                else:
                    bucket = remote.setdefault(ref.site, {})
                    bucket[ref] = bucket.get(ref, 0) + 1
        targets = sorted(remote)
        shares, kept = split_credit(payload.credit, len(targets))
        for target_site, share in zip(targets, shares):
            site.send(
                target_site,
                RedBatch(
                    trial_id=state.trial_id,
                    arrivals=tuple(sorted(remote[target_site].items())),
                    credit=share,
                ),
            )
        site.send(
            state.initiator,
            PhaseAck(trial_id=state.trial_id, phase="red", credit=kept),
        )

    # -- phase transitions --------------------------------------------------------------

    def _on_ack(self, message: Message) -> None:
        payload: PhaseAck = message.payload
        state = self._active
        if state is None or payload.trial_id != state.trial_id:
            return
        if payload.phase != state.phase:
            return
        state.credits.give_back(payload.credit)
        if not state.credits.complete:
            return
        initiator = self.sim.site(state.initiator)
        if state.phase == "red":
            size = sum(len(members) for members in state.members.values())
            self.subgraph_sizes.append(size)
            self.subgraph_site_counts.append(len(state.members))
            state.phase = "green"
            state.credits.reset()
            members = sorted(state.members)
            shares = state.credits.hand_out(len(members))
            for member_site, share in zip(members, shares):
                initiator.send(
                    member_site, StartGreen(trial_id=state.trial_id, credit=share)
                )
        elif state.phase == "green":
            state.phase = "collect"
            for member_site in sorted(state.members):
                initiator.send(member_site, CollectCommand(trial_id=state.trial_id))
            self.trials_completed += 1
            self._last = state
            self._active = None

    # -- green phase ----------------------------------------------------------------------

    def _externally_alive(self, site_id: SiteId, state: _TrialState) -> List[ObjectId]:
        """Members whose reference count exceeds their internal-edge count,
        or that are roots/variables -- something outside the subgraph
        reaches them."""
        site = self.sim.site(site_id)
        members = state.members.get(site_id, {})
        alive: List[ObjectId] = []
        # Total incoming references per member: local holders plus remote
        # holders (one per source site per inref -- the reference-listing
        # approximation of a count, conservative upward).
        local_in: Dict[ObjectId, int] = {oid: 0 for oid in members}
        for obj in site.heap.objects():
            for ref in obj.iter_refs():
                if ref in local_in:
                    local_in[ref] += 1
        for oid, internal in members.items():
            total = local_in[oid]
            entry = site.inrefs.get(oid)
            if entry is not None:
                total += len(entry.sources)
            if (
                total > internal
                or oid in site.heap.persistent_roots
                or oid in site.heap.variable_roots
            ):
                alive.append(oid)
        return alive

    def _on_start_green(self, message: Message) -> None:
        payload: StartGreen = message.payload
        state = self._active
        if state is None or payload.trial_id != state.trial_id or state.phase != "green":
            return
        site = self.sim.site(message.dst)
        seeds = self._externally_alive(message.dst, state)
        kept = self._green_walk(state, message.dst, seeds, message.payload.credit)
        site.send(
            state.initiator,
            PhaseAck(trial_id=state.trial_id, phase="green", credit=kept),
        )

    def _green_walk(
        self, state: _TrialState, site_id: SiteId, seeds, credit: Fraction
    ) -> Fraction:
        site = self.sim.site(site_id)
        members = state.members.get(site_id, {})
        green = state.green.setdefault(site_id, set())
        remote: Dict[SiteId, Set[ObjectId]] = {}
        stack = [oid for oid in seeds if oid in members and oid not in green]
        while stack:
            oid = stack.pop()
            if oid in green:
                continue
            green.add(oid)
            for ref in site.heap.get(oid).iter_refs():
                if ref.site == site_id:
                    if ref in members and ref not in green:
                        stack.append(ref)
                else:
                    remote.setdefault(ref.site, set()).add(ref)
        targets = [t for t in sorted(remote) if t in state.members]
        shares, kept = split_credit(credit, len(targets))
        for target_site, share in zip(targets, shares):
            site.send(
                target_site,
                GreenBatch(
                    trial_id=state.trial_id,
                    targets=tuple(sorted(remote[target_site])),
                    credit=share,
                ),
            )
        return kept

    def _on_green(self, message: Message) -> None:
        payload: GreenBatch = message.payload
        state = self._active
        if state is None or payload.trial_id != state.trial_id or state.phase != "green":
            return
        site = self.sim.site(message.dst)
        members = state.members.get(message.dst, {})
        green = state.green.setdefault(message.dst, set())
        fresh = [t for t in payload.targets if t in members and t not in green]
        kept = self._green_walk(state, message.dst, fresh, payload.credit)
        site.send(
            state.initiator,
            PhaseAck(trial_id=state.trial_id, phase="green", credit=kept),
        )

    # -- collect phase ----------------------------------------------------------------------

    def _on_collect(self, message: Message) -> None:
        payload: CollectCommand = message.payload
        state = self._last
        if state is None or payload.trial_id != state.trial_id:
            return
        site = self.sim.site(message.dst)
        members = state.members.get(message.dst, {})
        green = state.green.get(message.dst, set())
        doomed = [oid for oid in members if oid not in green]
        deleted = site.heap.sweep_ids(doomed)
        for oid in deleted:
            site.inrefs.remove(oid)
        self.sim.metrics.incr("baseline.trial.objects_swept", len(deleted))


def _driver(sim: Simulation) -> TrialDeletionCollector:
    return TrialDeletionCollector._create(sim)


register_collector(
    CollectorSpec(
        name="baseline.trial", site_factory=NullCollector, driver_factory=_driver
    )
)
