"""Baseline distributed cycle collectors (section 7 of the paper).

Four families the paper compares against, implemented over the same
simulated substrate (sites, heaps, reference listing, network) so that
benchmark E6 measures algorithms rather than harness differences:

- :mod:`.globaltrace` -- complementary global marking [Ali85, JJ92];
- :mod:`.hughes` -- timestamp propagation with a global threshold [Hug85];
- :mod:`.migration` -- distance-heuristic controlled migration [ML95];
- :mod:`.grouptrace` -- group formation + intra-group tracing
  [LQP92, MKI+95, RJ96];
- :mod:`.centralservice` -- per-site reachability summaries shipped to a
  logically central detector [BE86, LL92];
- :mod:`.trialdeletion` -- subgraph tracing / cyclic reference counting by
  trial deletion [LJ93, JL92].

All are used with ``GcConfig(enable_backtracing=False)``: they *replace* the
paper's back tracing on top of unchanged local tracing.
"""

from .globaltrace import GlobalTraceCollector
from .hughes import HughesCollector
from .migration import MigrationCollector
from .grouptrace import GroupTraceCollector
from .centralservice import CentralServiceCollector
from .trialdeletion import TrialDeletionCollector

__all__ = [
    "GlobalTraceCollector",
    "HughesCollector",
    "MigrationCollector",
    "GroupTraceCollector",
    "CentralServiceCollector",
    "TrialDeletionCollector",
]
