"""Complementary global tracing (Ali85 / Juul-Jul92 family).

A coordinator starts a distributed mark over *all* sites: each site marks the
local closure of its persistent and variable roots and forwards every remote
reference it encounters in a :class:`MarkBatch`.  Termination is detected with
the credit-recovery scheme of :mod:`.termination`: every mark message carries
an exact fractional credit share, sites return unspent credit with their
acks, and full recovery of credit 1 at the coordinator means the global mark
is complete (simple spawned-minus-one counting is racy across site pairs).  A final :class:`SweepCommand` makes every
site delete unmarked objects (exact global liveness, so cycles die too).

Drawbacks the paper cites, reproduced measurably here:

- every site must participate ("a global trace requires the cooperation of
  all sites before it can collect any garbage"): one crashed site stalls the
  round forever (:attr:`GlobalTraceCollector.round_in_progress` stays True);
- message cost scales with the total number of inter-site references in the
  system, not with the garbage actually collected.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Set, Tuple

from ..core.collector import CollectorSpec, NullCollector, register_collector
from ..ids import ObjectId, SiteId
from ..net.message import Message, Payload
from ..sim.simulation import Simulation
from .registry import DeprecatedDirectInit
from .termination import CreditPool, split_credit


@dataclass(frozen=True)
class StartGlobalMark(Payload):
    generation: int
    credit: Fraction = Fraction(0)


@dataclass(frozen=True)
class MarkBatch(Payload):
    generation: int
    refs: Tuple[ObjectId, ...]
    credit: Fraction = Fraction(0)


@dataclass(frozen=True)
class MarkAck(Payload):
    generation: int
    credit: Fraction


@dataclass(frozen=True)
class SweepCommand(Payload):
    generation: int


class GlobalTraceCollector(DeprecatedDirectInit):
    """Coordinator-driven global mark-sweep attached to a simulation."""

    registry_name = "baseline.global"

    def __init__(self, sim: Simulation, coordinator: SiteId):
        self._warn_if_direct()
        self.sim = sim
        self.coordinator = coordinator
        self.generation = 0
        self._credits = CreditPool()
        self.round_in_progress = False
        self.rounds_completed = 0
        self._marks: Dict[SiteId, Set[ObjectId]] = {}
        for site in sim.sites.values():
            site.register_handler(StartGlobalMark, self._on_start)
            site.register_handler(MarkBatch, self._on_batch)
            site.register_handler(MarkAck, self._on_ack)
            site.register_handler(SweepCommand, self._on_sweep)

    # -- driving ------------------------------------------------------------------

    def start_round(self) -> None:
        """Begin one global mark-sweep round from the coordinator."""
        if self.round_in_progress:
            return
        self.generation += 1
        self.round_in_progress = True
        self._marks = {site_id: set() for site_id in self.sim.sites}
        self._credits.reset()
        coordinator = self.sim.site(self.coordinator)
        shares = self._credits.hand_out(len(self.sim.sites))
        for site_id, share in zip(sorted(self.sim.sites), shares):
            coordinator.send(
                site_id, StartGlobalMark(generation=self.generation, credit=share)
            )

    # -- marking -------------------------------------------------------------------

    def _local_mark(
        self, site_id: SiteId, seeds: List[ObjectId], credit: Fraction
    ) -> Fraction:
        """Mark the local closure of ``seeds``; forward remote refs.

        Splits ``credit`` over the spawned MarkBatch messages and returns
        the unspent remainder (to be acked back to the coordinator).
        """
        site = self.sim.site(site_id)
        marked = self._marks[site_id]
        remote_found: Dict[SiteId, Set[ObjectId]] = {}
        stack = [oid for oid in seeds if site.heap.contains(oid)]
        while stack:
            oid = stack.pop()
            if oid in marked:
                continue
            marked.add(oid)
            for ref in site.heap.get(oid).iter_refs():
                if ref.site == site_id:
                    if ref not in marked and site.heap.contains(ref):
                        stack.append(ref)
                else:
                    remote_found.setdefault(ref.site, set()).add(ref)
        targets = sorted(remote_found)
        shares, kept = split_credit(credit, len(targets))
        for target_site, share in zip(targets, shares):
            site.send(
                target_site,
                MarkBatch(
                    generation=self.generation,
                    refs=tuple(sorted(remote_found[target_site])),
                    credit=share,
                ),
            )
        return kept

    def _on_start(self, message: Message) -> None:
        site = self.sim.site(message.dst)
        seeds = sorted(site.heap.persistent_roots | site.heap.variable_roots)
        kept = self._local_mark(message.dst, seeds, message.payload.credit)
        site.send(
            self.coordinator, MarkAck(generation=self.generation, credit=kept)
        )

    def _on_batch(self, message: Message) -> None:
        payload: MarkBatch = message.payload
        if payload.generation != self.generation:
            return
        site = self.sim.site(message.dst)
        # Only mark refs not already marked (avoids re-acking duplicates).
        fresh = [
            ref for ref in payload.refs if ref not in self._marks[message.dst]
        ]
        kept = self._local_mark(message.dst, fresh, payload.credit)
        site.send(
            self.coordinator, MarkAck(generation=self.generation, credit=kept)
        )

    def _on_ack(self, message: Message) -> None:
        payload: MarkAck = message.payload
        if payload.generation != self.generation or not self.round_in_progress:
            return
        self._credits.give_back(payload.credit)
        if self._credits.complete:
            coordinator = self.sim.site(self.coordinator)
            for site_id in sorted(self.sim.sites):
                coordinator.send(site_id, SweepCommand(generation=self.generation))
            self.round_in_progress = False
            self.rounds_completed += 1

    # -- sweeping ------------------------------------------------------------------------

    def _on_sweep(self, message: Message) -> None:
        payload: SweepCommand = message.payload
        if payload.generation != self.generation:
            return
        site = self.sim.site(message.dst)
        marked = self._marks[message.dst]
        swept = site.heap.sweep(marked)
        self.sim.metrics.incr("baseline.global.objects_swept", len(swept))
        for oid in swept:
            site.inrefs.remove(oid)
            # Outrefs held by swept objects are trimmed by the next local
            # trace via the normal update path.


def _driver(sim: Simulation) -> GlobalTraceCollector:
    return GlobalTraceCollector._create(sim, sorted(sim.sites)[0])


register_collector(
    CollectorSpec(
        name="baseline.global", site_factory=NullCollector, driver_factory=_driver
    )
)
