"""Credit-recovery termination detection for coordinator-driven phases.

Plain "outstanding += spawned - 1" ack counting is racy: an ack for a
*spawned* batch can overtake (on a different site pair) the ack that reports
its spawning, driving the counter to zero while work is still in flight.
The classic fix (Mattern's credit scheme, a cousin of Dijkstra-Scholten):
the coordinator hands out a total credit of 1; every batch carries an exact
fractional share; a site that spawns k child batches gives each a share of
its credit and returns the remainder with its ack.  The phase is complete
exactly when the coordinator has recovered credit 1 -- no ordering
assumptions needed.

Credits are :class:`fractions.Fraction` values, so the arithmetic is exact
at any depth and fan-out.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

FULL_CREDIT = Fraction(1)


def split_credit(credit: Fraction, spawned: int) -> Tuple[List[Fraction], Fraction]:
    """Divide ``credit`` among ``spawned`` children; return (shares, kept).

    The processing site keeps ``kept`` to return with its ack; the children
    each carry one share.  shares + kept always sums to ``credit`` exactly.
    """
    if spawned <= 0:
        return [], credit
    share = credit / (spawned + 1)
    shares = [share] * spawned
    kept = credit - share * spawned
    return shares, kept


class CreditPool:
    """Coordinator-side accumulator for one phase."""

    def __init__(self) -> None:
        self._returned = Fraction(0)

    def hand_out(self, n: int) -> List[Fraction]:
        """Initial distribution of the full credit over n seed messages."""
        if n <= 0:
            self._returned = FULL_CREDIT
            return []
        share = FULL_CREDIT / n
        return [share] * n

    def give_back(self, credit: Fraction) -> None:
        self._returned += credit

    @property
    def complete(self) -> bool:
        return self._returned == FULL_CREDIT

    def reset(self) -> None:
        self._returned = Fraction(0)
