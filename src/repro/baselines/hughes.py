"""Hughes' timestamp-propagation collector [Hug85].

Each site periodically runs a *stamp trace*: persistent and variable roots
carry the current time; inrefs carry the latest timestamp received for them;
the trace propagates, to every outref, the largest stamp of any root/inref
that reaches it, and sends the new stamps to the target sites, which fold
them into their inrefs (max-merge).  Stamps of live objects keep rising
(roots always have "now"); stamps of garbage freeze.

A coordinator computes the **global threshold**: the minimum over all sites
of the site's guarantee ("every stamp I will ever send from pre-threshold
state has been sent"), which here is the time of the site's last completed
stamp trace.  Every inref stamped below the threshold is garbage and gets
flagged for the local collector.

The drawback the paper cites -- "a single site can hold down the global
threshold, prohibiting garbage collection in the entire system" -- falls out
directly: a crashed site's last-trace time freezes, the min stops rising, and
nothing newer than it is ever collected anywhere.

Approximation note: real Hughes computes the threshold with a distributed
termination-detection algorithm that accounts for stamps still in flight.
We approximate in two parts: (1) each round runs ``propagation_passes``
synchronized stamp-trace sweeps, enough to re-propagate root stamps across
every live inter-site chain (passes must cover the chain's site-order
reversals); (2) the coordinator announces, as the threshold, the minimum
last-trace time from the *previous* poll -- strictly older than any root
stamp emitted this round, so a fully re-propagated live inref always sits
above it.  Benchmarks verify safety with the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.collector import CollectorSpec, NullCollector, register_collector
from ..ids import ObjectId, SiteId
from ..net.message import Message, Payload
from ..sim.simulation import Simulation
from .registry import DeprecatedDirectInit


@dataclass(frozen=True)
class StampUpdate(Payload):
    stamps: Tuple[Tuple[ObjectId, float], ...]

    def size_units(self) -> int:
        return max(1, len(self.stamps))


@dataclass(frozen=True)
class GcTimeRequest(Payload):
    generation: int


@dataclass(frozen=True)
class GcTimeReply(Payload):
    generation: int
    last_trace_time: float


@dataclass(frozen=True)
class ThresholdAnnounce(Payload):
    threshold: float


class HughesCollector(DeprecatedDirectInit):
    """Timestamp propagation + centrally computed global threshold."""

    registry_name = "baseline.hughes"

    def __init__(self, sim: Simulation, coordinator: SiteId):
        self._warn_if_direct()
        self.sim = sim
        self.coordinator = coordinator
        self.inref_stamps: Dict[SiteId, Dict[ObjectId, float]] = {
            site_id: {} for site_id in sim.sites
        }
        self.last_trace_time: Dict[SiteId, float] = {
            site_id: 0.0 for site_id in sim.sites
        }
        self.threshold = 0.0
        self._generation = 0
        self._replies: Dict[SiteId, float] = {}
        self._previous_poll: Dict[SiteId, float] = {}
        for site in sim.sites.values():
            site.register_handler(StampUpdate, self._on_stamp_update)
            site.register_handler(GcTimeRequest, self._on_time_request)
            site.register_handler(GcTimeReply, self._on_time_reply)
            site.register_handler(ThresholdAnnounce, self._on_threshold)

    # -- per-site stamp trace ----------------------------------------------------------

    def run_stamp_trace(self, site_id: SiteId) -> None:
        """One Hughes trace at one site: propagate stamps roots/inrefs -> outrefs."""
        site = self.sim.site(site_id)
        if site.crashed:
            return
        now = self.sim.now
        stamps = self.inref_stamps[site_id]
        # Sources: roots at "now", inrefs at their recorded stamps (new
        # inrefs conservatively get "now" -- they were just created, hence
        # reachable by a live mutator).
        sources: List[Tuple[ObjectId, float]] = [
            (oid, now)
            for oid in sorted(site.heap.persistent_roots | site.heap.variable_roots)
        ]
        for target in site.inrefs.targets():
            entry = site.inrefs.get(target)
            if entry is None or entry.garbage:
                continue
            sources.append((target, stamps.get(target, now)))
        # Propagate the *maximum* reaching stamp: trace in decreasing stamp
        # order with shared marks; the first visit carries the max.
        sources.sort(key=lambda pair: (-pair[1], pair[0]))
        visited: Dict[ObjectId, float] = {}
        outref_stamps: Dict[ObjectId, float] = {}
        for root, stamp in sources:
            if root.site != site_id or not site.heap.contains(root):
                continue
            stack = [root]
            while stack:
                oid = stack.pop()
                if oid in visited:
                    continue
                visited[oid] = stamp
                for ref in site.heap.get(oid).iter_refs():
                    if ref.site == site_id:
                        if ref not in visited and site.heap.contains(ref):
                            stack.append(ref)
                    else:
                        current = outref_stamps.get(ref)
                        if current is None or stamp > current:
                            outref_stamps[ref] = stamp
        self.last_trace_time[site_id] = now
        by_target: Dict[SiteId, List[Tuple[ObjectId, float]]] = {}
        for target, stamp in sorted(outref_stamps.items()):
            by_target.setdefault(target.site, []).append((target, stamp))
        for target_site, pairs in sorted(by_target.items()):
            site.send(target_site, StampUpdate(stamps=tuple(pairs)))

    def _on_stamp_update(self, message: Message) -> None:
        stamps = self.inref_stamps[message.dst]
        for target, stamp in message.payload.stamps:
            current = stamps.get(target)
            if current is None or stamp > current:
                stamps[target] = stamp

    # -- threshold service -------------------------------------------------------------------

    def compute_threshold(self) -> None:
        """Coordinator polls every site for its last-trace time."""
        self._generation += 1
        self._replies = {}
        coordinator = self.sim.site(self.coordinator)
        for site_id in sorted(self.sim.sites):
            coordinator.send(site_id, GcTimeRequest(generation=self._generation))

    def _on_time_request(self, message: Message) -> None:
        site = self.sim.site(message.dst)
        site.send(
            self.coordinator,
            GcTimeReply(
                generation=message.payload.generation,
                last_trace_time=self.last_trace_time[message.dst],
            ),
        )

    def _on_time_reply(self, message: Message) -> None:
        if message.payload.generation != self._generation:
            return
        self._replies[message.src] = message.payload.last_trace_time
        if len(self._replies) == len(self.sim.sites):
            # Announce the *previous* poll's minimum: strictly older than any
            # root stamp re-propagated during the current round, hence safe.
            if self._previous_poll:
                threshold = min(self._previous_poll.values())
                self.threshold = threshold
                coordinator = self.sim.site(self.coordinator)
                for site_id in sorted(self.sim.sites):
                    coordinator.send(site_id, ThresholdAnnounce(threshold=threshold))
            self._previous_poll = dict(self._replies)

    def _on_threshold(self, message: Message) -> None:
        """Flag every inref stamped strictly below the threshold as garbage."""
        threshold = message.payload.threshold
        site = self.sim.site(message.dst)
        stamps = self.inref_stamps[message.dst]
        for target in site.inrefs.targets():
            entry = site.inrefs.get(target)
            if entry is None or entry.garbage:
                continue
            stamp = stamps.get(target)
            if stamp is not None and stamp < threshold:
                entry.garbage = True
                self.sim.metrics.incr("baseline.hughes.inrefs_flagged")

    # -- convenience driver --------------------------------------------------------------------

    def run_round(self, settle_time: float = 50.0, propagation_passes: int = 3) -> None:
        """One full Hughes round: stamp sweeps, local traces, threshold."""
        for _ in range(propagation_passes):
            for site_id in sorted(self.sim.sites):
                self.run_stamp_trace(site_id)
                self.sim.run_for(settle_time)
        for site_id in sorted(self.sim.sites):
            if not self.sim.site(site_id).crashed:
                self.sim.site(site_id).run_local_trace()
            self.sim.run_for(settle_time)
        self.compute_threshold()
        self.sim.settle(settle_time)


def _driver(sim: Simulation) -> HughesCollector:
    return HughesCollector._create(sim, sorted(sim.sites)[0])


register_collector(
    CollectorSpec(
        name="baseline.hughes", site_factory=NullCollector, driver_factory=_driver
    )
)
