"""Controlled migration (the authors' own earlier scheme, [ML95] / [Bis77]).

Suspects are found with the same distance heuristic as the main collector;
instead of back tracing, a suspected object is **migrated** to one of the
sites referencing it.  A garbage cycle's objects thereby converge onto a
single site, where plain local tracing collects them.  Live suspects migrate
too (wasted work), and every migration must patch the references held at
other sites -- the costs the paper cites when arguing back tracing is
cheaper:

- a migration message carries the whole object (``payload_size`` units, vs
  constant-size back-trace messages);
- every site holding the reference receives a patch message rewriting it;
- systems may forbid migration outright (security/autonomy/heterogeneity),
  which this baseline cannot work around.

Migration keeps object ids stable by allocating a *new* id at the
destination and rewriting all references: the owner deletes the original and
the destination informs every recorded source.  The simulation charges one
``MigrateObject`` (sized) plus one ``PatchRefs`` per source site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.collector import CollectorSpec, NullCollector, register_collector
from ..ids import ObjectId, SiteId
from ..net.message import Message, Payload
from ..sim.simulation import Simulation
from .registry import DeprecatedDirectInit


@dataclass(frozen=True)
class MigrateObject(Payload):
    """Ship one object's state to a destination site."""

    old_id: ObjectId
    refs: Tuple[ObjectId, ...]
    payload_size: int
    # Sites (other than the destination) that hold references to old_id and
    # must be patched, with their recorded distance estimates.
    sources: Tuple[Tuple[SiteId, int], ...]

    def size_units(self) -> int:
        return max(1, self.payload_size)

    def carried_refs(self) -> Tuple[ObjectId, ...]:
        return self.refs


@dataclass(frozen=True)
class PatchRefs(Payload):
    """Rewrite every reference old_id -> new_id at the receiving site."""

    old_id: ObjectId
    new_id: ObjectId


class MigrationCollector(DeprecatedDirectInit):
    """Distance-triggered migration of suspected objects."""

    registry_name = "baseline.migration"

    def __init__(self, sim: Simulation, migration_threshold: Optional[int] = None):
        self._warn_if_direct()
        self.sim = sim
        gc = sim.config.gc
        self.migration_threshold = (
            migration_threshold
            if migration_threshold is not None
            else gc.initial_back_threshold
        )
        self.objects_migrated = 0
        self.units_migrated = 0
        for site in sim.sites.values():
            site.register_handler(MigrateObject, self._on_migrate)
            site.register_handler(PatchRefs, self._on_patch)

    # -- policy --------------------------------------------------------------------------

    def check_migrations(self, site_id: SiteId) -> List[ObjectId]:
        """Migrate each sufficiently suspected inref target off this site.

        The destination is the source site with the smallest id -- a simple
        deterministic rule; ML95 discusses smarter destination choices, but
        any consistent rule converges a cycle onto one site.
        """
        site = self.sim.site(site_id)
        migrated: List[ObjectId] = []
        for target in sorted(site.inrefs.targets()):
            entry = site.inrefs.get(target)
            if entry is None or entry.garbage or entry.empty:
                continue
            if entry.distance <= self.migration_threshold:
                continue
            if not site.heap.contains(target):
                continue
            if (
                target in site.heap.persistent_roots
                or target in site.heap.variable_roots
            ):
                # Rooted objects are definitely live; never migrate them.
                continue
            destination = min(entry.sources)
            if destination == site_id:
                continue
            self._migrate(site_id, target, destination)
            migrated.append(target)
        return migrated

    def run_round(self, settle_time: float = 50.0) -> None:
        """One round: local traces (distance propagation) + migrations."""
        self.sim.run_gc_round(settle_time)
        for site_id in sorted(self.sim.sites):
            if not self.sim.site(site_id).crashed:
                self.check_migrations(site_id)
            self.sim.run_for(settle_time)
        self.sim.settle(settle_time)

    # -- mechanics ------------------------------------------------------------------------

    def _migrate(self, site_id: SiteId, target: ObjectId, destination: SiteId) -> None:
        site = self.sim.site(site_id)
        obj = site.heap.get(target)
        entry = site.inrefs.require(target)
        sources = tuple(
            (source, distance)
            for source, distance in sorted(entry.sources.items())
        )
        site.send(
            destination,
            MigrateObject(
                old_id=target,
                refs=tuple(obj.refs),
                payload_size=obj.payload_size,
                sources=sources,
            ),
        )
        # The object leaves this site: drop it and its inref; local holders
        # keep dangling references until the destination's patch arrives, so
        # patch ourselves immediately is impossible (new id unknown).  The
        # destination patches us like any other source; meanwhile the object
        # id remains reserved in no heap, and our local trace may run -- any
        # local references to it simply dangle until patched, which is safe
        # because reads go through the patched tables only in this baseline.
        site.heap.delete(target)
        site.inrefs.remove(target)
        self.objects_migrated += 1
        self.units_migrated += max(1, obj.payload_size)
        self.sim.metrics.incr("baseline.migration.objects", 1)
        self.sim.metrics.incr("baseline.migration.units", max(1, obj.payload_size))

    def _on_migrate(self, message: Message) -> None:
        payload: MigrateObject = message.payload
        site = self.sim.site(message.dst)
        adopted = site.heap.alloc(refs=payload.refs, payload_size=payload.payload_size)
        new_id = adopted.oid
        # Rebuild reference-listing state for the adopted object's refs.
        for ref in payload.refs:
            if ref.site != message.dst:
                site.outrefs.ensure(ref, clean=True)
                # The true owner will learn of us via our insert.  Use the
                # normal insert path so source lists stay exact.
                site.send(ref.site, _migration_insert(ref, message.dst))
        # Patch every holder of the old id (including ourselves).
        self._apply_patch(message.dst, payload.old_id, new_id)
        for source, distance in payload.sources:
            if source == message.dst:
                continue
            site.inrefs.ensure(new_id, source=source, distance=distance)
            site.send(source, PatchRefs(old_id=payload.old_id, new_id=new_id))

    def _on_patch(self, message: Message) -> None:
        payload: PatchRefs = message.payload
        self._apply_patch(message.dst, payload.old_id, payload.new_id)

    def _apply_patch(self, site_id: SiteId, old_id: ObjectId, new_id: ObjectId) -> None:
        site = self.sim.site(site_id)
        for obj in site.heap.objects_holding(old_id):
            while obj.holds_ref(old_id):
                obj.remove_ref(old_id)
                obj.add_ref(new_id)
        # Table surgery: the old outref entry (if any) dies; a new one is
        # created unless the object is now local.
        if old_id.site != site_id:
            site.outrefs.remove(old_id)
        if new_id.site != site_id:
            site.outrefs.ensure(new_id, clean=True)


def _migration_insert(ref: ObjectId, holder: SiteId):
    """An insert message equivalent for migration-created outrefs."""
    from ..gc.insert import InsertRequest

    return InsertRequest(target=ref, pin_holder=None)


def _driver(sim: Simulation) -> MigrationCollector:
    return MigrationCollector._create(sim)


register_collector(
    CollectorSpec(
        name="baseline.migration", site_factory=NullCollector, driver_factory=_driver
    )
)
