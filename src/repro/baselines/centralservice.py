"""Central-service cycle detection (Beckerle-Ekanadham [BE86], Ladin-Liskov
[LL92] family).

Each site ships its **inref-to-outref reachability summary** to a designated
service, which assembles the global ioref graph, computes which inrefs are
unreachable from any root, and commands the sites to flag them.  Concretely,
one detection round is:

1. service -> every site: :class:`SummaryRequest` (with a generation);
2. site -> service: :class:`SummaryReply` carrying (a) the outrefs reachable
   from its persistent/variable roots, (b) for *every* inref, the outrefs
   locally reachable from it (note: *full* reachability, not just the
   suspected region -- one of the paper's cost criticisms of
   centralized/forwarding schemes), and (c) the site's local-trace epoch;
3. once **all** sites replied, the service runs the root-reachability fixed
   point over the summary graph and sends each site a :class:`FlagCommand`
   naming its garbage inrefs;
4. a site applies a flag only if its epoch still matches and the inref was
   not barrier-cleaned meanwhile (the epoch guard makes stale summaries
   harmless; with it, a racing mutation merely wastes the round).

Drawbacks reproduced measurably (paper section 7, "Central Service"):

- the service is a performance bottleneck: its message load scales with the
  total ioref population of the system, not with the garbage;
- "cycle collection still depends on timely correspondence between the
  service and all sites": one crashed site (or the service) stalls every
  round, for everyone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.backinfo import TraceEnvironment, compute_outsets_bottom_up
from ..core.distance import trace_clean_phase
from ..core.collector import CollectorSpec, NullCollector, register_collector
from ..ids import ObjectId, SiteId
from ..net.message import Message, Payload
from ..sim.simulation import Simulation
from .registry import DeprecatedDirectInit


@dataclass(frozen=True)
class SummaryRequest(Payload):
    generation: int


@dataclass(frozen=True)
class SummaryReply(Payload):
    generation: int
    epoch: int
    root_outrefs: Tuple[ObjectId, ...]
    # (inref target, outrefs locally reachable from it)
    inref_outsets: Tuple[Tuple[ObjectId, Tuple[ObjectId, ...]], ...]

    def size_units(self) -> int:
        return max(
            1,
            len(self.root_outrefs)
            + sum(1 + len(outset) for _, outset in self.inref_outsets),
        )


@dataclass(frozen=True)
class FlagCommand(Payload):
    generation: int
    epoch: int
    targets: Tuple[ObjectId, ...]

    def size_units(self) -> int:
        return max(1, len(self.targets))


class CentralServiceCollector(DeprecatedDirectInit):
    """A logically central detector fed by per-site reachability summaries."""

    registry_name = "baseline.central"

    def __init__(self, sim: Simulation, service: SiteId):
        self._warn_if_direct()
        self.sim = sim
        self.service = service
        self._generation = 0
        self._replies: Dict[SiteId, SummaryReply] = {}
        self.round_in_progress = False
        self.rounds_completed = 0
        self.inrefs_flagged = 0
        for site in sim.sites.values():
            site.register_handler(SummaryRequest, self._on_request)
            site.register_handler(SummaryReply, self._on_reply)
            site.register_handler(FlagCommand, self._on_flag)

    # -- driving -------------------------------------------------------------------

    def start_round(self) -> None:
        if self.round_in_progress:
            return
        self._generation += 1
        self._replies = {}
        self.round_in_progress = True
        service = self.sim.site(self.service)
        for site_id in sorted(self.sim.sites):
            service.send(site_id, SummaryRequest(generation=self._generation))

    def run_round(self, settle_time: float = 50.0) -> None:
        """Local traces everywhere, then one service round."""
        self.sim.run_gc_round(settle_time)
        self.start_round()
        self.sim.settle(settle_time)

    # -- site side --------------------------------------------------------------------

    def _compute_summary(self, site_id: SiteId) -> SummaryReply:
        site = self.sim.site(site_id)
        # Root-reachable outrefs: a plain clean-phase trace from all roots.
        roots = [(oid, 0) for oid in sorted(site.heap.persistent_roots)]
        roots += [(oid, 0) for oid in sorted(site.heap.variable_roots)]
        clean = trace_clean_phase(
            site.heap, roots, variable_outrefs=sorted(site.variable_outrefs)
        )
        # Full inref -> outref reachability (every inref, nothing skipped):
        # exactly the information the paper says such schemes must maintain.
        env = TraceEnvironment(
            heap=site.heap, clean_objects=set(), is_clean_outref=lambda ref: False
        )
        inref_targets = [
            entry.target for entry in site.inrefs.entries() if not entry.garbage
        ]
        result = compute_outsets_bottom_up(env, sorted(inref_targets))
        self.sim.metrics.incr(
            "baseline.central.summary_scans", result.objects_scanned
        )
        return SummaryReply(
            generation=self._generation,
            epoch=site.collector.traces_run,
            root_outrefs=tuple(sorted(clean.outref_distances)),
            inref_outsets=tuple(
                (target, tuple(sorted(result.outsets.get(target, frozenset()))))
                for target in sorted(inref_targets)
            ),
        )

    def _on_request(self, message: Message) -> None:
        payload: SummaryRequest = message.payload
        if payload.generation != self._generation:
            return
        site = self.sim.site(message.dst)
        site.send(self.service, self._compute_summary(message.dst))

    # -- service side ----------------------------------------------------------------------

    def _on_reply(self, message: Message) -> None:
        payload: SummaryReply = message.payload
        if payload.generation != self._generation or not self.round_in_progress:
            return
        self._replies[message.src] = payload
        if len(self._replies) < len(self.sim.sites):
            return
        garbage_by_site = self._detect()
        service = self.sim.site(self.service)
        for site_id in sorted(garbage_by_site):
            targets = garbage_by_site[site_id]
            if targets:
                service.send(
                    site_id,
                    FlagCommand(
                        generation=self._generation,
                        epoch=self._replies[site_id].epoch,
                        targets=tuple(sorted(targets)),
                    ),
                )
        self.round_in_progress = False
        self.rounds_completed += 1

    def _detect(self) -> Dict[SiteId, Set[ObjectId]]:
        """Root-reachability over the assembled ioref graph.

        Nodes are inref targets (object ids); an outref naming object z *is*
        an edge into inref z.  Roots seed the frontier with their reachable
        outrefs' targets.
        """
        outsets: Dict[ObjectId, Tuple[ObjectId, ...]] = {}
        all_inrefs: Set[ObjectId] = set()
        mentioned: Set[ObjectId] = set()
        frontier: List[ObjectId] = []
        for reply in self._replies.values():
            frontier.extend(reply.root_outrefs)
            mentioned.update(reply.root_outrefs)
            for target, outset in reply.inref_outsets:
                all_inrefs.add(target)
                outsets[target] = outset
                mentioned.update(outset)
        if mentioned - all_inrefs:
            # Some outref's owner has not registered the matching inref yet
            # (an insert is in flight): the snapshot is torn, so its
            # reachability fixed point could miss live paths.  Abort the
            # round rather than risk an unsafe flag.
            self.sim.metrics.incr("baseline.central.torn_rounds")
            return {site_id: set() for site_id in self.sim.sites}
        live: Set[ObjectId] = set()
        while frontier:
            target = frontier.pop()
            if target in live:
                continue
            live.add(target)
            frontier.extend(outsets.get(target, ()))
        garbage_by_site: Dict[SiteId, Set[ObjectId]] = {
            site_id: set() for site_id in self.sim.sites
        }
        for target in all_inrefs - live:
            garbage_by_site[target.site].add(target)
        return garbage_by_site

    # -- flag application ----------------------------------------------------------------------

    def _on_flag(self, message: Message) -> None:
        payload: FlagCommand = message.payload
        site = self.sim.site(message.dst)
        if site.collector.traces_run != payload.epoch:
            # A local trace ran since the summary: the information behind
            # this command is stale; skip the round (conservative).
            self.sim.metrics.incr("baseline.central.stale_flags_skipped")
            return
        threshold = site.inrefs.suspicion_threshold
        for target in payload.targets:
            entry = site.inrefs.get(target)
            if entry is None or entry.garbage:
                continue
            if entry.barrier_clean:
                # Mutator activity touched it since the summary: keep it.
                self.sim.metrics.incr("baseline.central.stale_flags_skipped")
                continue
            entry.garbage = True
            self.inrefs_flagged += 1
            self.sim.metrics.incr("baseline.central.inrefs_flagged")


def _driver(sim: Simulation) -> CentralServiceCollector:
    return CentralServiceCollector._create(sim, sorted(sim.sites)[0])


register_collector(
    CollectorSpec(
        name="baseline.central", site_factory=NullCollector, driver_factory=_driver
    )
)
