"""Site composition: heap + tables + collector + back tracer + handlers."""

from .site import Site

__all__ = ["Site"]
