"""One site of the distributed object store.

A :class:`Site` wires together a heap, the inref/outref tables, the local
collector, the distributed cycle-collection strategy
(:class:`repro.core.collector.Collector` -- the back tracer by default),
the transfer barrier, and the message handlers for every protocol in the
system.  It also owns the site-local policies the paper describes:

- periodic local traces with jitter (section 4.7 relies on the resulting
  timing spread to make concurrent back traces on one cycle unlikely);
- the suspicion-trigger check after each local trace (section 4.3),
  delegated to the cycle-collector strategy;
- the insert barrier on every outgoing reference transfer (section 6.1.2);
- deferral of mutator heap writes while a non-atomic local trace is
  in progress (section 6.2) -- incoming *messages* are still handled
  immediately against the old copy of the back information.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import GcConfig
from ..errors import GcInvariantError
from ..core.backtrace.messages import (
    BackCall,
    BackCallBatch,
    BackOutcome,
    BackReply,
    BackReplyBatch,
    TraceOutcome,
)
from ..core.barriers import TransferBarrier
from ..core.collector import Collector, resolve_collector
from ..gc.insert import InsertDone, InsertRequest, UnpinRequest
from ..gc.inrefs import InrefTable
from ..gc.localtrace import LocalCollector, LocalTraceResult
from ..gc.outrefs import OutrefTable
from ..gc.update import (
    UpdateAck,
    UpdateDeltaPayload,
    UpdatePayload,
    UpdateRefreshRequest,
    apply_update,
    apply_update_delta,
)
from ..ids import ObjectId, SiteId, TraceId
from ..metrics import MetricsRecorder, names
from ..mutator.ops import MutatorHop, RemoteCopy
from ..net.message import Message, Payload
from ..net.network import Network
from ..net.reliability import DedupWindow
from ..sim.scheduler import EventHandle, Scheduler
from ..store.heap import Heap

HopCallback = Callable[[str, ObjectId], None]
OutcomeCallback = Callable[[SiteId, TraceId, TraceOutcome], None]

#: Mutation-protocol payloads stamped with a per-(sender, receiver) sequence
#: number by :meth:`Site.send` and deduplicated by :meth:`Site.receive`.  A
#: replayed delivery of any of these is *not* idempotent on its own: inserts
#: re-run the transfer barrier and double-release pins, remote copies
#: double-store references, hops fork phantom mutators.
_SEQUENCED_MUTATIONS = (InsertRequest, InsertDone, UnpinRequest, RemoteCopy, MutatorHop)


class Site:
    """A single site: object store, collectors, and protocol handlers."""

    def __init__(
        self,
        site_id: SiteId,
        scheduler: Scheduler,
        network: Network,
        config: GcConfig,
        metrics: Optional[MetricsRecorder] = None,
        jitter_rng=None,
        auto_gc: bool = True,
        on_mutator_hop: Optional[HopCallback] = None,
        on_trace_outcome: Optional[OutcomeCallback] = None,
        collector_factory: Optional[Callable[["Site"], Collector]] = None,
    ):
        self.site_id = site_id
        self.scheduler = scheduler
        self.network = network
        self.config = config
        self.metrics = metrics or MetricsRecorder()
        if config.delta_updates and not config.reliable_updates:
            # Deltas are diffs against in-order state; without the reliable
            # channel there is no ordering to anchor them to.  The collector
            # makes the same check and builds legacy full updates instead.
            warnings.warn(
                f"site {site_id}: delta_updates requires reliable_updates; "
                "falling back to full update snapshots",
                RuntimeWarning,
                stacklevel=2,
            )
        self._jitter_rng = jitter_rng
        self.on_mutator_hop = on_mutator_hop
        self.on_trace_outcome = on_trace_outcome

        self.heap = Heap(site_id)
        self.inrefs = InrefTable(
            site_id,
            suspicion_threshold=config.suspicion_threshold,
            initial_back_threshold=config.initial_back_threshold,
        )
        self.outrefs = OutrefTable(
            site_id, initial_back_threshold=config.initial_back_threshold
        )
        self.collector = LocalCollector(
            self.heap, self.inrefs, self.outrefs, config, metrics=self.metrics
        )
        # The distributed cycle-collection strategy.  The factory is injected
        # by Simulation.add_site (resolved once per simulation from
        # GcConfig.collector); a bare Site falls back to resolving the
        # registry itself so direct construction keeps working.
        if collector_factory is None:
            collector_factory = resolve_collector(config.collector).site_factory
        self.cycle_collector: Collector = collector_factory(self)
        self.barrier = TransferBarrier(
            self.inrefs,
            self.outrefs,
            engine=getattr(self.cycle_collector, "engine", None),
            metrics=self.metrics,
            enabled=config.enable_transfer_barrier,
        )
        self.tuner = None
        if config.enable_threshold_tuning:
            from ..core.tuning import ThresholdTuner

            self.tuner = ThresholdTuner(
                self.inrefs,
                outrefs=self.outrefs,
                assumed_cycle_length=config.assumed_cycle_length,
                metrics=self.metrics,
            )

        self._sender = None
        if config.defer_messages:
            from ..net.batching import DeferringSender

            self._sender = DeferringSender(
                site_id,
                scheduler,
                raw_send=self._raw_send,
                deferrable=(
                    BackCall,
                    BackCallBatch,
                    BackReply,
                    BackReplyBatch,
                    BackOutcome,
                    UpdatePayload,
                    UpdateDeltaPayload,
                    UpdateRefreshRequest,
                    UpdateAck,
                    InsertRequest,
                    InsertDone,
                    UnpinRequest,
                ),
                delay=config.defer_delay,
                metrics=self.metrics,
            )

        self.crashed = False
        self._tracing = False
        # Objects of ours pinned while a message carrying their reference is
        # in flight (the insert barrier, applied to the owner's own sends).
        self._send_pins: Dict[ObjectId, int] = {}
        # Deferred heap writes: ("add"|"remove", holder, target) tuples kept
        # inspectable so the omniscient oracle can treat references parked in
        # a pending add as roots.
        self._pending_writes: List[tuple] = []
        self._variable_outrefs: Dict[ObjectId, int] = {}
        self._gc_timer = None
        # At-least-once protocol state (section 4.6 hardening): per-peer
        # sequence counters for outgoing traffic, per-peer dedup windows for
        # incoming traffic, and the unacked-update retransmission ledger
        # dst -> {seq: (retransmit attempts so far, pending timer)}.
        self._mutation_seq: Dict[SiteId, int] = {}
        self._update_seq: Dict[SiteId, int] = {}
        self._pending_updates: Dict[SiteId, Dict[int, Tuple[int, EventHandle]]] = {}
        self._mutation_dedup: Dict[SiteId, DedupWindow] = {}
        self._update_dedup: Dict[SiteId, DedupWindow] = {}
        # Peers whose retransmission chain was abandoned: their view of our
        # outref distances may be arbitrarily stale, which can freeze distance
        # propagation system-wide (each side waits for the other to change).
        # The next GC tick pushes them a fresh full update -- even a tick
        # whose local trace is skipped by the incremental planner.
        self._desynced_peers: Set[SiteId] = set()
        # Delta-update ordering state (``GcConfig.delta_updates``): per peer,
        # the sequence number of the last update applied *in order* (the
        # anchor a delta must sit exactly one past), and the peers whose
        # chain gapped -- their deltas are rejected until a full update
        # re-anchors them.
        self._update_anchor: Dict[SiteId, int] = {}
        self._update_unanchored: Set[SiteId] = set()
        self._handlers = {
            UpdatePayload: self._on_update,
            UpdateDeltaPayload: self._on_update_delta,
            UpdateRefreshRequest: self._on_update_refresh_request,
            UpdateAck: self._on_update_ack,
            InsertRequest: self._on_insert_request,
            InsertDone: self._on_insert_done,
            UnpinRequest: self._on_unpin,
            MutatorHop: self._on_mutator_hop,
            RemoteCopy: self._on_remote_copy,
        }
        self._handlers.update(self.cycle_collector.handlers())
        # Payloads needing seq stamping/dedup: the base mutation protocol
        # plus whatever the cycle collector declares (e.g. credit-carrying
        # termination messages, whose redelivery is not idempotent).
        self._sequenced = _SEQUENCED_MUTATIONS + tuple(
            self.cycle_collector.sequenced_payload_types()
        )
        # Per-concrete-payload-type dispatch table: (handler, is_sequenced,
        # is_bundle), resolved lazily by one real isinstance walk per type,
        # then reused for every send/receive of that type.  Cleared whenever
        # the handler set changes.
        self._dispatch: Dict[type, Tuple[Optional[Callable], bool, bool]] = {}
        if auto_gc:
            self.schedule_next_trace()

    # -- messaging ---------------------------------------------------------------

    def _resolve_dispatch(
        self, payload_type: type
    ) -> Tuple[Optional[Callable], bool, bool]:
        """Classify one concrete payload type for send/receive dispatch.

        Handler lookup is by exact type (the historical contract); the
        sequenced/bundle flags use subclass semantics, matching what the
        per-message ``isinstance`` checks used to decide.
        """
        from ..net.batching import Bundle

        entry = (
            self._handlers.get(payload_type),
            issubclass(payload_type, self._sequenced),
            issubclass(payload_type, Bundle),
        )
        self._dispatch[payload_type] = entry
        return entry

    def send(self, dst: SiteId, payload: Payload) -> None:
        if self.crashed:
            return
        entry = self._dispatch.get(payload.__class__)
        if entry is None:
            entry = self._resolve_dispatch(payload.__class__)
        if entry[1] and payload.seq < 0:
            seq = self._mutation_seq.get(dst, 0) + 1
            self._mutation_seq[dst] = seq
            payload = replace(payload, seq=seq)
        if self._sender is not None:
            self._sender.send(dst, payload)
        else:
            self.network.send(self.site_id, dst, payload)

    def _raw_send(self, dst: SiteId, payload: Payload) -> None:
        if not self.crashed:
            self.network.send(self.site_id, dst, payload)

    def receive(self, message: Message) -> None:
        """Network delivery entry point."""
        if self.crashed:
            return
        payload = message.payload
        entry = self._dispatch.get(payload.__class__)
        if entry is None:
            entry = self._resolve_dispatch(payload.__class__)
        handler, is_sequenced, is_bundle = entry
        if is_bundle:
            for inner in payload.payloads:
                self.receive(Message(src=message.src, dst=message.dst, payload=inner))
            return
        if is_sequenced and payload.seq > 0:
            window = self._mutation_dedup.setdefault(message.src, DedupWindow())
            if window.seen(payload.seq):
                self.metrics.incr(names.dup_suppressed(message.kind))
                return
        if handler is None:
            raise TypeError(f"site {self.site_id}: no handler for {message.kind}")
        handler(message)

    def register_handler(self, payload_type, handler) -> None:
        """Extension point used by the baseline collectors."""
        self._handlers[payload_type] = handler
        # Any cached classification of this type (including a cached "no
        # handler") is now stale.
        self._dispatch.clear()

    @property
    def engine(self):
        """The back-trace engine, when the active backend has one.

        Kept as a compatibility accessor for the large body of tests,
        examples, and the trace-log recorder that predate the strategy
        boundary.  Raises :class:`AttributeError` under backends without an
        engine so ``hasattr`` probes keep working.
        """
        engine = getattr(self.cycle_collector, "engine", None)
        if engine is None:
            raise AttributeError(
                f"site {self.site_id}: collector "
                f"{self.cycle_collector.name!r} has no back-trace engine"
            )
        return engine

    # -- crash / recovery ------------------------------------------------------------

    def crash(self) -> None:
        """Stop processing; in-flight and future messages to us are lost."""
        self.crashed = True
        self.network.crash(self.site_id)

    def recover(self) -> None:
        self.crashed = False
        self.network.recover(self.site_id)
        self.cycle_collector.on_recover()
        self.schedule_next_trace()

    # -- local tracing ------------------------------------------------------------------

    def stop_auto_gc(self) -> None:
        """Cancel the periodic local-trace timer (manual control resumes)."""
        if self._gc_timer is not None:
            self._gc_timer.cancel()
            self._gc_timer = None

    def schedule_next_trace(self) -> None:
        if self._gc_timer is not None:
            self._gc_timer.cancel()
        jitter = 0.0
        if self._jitter_rng is not None and self.config.local_trace_period_jitter:
            jitter = self._jitter_rng.uniform(
                0.0, self.config.local_trace_period_jitter
            )
        delay = self.config.local_trace_period + jitter
        self._gc_timer = self.scheduler.schedule(
            delay, self._gc_tick, label=f"gc-tick:{self.site_id}", site=self.site_id
        )

    def _gc_tick(self) -> None:
        self._gc_timer = None
        if not self.crashed and not self._tracing:
            self.run_local_trace()
        self.schedule_next_trace()

    def run_local_trace(self, force_full: bool = False) -> Optional[LocalTraceResult]:
        """Run one local trace (non-atomic if configured so).

        With ``incremental_traces`` on, the collector's dirty-tracking layer
        may resolve the tick without retracing: a **skip** when nothing
        relevant changed since the last committed trace (no recompute, no
        update messages -- observationally identical to a redundant full
        trace), or a distance-only **fast path** when only suspected-inref
        distances moved.  ``force_full`` bypasses the planner (used by tests
        and oracles that want a guaranteed fresh trace).
        """
        if self.crashed or self._tracing:
            return None
        variable_outrefs = set(self._variable_outrefs)
        mode = "full"
        if self.config.incremental_traces and not force_full:
            mode = self.collector.plan_trace(variable_outrefs)
        if mode == "skip":
            self.collector.record_skip()
            # A skipped trace sends no updates, so peers that lost our
            # earlier ones must still be repaired here or the system can
            # deadlock with every site skipping and no one resyncing.
            self._flush_desynced_peers()
            # Triggers still run: the previous check may have been capped by
            # max_traces_per_trigger_check, and back thresholds only ratchet
            # when traces actually visit -- eligibility can persist unchanged.
            self.check_backtrace_triggers()
            return None
        result = self.collector.compute(variable_outrefs=variable_outrefs, mode=mode)
        if self.config.local_trace_duration > 0:
            self._tracing = True
            self.barrier.begin_trace_window()
            self.scheduler.schedule(
                self.config.local_trace_duration,
                lambda: self._commit_trace(result),
                label=f"gc-commit:{self.site_id}",
                site=self.site_id,
            )
            return result
        self._finalize_trace(result, replay=())
        return result

    def _commit_trace(self, result: LocalTraceResult) -> None:
        replay = self.barrier.end_trace_window()
        self._tracing = False
        if self.crashed:
            return
        self._finalize_trace(result, replay=replay)
        self._flush_pending_writes()

    def _finalize_trace(self, result: LocalTraceResult, replay) -> None:
        self.collector.commit(result, replay_barrier_inrefs=replay)
        for dst, payload in sorted(result.updates_by_site.items()):
            self._send_update(dst, payload)
        # Only a *full* update this tick repairs a desynced peer; a delta is
        # computed against state the peer may not have.
        self._flush_desynced_peers(
            skip={dst for dst, p in result.updates_by_site.items() if p.full}
        )
        self.check_backtrace_triggers()

    # -- reliable update channel (at-least-once, section 4.6 hardening) ----------------

    def _send_update(self, dst: SiteId, payload: UpdatePayload, attempts: int = 0) -> None:
        """Send one post-trace update, retransmitted until acknowledged.

        With ``reliable_updates`` off this is a plain send.  Otherwise the
        payload is stamped with the next per-destination sequence number and
        a retransmission timer is armed; ``attempts`` counts retransmissions
        already spent on this repair and doubles the timer (capped at 8x).
        """
        if not self.config.reliable_updates:
            self.send(dst, payload)
            return
        seq = self._update_seq.get(dst, 0) + 1
        self._update_seq[dst] = seq
        payload = replace(payload, seq=seq)
        pending = self._pending_updates.setdefault(dst, {})
        if payload.full:
            # A full update is a complete state transfer: it supersedes every
            # earlier unacked update to this destination, so their pending
            # retransmissions are absorbed rather than retried.
            for old_seq in [s for s in pending if s < seq]:
                pending.pop(old_seq)[1].cancel()
        delay = self.config.update_retransmit_timeout * (2 ** min(attempts, 3))
        timer = self.scheduler.schedule(
            delay,
            lambda: self._retransmit_update(dst, seq),
            label=f"update-retransmit:{self.site_id}->{dst}",
            site=self.site_id,
        )
        pending[seq] = (attempts, timer)
        self.send(dst, payload)

    def _retransmit_update(self, dst: SiteId, seq: int) -> None:
        pending = self._pending_updates.get(dst)
        if pending is None or seq not in pending:
            return  # acked (or absorbed by a full) in the meantime
        attempts = pending.pop(seq)[0] + 1
        if not pending:
            self._pending_updates.pop(dst, None)
        if self.crashed:
            return
        if attempts > self.config.update_retransmit_limit:
            # Give up on *this chain*: the peer is gone or the partition
            # outlives our patience.  Safe -- a missed update only delays
            # collection -- but the peer is now marked desynced so the next
            # GC tick restarts the repair with a fresh full update (and a
            # fresh retransmission budget).
            self.metrics.incr(names.UPDATE_RETRANSMITS_ABANDONED)
            self._desynced_peers.add(dst)
            return
        self.metrics.incr(names.UPDATE_RETRANSMITS)
        # Resending the original delta would be wrong: newer deltas may have
        # been delivered ahead of the retransmission (FIFO places it *after*
        # them), so its content is folded into a fresh full state transfer.
        self._send_update(dst, self._build_full_update(dst), attempts=attempts)

    def _flush_desynced_peers(self, skip: Optional[Set[SiteId]] = None) -> None:
        """Resend a full update to every peer whose repair chain gave up.

        ``skip`` names destinations this tick already updated through the
        normal trace path (a second full would be redundant traffic).  Peers
        still unreachable will abandon again and re-enter the set, so the
        retry cadence is one chain per GC tick -- bounded, and it stops the
        moment an ack arrives.
        """
        if not self._desynced_peers:
            return
        peers = sorted(self._desynced_peers)
        self._desynced_peers.clear()
        for dst in peers:
            if skip is not None and dst in skip:
                continue
            self._send_update(dst, self._build_full_update(dst))

    def _build_full_update(self, dst: SiteId) -> UpdatePayload:
        """The complete current outref list toward ``dst`` (idempotent).

        Delegates to the collector, which owns the per-destination shipped
        state that delta mode must re-base on every full state transfer.
        """
        return self.collector.build_full_update(dst)

    @property
    def is_tracing(self) -> bool:
        return self._tracing

    # -- suspicion triggering (section 4.3) -----------------------------------------------

    def check_backtrace_triggers(self) -> List[ObjectId]:
        """Run the cycle collector's suspicion-trigger scan.

        For the default back tracer this starts a back trace from each
        suspected outref past its threshold; other backends start their own
        collection activity.  The historical name is kept -- this is the
        section 4.3 trigger placement, called after every local trace or
        skipped tick.
        """
        return self.cycle_collector.check_triggers()

    def quiet_gc_ticks(self) -> int:
        """Lower bound on upcoming gc ticks that provably send nothing.

        The shard workers' earliest-output-time scan calls this to look
        *through* quiet tick chains: a tick is quiet only if the planner
        would skip it (delegated to
        :meth:`LocalCollector.predict_quiet_ticks`) AND its skip-path side
        channels are inert -- no desynced peer to repair in
        ``_flush_desynced_peers`` and no trigger-eligible suspect (the
        cycle collector's side-effect-free prediction).  Zero whenever in
        doubt; under-prediction costs a window, never correctness.
        """
        if self.crashed or self._tracing or self._desynced_peers:
            return 0
        if not self.cycle_collector.predict_quiet():
            return 0
        return self.collector.predict_quiet_ticks(self._variable_outrefs)

    def _trace_outcome(self, trace_id: TraceId, verdict: TraceOutcome) -> None:
        if self.on_trace_outcome is not None:
            self.on_trace_outcome(self.site_id, trace_id, verdict)

    def _trace_outcome_applied(
        self, trace_id: TraceId, verdict: TraceOutcome, visited_here: int
    ) -> None:
        # Every participant site observes the verdict of traces that passed
        # through it -- the "suspects found live" signal of section 3.
        if self.tuner is not None and visited_here > 0:
            self.tuner.observe(verdict)

    # -- mutator-facing API --------------------------------------------------------------------
    #
    # These are the operations an application running *at this site* may
    # perform.  Heap writes are deferred while a local trace is computing;
    # table updates and barriers apply immediately (section 6.2).

    def _deferred(self, write: tuple) -> None:
        if self._tracing:
            self._pending_writes.append(write)
        else:
            self._apply_write(write)

    def _apply_write(self, write: tuple) -> None:
        kind, holder, target = write
        if kind == "add":
            self._apply_add_ref(holder, target)
        else:
            self._apply_remove_ref(holder, target)

    def _flush_pending_writes(self) -> None:
        pending, self._pending_writes = self._pending_writes, []
        for write in pending:
            self._apply_write(write)

    def pending_carried_refs(self) -> List[ObjectId]:
        """References held only inside deferred writes (oracle roots)."""
        refs: List[ObjectId] = []
        for kind, holder, target in self._pending_writes:
            if kind == "add":
                refs.append(holder)
                refs.append(target)
        return refs

    def mutator_add_ref(
        self, holder: ObjectId, target: ObjectId, insert_custody_taken: bool = False
    ) -> None:
        """Store ``target`` into local object ``holder`` (local copy).

        Per section 6.1.1, a local copy needs no barrier action at copy time:
        the transfer barrier already fired when the mutator traversed into
        this site.  A remote target normally already has an outref here (the
        mutator read it out of a local object or received it via the
        remote-copy protocol).  The exception is a reference the mutator
        carried here in a variable (section 6.3): materializing it creates a
        brand-new inter-site reference, so the full insert protocol runs --
        a pinned clean outref plus an insert to the owner.  Callers that
        pre-pinned the object at its owner (:meth:`take_insert_custody`) pass
        ``insert_custody_taken=True`` so the owner releases that pin once the
        insert roots the object through the new inref.
        """
        if target.site != self.site_id and target not in self.outrefs:
            entry = self.outrefs.ensure(target, clean=True)
            entry.pin()
            self.metrics.incr("barrier.insert_pins")
            self.send(
                target.site,
                InsertRequest(
                    target=target,
                    pin_holder=self.site_id,
                    release_owner_custody=insert_custody_taken,
                ),
            )
        self._deferred(("add", holder, target))

    def _apply_add_ref(self, holder: ObjectId, target: ObjectId) -> None:
        obj = self.heap.maybe_get(holder)
        if obj is None:
            self.metrics.incr("mutator.writes_to_dead_objects")
            return
        obj.add_ref(target)

    def mutator_remove_ref(self, holder: ObjectId, target: ObjectId) -> None:
        """Delete one occurrence of ``target`` from ``holder``.

        Deletions need no barrier (section 6.1: ignoring them preserves
        safety; the next local trace reflects them).
        """
        self._deferred(("remove", holder, target))

    def _apply_remove_ref(self, holder: ObjectId, target: ObjectId) -> None:
        obj = self.heap.maybe_get(holder)
        if obj is None or not obj.holds_ref(target):
            self.metrics.incr("mutator.writes_to_dead_objects")
            return
        obj.remove_ref(target)

    def mutator_send_ref(self, dst: SiteId, ref: ObjectId, dest_holder: ObjectId) -> None:
        """Copy ``ref`` into ``dest_holder`` at site ``dst`` (remote copy).

        Applies the insert barrier: if ``ref`` is remote to us we pin our
        outref until its owner confirms the insert (or the destination tells
        us no insert was needed).  If we own ``ref`` we pin the object itself
        instead -- the destination's insert (or no-insert ack) releases it.
        Either way the object named by ``ref`` cannot be collected while the
        reference is in flight, which is the remote safety invariant of
        section 6.1.2.
        """
        if ref.site == self.site_id:
            self._send_pins[ref] = self._send_pins.get(ref, 0) + 1
            self.heap.pin_variable(ref)
            # Conservatively treat handing out our own object as a transfer
            # touching its inref (it will gain a holder shortly).
            self.cycle_collector.on_reference_arrival(ref)
            self.barrier.on_reference_arrival(ref)
        else:
            entry = self.outrefs.get(ref)
            if entry is None:
                entry = self.outrefs.ensure(ref, clean=True)
            entry.pin()
        pin_holder = self.site_id
        self.metrics.incr("barrier.insert_pins")
        self.send(dst, RemoteCopy(ref=ref, dest_holder=dest_holder, pin_holder=pin_holder))

    def mutator_hop(self, mutator: str, target: ObjectId) -> None:
        """The mutator traverses an inter-site reference to ``target``."""
        self.send(target.site, MutatorHop(mutator=mutator, target=target))

    # -- variables (application roots, section 6.3) ------------------------------------------------

    def take_insert_custody(self, target: ObjectId) -> None:
        """Pin a local object while a materializing insert is in flight.

        Called (through the simulator's application-session abstraction) by a
        mutator about to store a variable-held reference to our object at
        another site; the matching :class:`InsertRequest` with
        ``release_owner_custody`` releases the pin once the new inref exists.
        """
        if target.site != self.site_id:
            raise GcInvariantError(f"custody pin for non-local {target}")
        self._send_pins[target] = self._send_pins.get(target, 0) + 1
        self.heap.pin_variable(target)

    def pin_variable(self, ref: ObjectId) -> None:
        """A mutator variable now holds ``ref``."""
        if ref.site == self.site_id:
            self.heap.pin_variable(ref)
        else:
            self._variable_outrefs[ref] = self._variable_outrefs.get(ref, 0) + 1
            if ref not in self.outrefs:
                self.outrefs.ensure(ref, clean=True)

    def unpin_variable(self, ref: ObjectId) -> None:
        if ref.site == self.site_id:
            self.heap.unpin_variable(ref)
        else:
            count = self._variable_outrefs.get(ref, 0)
            if count <= 1:
                self._variable_outrefs.pop(ref, None)
            else:
                self._variable_outrefs[ref] = count - 1

    @property
    def variable_outrefs(self) -> Set[ObjectId]:
        return set(self._variable_outrefs)

    # -- handlers ------------------------------------------------------------------------------------

    def _on_update(self, message: Message) -> None:
        payload: UpdatePayload = message.payload
        if payload.seq > 0:
            # Ack every receipt, duplicates included -- the previous ack may
            # itself have been lost, and re-acking is what stops the sender's
            # retransmission ladder.
            self.send(message.src, UpdateAck(seq=payload.seq))
            window = self._update_dedup.setdefault(message.src, DedupWindow())
            if window.seen(payload.seq):
                self.metrics.incr(names.dup_suppressed("UpdatePayload"))
                return
        apply_update(self.inrefs, message.src, payload)
        if payload.seq > 0:
            if payload.full:
                # A full update is self-contained state: it re-anchors the
                # delta chain regardless of what was missed before it.
                self._update_anchor[message.src] = payload.seq
                self._update_unanchored.discard(message.src)
            elif payload.seq == self._update_anchor.get(message.src, 0) + 1:
                self._update_anchor[message.src] = payload.seq

    def _on_update_delta(self, message: Message) -> None:
        payload: UpdateDeltaPayload = message.payload
        if payload.seq > 0:
            window = self._update_dedup.setdefault(message.src, DedupWindow())
            if window.was_seen(payload.seq):
                # Duplicate of a delta we *applied* (gap-rejected sequences
                # are never recorded): re-ack to stop the retransmission
                # ladder, change nothing.
                self.send(message.src, UpdateAck(seq=payload.seq))
                self.metrics.incr(names.dup_suppressed("UpdateDeltaPayload"))
                return
            anchored = message.src not in self._update_unanchored
            expected = self._update_anchor.get(message.src, 0) + 1
            if not anchored or payload.seq != expected:
                # Gap: this delta was diffed against state we never applied.
                # Discard it and ask for a state transfer.  Deliberately NOT
                # acked and NOT recorded in the dedup window -- if the
                # refresh request is lost, the sender's retransmission ladder
                # (which resends *full* updates) is the backstop that
                # eventually re-anchors us, and it only keeps running while
                # the sequence stays unacked.
                self._update_unanchored.add(message.src)
                self.metrics.incr(names.UPDATE_GAPS_DETECTED)
                self.metrics.incr(names.UPDATE_REFRESHES_REQUESTED)
                self.send(message.src, UpdateRefreshRequest())
                return
            window.seen(payload.seq)
            self.send(message.src, UpdateAck(seq=payload.seq))
            self._update_anchor[message.src] = payload.seq
        apply_update_delta(self.inrefs, message.src, payload)

    def _on_update_refresh_request(self, message: Message) -> None:
        self.metrics.incr(names.UPDATE_REFRESHES_SERVED)
        self._send_update(message.src, self._build_full_update(message.src))

    def _on_update_ack(self, message: Message) -> None:
        pending = self._pending_updates.get(message.src)
        if not pending:
            return
        entry = pending.pop(message.payload.seq, None)
        if entry is not None:
            entry[1].cancel()
        if not pending:
            self._pending_updates.pop(message.src, None)

    def _on_insert_request(self, message: Message) -> None:
        payload: InsertRequest = message.payload
        if not self.heap.contains(payload.target):
            # The object is already gone: the sender's reference dangles into
            # garbage (its holder must itself be unreachable).  Registering a
            # source for a nonexistent object would resurrect nothing.
            if payload.pin_holder is not None and payload.pin_holder != self.site_id:
                self.send(payload.pin_holder, InsertDone(target=payload.target))
            return
        # The new holder is the sender of the insert (section 2): record it
        # with the conservative new-source distance of 1, then apply the
        # transfer barrier to the inref (section 6.1.2 case 4).
        self.cycle_collector.on_reference_arrival(payload.target)
        self.inrefs.ensure(payload.target, source=message.src, distance=1)
        self.barrier.on_reference_arrival(payload.target)
        if payload.release_owner_custody:
            self._release_pin(payload.target)
        if payload.pin_holder is not None and payload.pin_holder != self.site_id:
            self.send(payload.pin_holder, InsertDone(target=payload.target))
        elif payload.pin_holder == self.site_id:
            self._release_pin(payload.target)

    def _on_insert_done(self, message: Message) -> None:
        self._release_pin(message.payload.target)

    def _on_unpin(self, message: Message) -> None:
        self._release_pin(message.payload.target)

    def _release_pin(self, target: ObjectId) -> None:
        if target.site == self.site_id:
            count = self._send_pins.get(target, 0)
            if count > 0:
                if count == 1:
                    self._send_pins.pop(target)
                else:
                    self._send_pins[target] = count - 1
                self.heap.unpin_variable(target)
            return
        entry = self.outrefs.get(target)
        if entry is not None and entry.pin_count > 0:
            entry.unpin()

    def _on_mutator_hop(self, message: Message) -> None:
        payload: MutatorHop = message.payload
        # Transfer barrier fires before the mutator proceeds (section 6.1.1).
        self.cycle_collector.on_reference_arrival(payload.target)
        self.barrier.on_reference_arrival(payload.target)
        if self.on_mutator_hop is not None:
            self.on_mutator_hop(payload.mutator, payload.target)

    def _on_remote_copy(self, message: Message) -> None:
        payload: RemoteCopy = message.payload
        ref = payload.ref
        if ref.site == self.site_id:
            # Case 1: we own the object -- the transfer barrier applies.
            self.cycle_collector.on_reference_arrival(ref)
            self.barrier.on_reference_arrival(ref)
            # The sender held (an outref for) the reference, so it is already
            # in our source list unless it owned a transient copy; make sure.
            if message.src != self.site_id:
                self.inrefs.ensure(ref, source=message.src, distance=1)
            self._maybe_unpin_sender(payload)
        else:
            entry = self.outrefs.get(ref)
            if entry is not None:
                # Cases 2 and 3: clean a suspected outref; nothing otherwise.
                if not entry.is_clean:
                    self.cycle_collector.on_outref_cleaned(ref)
                    self.barrier.clean_outref(ref)
                self._maybe_unpin_sender(payload)
            else:
                # Case 4: create a clean outref and tell the owner.
                self.outrefs.ensure(ref, clean=True)
                self.metrics.incr("gc.inserts_sent")
                self.send(
                    ref.site,
                    InsertRequest(target=ref, pin_holder=payload.pin_holder),
                )
        self._deferred(("add", payload.dest_holder, ref))

    def _maybe_unpin_sender(self, payload: RemoteCopy) -> None:
        if payload.pin_holder is None:
            return
        if payload.pin_holder == self.site_id:
            self._release_pin(payload.ref)
        else:
            self.send(payload.pin_holder, UnpinRequest(target=payload.ref))

    # -- introspection -------------------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "objects": len(self.heap),
            "inrefs": len(self.inrefs),
            "outrefs": len(self.outrefs),
            "allocated": self.heap.objects_allocated,
            "collected": self.heap.objects_collected,
        }

    def collector_stats(self) -> Dict[str, object]:
        """The cycle-collection backend's name and counters."""
        stats: Dict[str, object] = {"collector": self.cycle_collector.name}
        stats.update(self.cycle_collector.stats())
        return stats
