"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulation was driven into an invalid state."""


class SchedulerError(SimulationError):
    """An event was scheduled or cancelled incorrectly."""


class NetworkError(SimulationError):
    """A message could not be routed or addressed."""


class UnknownSiteError(NetworkError):
    """A message was addressed to a site id that does not exist."""


class HeapError(ReproError):
    """An object-store operation was invalid."""


class UnknownObjectError(HeapError):
    """An object id does not name an object on this heap."""


class NotLocalError(HeapError):
    """An operation required a local object but got a remote reference."""


class GcError(ReproError):
    """A garbage-collection protocol invariant was violated."""


class GcInvariantError(GcError):
    """An internal safety or bookkeeping invariant failed.

    These indicate bugs in the collector, never user error; tests assert they
    are not raised during randomized stress runs.
    """


class BackTraceError(GcError):
    """The back-tracing protocol was driven into an invalid state."""


class MutatorError(ReproError):
    """An application (mutator) operation was invalid."""


class OracleError(ReproError):
    """The omniscient reachability oracle detected an inconsistency.

    Raised by test infrastructure when the collector violates safety (a live
    object was collected) -- the single most important failure in the system.
    """
