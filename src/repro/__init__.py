"""repro: a reproduction of Maheshwari & Liskov, "Collecting Distributed
Garbage Cycles by Back Tracing" (PODC 1997).

The library simulates a distributed object store whose sites collect garbage
by local tracing plus inter-site reference listing, and implements the
paper's contribution on top: the distance heuristic for suspecting cyclic
garbage and the back-tracing protocol that confirms and collects it -- with
the locality property the paper is about (collecting a cycle involves only
the sites containing it).

Quickstart::

    from repro import Simulation, SimulationConfig
    from repro.workloads import build_ring_cycle
    from repro.analysis import Oracle

    sim = Simulation(SimulationConfig(seed=1))
    sim.add_sites(["P", "Q"], auto_gc=False)
    workload = build_ring_cycle(sim, ["P", "Q"])
    workload.make_garbage(sim)         # cut the root edge: cycle is garbage
    for _ in range(20):
        sim.run_gc_round()             # local traces + back tracing
    assert not Oracle(sim).garbage_set()
"""

from .config import GcConfig, NetworkConfig, SimulationConfig
from .errors import ReproError
from .ids import FrameId, ObjectId, SiteId, TraceId
from .sim.simulation import Simulation
from .sim.parallel import ParallelSimulation
from .net.faults import FaultPlan, LinkFault, PartitionWindow, SiteCrash
from .site.site import Site
from .core.backtrace.messages import TraceOutcome

__version__ = "1.0.0"

__all__ = [
    "GcConfig",
    "NetworkConfig",
    "SimulationConfig",
    "ReproError",
    "ObjectId",
    "SiteId",
    "TraceId",
    "FrameId",
    "FaultPlan",
    "LinkFault",
    "PartitionWindow",
    "SiteCrash",
    "Simulation",
    "ParallelSimulation",
    "Site",
    "TraceOutcome",
    "__version__",
]
