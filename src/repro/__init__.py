"""repro: a reproduction of Maheshwari & Liskov, "Collecting Distributed
Garbage Cycles by Back Tracing" (PODC 1997).

The library simulates a distributed object store whose sites collect garbage
by local tracing plus inter-site reference listing, and implements the
paper's contribution on top: the distance heuristic for suspecting cyclic
garbage and the back-tracing protocol that confirms and collects it -- with
the locality property the paper is about (collecting a cycle involves only
the sites containing it).

Quickstart (the stable facade lives in :mod:`repro.api` and is re-exported
here)::

    from repro.api import Simulation, SimulationConfig
    from repro.workloads import build_ring_cycle
    from repro.analysis import Oracle

    sim = Simulation.create(SimulationConfig(seed=1))
    sim.add_sites(["P", "Q"], auto_gc=False)
    workload = build_ring_cycle(sim, ["P", "Q"])
    workload.make_garbage(sim)         # cut the root edge: cycle is garbage
    for _ in range(20):
        sim.run_gc_round()             # local traces + back tracing
    assert not Oracle(sim).garbage_set()

Set ``GcConfig(collector="termination")`` to run the same experiment under
the rival termination-detection backend; ``python -m repro diff`` cross-runs
both and oracle-checks that they reclaim identical garbage.
"""

from .api import (
    Collector,
    CollectorSpec,
    ConfigError,
    FaultPlan,
    FrameId,
    GcConfig,
    LinkFault,
    NetworkConfig,
    ObjectId,
    ParallelSimulation,
    PartitionWindow,
    ReproError,
    Simulation,
    SimulationConfig,
    SimulationError,
    Site,
    SiteCrash,
    SiteId,
    TraceId,
    TraceOutcome,
    available_collectors,
    register_collector,
    resolve_collector,
)

__version__ = "1.0.0"

__all__ = [
    "GcConfig",
    "NetworkConfig",
    "SimulationConfig",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ObjectId",
    "SiteId",
    "TraceId",
    "FrameId",
    "FaultPlan",
    "LinkFault",
    "PartitionWindow",
    "SiteCrash",
    "Simulation",
    "ParallelSimulation",
    "Site",
    "TraceOutcome",
    "Collector",
    "CollectorSpec",
    "available_collectors",
    "register_collector",
    "resolve_collector",
    "__version__",
]
