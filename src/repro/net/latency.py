"""Latency models for the simulated network.

A latency model maps a (source, destination) pair to a delivery delay drawn
from a named RNG stream, so changing the model for one experiment never
perturbs other components' randomness.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from ..errors import ConfigError
from ..ids import SiteId


class LatencyModel(ABC):
    """Strategy interface: delay for one message between two sites."""

    @abstractmethod
    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        """Return a non-negative delivery delay."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0):
        if delay < 0:
            raise ConfigError("delay must be >= 0")
        self.delay = delay

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high]."""

    def __init__(self, low: float = 1.0, high: float = 5.0):
        if low < 0 or high < low:
            raise ConfigError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return rng.uniform(self.low, self.high)


class ExponentialLatency(LatencyModel):
    """Heavy-ish tail: base + Exp(mean) -- exercises reordering across pairs."""

    def __init__(self, base: float = 1.0, mean: float = 2.0):
        if base < 0 or mean <= 0:
            raise ConfigError("require base >= 0 and mean > 0")
        self.base = base
        self.mean = mean

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self.base + rng.expovariate(1.0 / self.mean)
