"""Latency models for the simulated network.

A latency model maps a (source, destination) pair to a delivery delay drawn
from a named RNG stream, so changing the model for one experiment never
perturbs other components' randomness.

Models additionally expose :meth:`LatencyModel.min_delay`, a per-ordered-pair
*lower bound* on what :meth:`~LatencyModel.sample` can return.  The parallel
engine's demand-driven window planner uses these bounds as per-destination
lookahead: a heterogeneous model (:class:`ZonedLatency`) lets a shard whose
outbound links are all slow advertise a much later earliest-output-time than
the global ``NetworkConfig.min_latency`` would allow.  Returning ``None``
means "no bound known for this pair"; the planner then falls back to the
configured global minimum, preserving the historical contract that
``NetworkConfig.min_latency`` under-approximates every custom model.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Tuple, Union

from ..errors import ConfigError
from ..ids import SiteId


class LatencyModel(ABC):
    """Strategy interface: delay for one message between two sites."""

    @abstractmethod
    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        """Return a non-negative delivery delay."""

    def min_delay(self, src: SiteId, dst: SiteId) -> Optional[float]:
        """Lower bound on :meth:`sample` for this ordered pair, or ``None``.

        ``None`` (the default for models that do not know their floor)
        makes consumers fall back to ``NetworkConfig.min_latency``.  An
        override must never exceed any value ``sample`` can return for the
        pair -- the parallel engine's safety argument rests on it.
        """
        return None


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0):
        if delay < 0:
            raise ConfigError("delay must be >= 0")
        self.delay = delay

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self.delay

    def min_delay(self, src: SiteId, dst: SiteId) -> Optional[float]:
        return self.delay


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high]."""

    def __init__(self, low: float = 1.0, high: float = 5.0):
        if low < 0 or high < low:
            raise ConfigError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return rng.uniform(self.low, self.high)

    def min_delay(self, src: SiteId, dst: SiteId) -> Optional[float]:
        return self.low


class ExponentialLatency(LatencyModel):
    """Heavy-ish tail: base + Exp(mean) -- exercises reordering across pairs."""

    def __init__(self, base: float = 1.0, mean: float = 2.0):
        if base < 0 or mean <= 0:
            raise ConfigError("require base >= 0 and mean > 0")
        self.base = base
        self.mean = mean

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        return self.base + rng.expovariate(1.0 / self.mean)

    def min_delay(self, src: SiteId, dst: SiteId) -> Optional[float]:
        return self.base


#: Zone assignment: an explicit mapping or a pure function of the site id.
ZoneAssignment = Union[Dict[SiteId, int], Callable[[SiteId], int]]


class ZonedLatency(LatencyModel):
    """Two-band heterogeneous latencies: fast intra-zone, slow cross-zone.

    Sites are assigned to zones (datacenters); a message between sites in
    the same zone draws its delay uniformly from the ``intra`` band, any
    other message from the ``cross`` band.  Because :meth:`min_delay` knows
    which band a pair uses, a shard that coincides with a zone advertises
    the *cross* band's floor as its outbound lookahead -- typically an order
    of magnitude more than the intra floor that bounds the global
    ``min_latency`` -- which is exactly the heterogeneity the demand-driven
    window planner exploits.

    ``zones`` is either a ``{site_id: zone}`` mapping or a pure function of
    the site id (it must be deterministic: both fork sides re-derive it).
    A site without an assignment is treated as its own private zone, so all
    of its links are cross-zone.
    """

    def __init__(
        self,
        zones: ZoneAssignment,
        intra: Tuple[float, float] = (1.0, 3.0),
        cross: Tuple[float, float] = (10.0, 30.0),
    ):
        for name, (low, high) in (("intra", intra), ("cross", cross)):
            if low < 0 or high < low:
                raise ConfigError(f"{name} band requires 0 <= low <= high")
        self.zones = zones
        self.intra = intra
        self.cross = cross

    def _zone(self, site_id: SiteId):
        if callable(self.zones):
            return self.zones(site_id)
        # Unassigned sites get a unique private zone (the site id itself
        # cannot collide with the int zones of assigned sites).
        return self.zones.get(site_id, site_id)

    def _band(self, src: SiteId, dst: SiteId) -> Tuple[float, float]:
        return self.intra if self._zone(src) == self._zone(dst) else self.cross

    def sample(self, rng: random.Random, src: SiteId, dst: SiteId) -> float:
        low, high = self._band(src, dst)
        return rng.uniform(low, high)

    def min_delay(self, src: SiteId, dst: SiteId) -> Optional[float]:
        return self._band(src, dst)[0]
