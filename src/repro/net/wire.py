"""Packed wire format for cross-shard coordination traffic.

The parallel engine's coordinator and its shard workers exchange batches of
in-flight messages at every safe-time window.  Pickling each
``(deliver_at, Message)`` pair costs class-descriptor traffic and per-field
overhead for what is, on the hot paths, a handful of small integers: the
Allen & Terriberry system description (PAPERS.md) builds its whole data
plane around compact batched reference-tracking records, and this module
applies the same discipline to the process boundary.

A *record* is one routed message, encoded as a fixed header plus a
kind-specific payload section:

``+------+-------+-----+-----+-----+------------+-------------+---------+``
``| kind | flags | src | dst | uid | deliver_at | payload_len | payload |``
``|  u8  |  u8   | u16 | u16 | i64 |    f64     |     u32     |   ...   |``

Site ids are interned against the simulation's sorted site list (both ends
derive the same table from the pre-fork site set), object ids become
``(site u16, serial i64)`` pairs, and list-valued fields ship as bulk
``struct`` arrays.  Every field round-trips exactly -- floats via IEEE
doubles, enums via stable codes -- so a packed batch is observationally
identical to the pickled one (the property tests assert
``unpack(pack(x)) == x`` for every packed kind).

Hot payload kinds (updates, deltas, acks, back calls/replies/outcomes and
their batches, inserts, mutator hops/copies) have dedicated packers; any
other payload -- or a packable kind with a field outside the compact ranges
-- falls back to an individually pickled record (``kind == 0``), so the
format is total over arbitrary payloads while staying compact where it
matters.  A *blob* is the concatenation of records for one (window,
destination-shard) pair prefixed with a record count; the coordinator
routes records by scanning headers alone, without decoding payload bytes.
"""

from __future__ import annotations

import pickle
import struct
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..ids import FrameId, ObjectId, SiteId, TraceId
from ..core.backtrace.messages import (
    BackCall,
    BackCallBatch,
    BackOutcome,
    BackReply,
    BackReplyBatch,
    TraceOutcome,
)
from ..core.termination import (
    TrialAbort,
    TrialAck,
    TrialCollect,
    TrialMark,
    TrialRescue,
    TrialRescueStart,
)
from ..gc.insert import InsertDone, InsertRequest, UnpinRequest
from ..gc.update import (
    UpdateAck,
    UpdateDeltaPayload,
    UpdatePayload,
    UpdateRefreshRequest,
)
from ..mutator.ops import MutatorHop, RemoteCopy
from .message import Message, Payload

#: (deliver_at, message) pairs as prepared sender-side by Network.send.
RoutedMessage = Tuple[float, Message]

_HEADER = struct.Struct("<BBHHqdI")
_BLOB_PREFIX = struct.Struct("<I")
#: Fixed trailer of every worker window reply: (next_event_time,
#: earliest_output_time, events_fired).  IEEE doubles carry +inf exactly,
#: which is the idle/unknown value for both time fields.
_REPLY_META = struct.Struct("<ddq")
REPLY_META_BYTES = _REPLY_META.size
#: One per-destination ring advertisement in a reply's optional ring
#: section: (dst worker u16, records written u32, new absolute write
#: position i64, earliest deliver_at among them f64).
_RING_META_ENTRY = struct.Struct("<HIqd")
_RING_META_COUNT = struct.Struct("<H")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_FLAG_DUP = 0x01

_KIND_PICKLED = 0

#: Sentinel for ``Optional[SiteId] = None`` in packed site-index slots.
_NO_SITE = 0xFFFF

_VERDICTS = (TraceOutcome.LIVE, TraceOutcome.GARBAGE)
_VERDICT_CODE = {verdict: code for code, verdict in enumerate(_VERDICTS)}

_TRIAL_PHASES = ("mark", "rescue")
_TRIAL_PHASE_CODE = {phase: code for code, phase in enumerate(_TRIAL_PHASES)}

#: Compact range guards.  A value outside these bounds demotes the whole
#: record to the pickled fallback -- correctness never depends on fitting.
_I32_MIN, _I32_MAX = -(2**31), 2**31 - 1
_MAX_COUNT = 0xFFFFFFFF


def pack_reply_meta(next_time: float, eot: float, fired: int) -> bytes:
    """Encode the per-reply shard telemetry the coordinator plans windows on.

    ``next_time`` is the shard's earliest pending event (its frontier);
    ``eot`` its advertised earliest-output-time -- the earliest instant at
    which anything it still holds could *deliver* outside the shard; and
    ``fired`` the events executed by the command being answered.  One packed
    struct instead of loose tuple fields so the reply layout is explicit,
    versioned in one place, and byte-countable like the record blobs.
    """
    return _REPLY_META.pack(next_time, eot, fired)


def unpack_reply_meta(data) -> Tuple[float, float, int]:
    """Inverse of :func:`pack_reply_meta`: ``(next_time, eot, fired)``.

    Accepts a bare 24-byte trailer or a trailer followed by a ring section
    (:func:`pack_ring_meta`); only the fixed head is decoded here.
    """
    return _REPLY_META.unpack_from(data, 0)


#: One ring advertisement: (dst_worker, count, write_pos, min_deliver).
RingMetaEntry = Tuple[int, int, int, float]


def pack_ring_meta(entries: Sequence[RingMetaEntry]) -> bytes:
    """Encode a reply's ring advertisements; empty entries encode as b''.

    Appended after the fixed reply trailer, so a reply with no ring writes
    stays exactly :data:`REPLY_META_BYTES` long -- the coordinator detects
    the section by the trailer having trailing bytes at all.
    """
    if not entries:
        return b""
    return _RING_META_COUNT.pack(len(entries)) + b"".join(
        _RING_META_ENTRY.pack(*entry) for entry in entries
    )


def unpack_ring_meta(data) -> Tuple[RingMetaEntry, ...]:
    """Inverse of :func:`pack_ring_meta` over the post-trailer bytes."""
    if not len(data):
        return ()
    (count,) = _RING_META_COUNT.unpack_from(data, 0)
    offset = _RING_META_COUNT.size
    entries = []
    for _ in range(count):
        entries.append(_RING_META_ENTRY.unpack_from(data, offset))
        offset += _RING_META_ENTRY.size
    return tuple(entries)


class _Unpackable(Exception):
    """Internal: this payload does not fit the compact encoding."""


def _check_i32(value: int) -> int:
    if not (_I32_MIN <= value <= _I32_MAX):
        raise _Unpackable(f"int out of i32 range: {value}")
    return value


class WireCodec:
    """Pack/unpack batches of routed messages against a fixed site table.

    Both ends construct the codec from the same sorted site list (the
    pre-fork site set -- sites cannot be added after the workers fork), so
    the u16 site indices agree without any negotiation.  Index order equals
    lexicographic :class:`SiteId` order, which is what lets the coordinator
    sort packed records by ``(deliver_at, src index, uid)`` and reproduce
    the sequential engine's ``(deliver_at, src, uid)`` tie-break exactly.
    """

    def __init__(self, site_ids: Sequence[SiteId]):
        self._sites: List[SiteId] = sorted(site_ids)
        if len(self._sites) >= _NO_SITE:
            raise SimulationError(
                f"packed wire format supports at most {_NO_SITE - 1} sites "
                f"(got {len(self._sites)})"
            )
        self._index: Dict[SiteId, int] = {
            site: index for index, site in enumerate(self._sites)
        }
        self._packers = {
            UpdatePayload: (1, self._pack_update),
            UpdateDeltaPayload: (2, self._pack_delta),
            UpdateRefreshRequest: (3, self._pack_empty),
            UpdateAck: (4, self._pack_ack),
            BackCall: (5, self._pack_back_call),
            BackReply: (6, self._pack_back_reply),
            BackOutcome: (7, self._pack_back_outcome),
            BackCallBatch: (8, self._pack_call_batch),
            BackReplyBatch: (9, self._pack_reply_batch),
            InsertRequest: (10, self._pack_insert_request),
            InsertDone: (11, self._pack_insert_done),
            UnpinRequest: (12, self._pack_unpin),
            MutatorHop: (13, self._pack_hop),
            RemoteCopy: (14, self._pack_copy),
            TrialMark: (15, self._pack_trial_mark),
            TrialRescueStart: (16, self._pack_trial_rescue_start),
            TrialRescue: (17, self._pack_trial_rescue),
            TrialAck: (18, self._pack_trial_ack),
            TrialCollect: (19, self._pack_trial_collect),
            TrialAbort: (20, self._pack_trial_abort),
        }
        self._unpackers = {
            1: self._unpack_update,
            2: self._unpack_delta,
            3: self._unpack_empty,
            4: self._unpack_ack,
            5: self._unpack_back_call,
            6: self._unpack_back_reply,
            7: self._unpack_back_outcome,
            8: self._unpack_call_batch,
            9: self._unpack_reply_batch,
            10: self._unpack_insert_request,
            11: self._unpack_insert_done,
            12: self._unpack_unpin,
            13: self._unpack_hop,
            14: self._unpack_copy,
            15: self._unpack_trial_mark,
            16: self._unpack_trial_rescue_start,
            17: self._unpack_trial_rescue,
            18: self._unpack_trial_ack,
            19: self._unpack_trial_collect,
            20: self._unpack_trial_abort,
        }

    @property
    def sites(self) -> List[SiteId]:
        return list(self._sites)

    def site_index(self, site_id: SiteId) -> int:
        return self._index[site_id]

    # -- field primitives ----------------------------------------------------

    def _site(self, site_id: SiteId) -> int:
        index = self._index.get(site_id)
        if index is None:
            raise _Unpackable(f"unknown site {site_id!r}")
        return index

    def _opt_site(self, site_id: Optional[SiteId]) -> int:
        return _NO_SITE if site_id is None else self._site(site_id)

    def _oid(self, out: List[bytes], oid: ObjectId) -> None:
        out.append(_U16.pack(self._site(oid.site)))
        out.append(_I64.pack(oid.serial))

    def _oid_list(self, out: List[bytes], oids: Sequence[ObjectId]) -> None:
        count = len(oids)
        if count > _MAX_COUNT:
            raise _Unpackable("oid list too long")
        out.append(_U32.pack(count))
        if count:
            out.append(
                struct.pack(f"<{count}H", *(self._site(o.site) for o in oids))
            )
            out.append(struct.pack(f"<{count}q", *(o.serial for o in oids)))

    # -- payload packers -----------------------------------------------------

    def _pack_empty(self, out: List[bytes], payload: Payload) -> None:
        return None

    def _pack_ack(self, out: List[bytes], payload: UpdateAck) -> None:
        out.append(_I64.pack(payload.seq))

    def _pack_update(self, out: List[bytes], payload: UpdatePayload) -> None:
        out.append(struct.pack("<Bq", 1 if payload.full else 0, payload.seq))
        self._pack_pairs(out, payload.distances)
        self._oid_list(out, payload.removals)

    def _pack_delta(self, out: List[bytes], payload: UpdateDeltaPayload) -> None:
        out.append(_I64.pack(payload.seq))
        self._pack_pairs(out, payload.adds)
        self._pack_pairs(out, payload.distances)
        self._oid_list(out, payload.removals)

    def _pack_pairs(
        self, out: List[bytes], pairs: Sequence[Tuple[ObjectId, int]]
    ) -> None:
        count = len(pairs)
        if count > _MAX_COUNT:
            raise _Unpackable("pair list too long")
        out.append(_U32.pack(count))
        if count:
            out.append(
                struct.pack(f"<{count}H", *(self._site(o.site) for o, _ in pairs))
            )
            out.append(struct.pack(f"<{count}q", *(o.serial for o, _ in pairs)))
            out.append(
                struct.pack(
                    f"<{count}i", *(_check_i32(value) for _, value in pairs)
                )
            )

    def _pack_back_call(self, out: List[bytes], call: BackCall) -> None:
        out.append(
            struct.pack(
                "<HqHqHqq",
                self._site(call.trace_id.initiator),
                call.trace_id.seq,
                self._site(call.target.site),
                call.target.serial,
                self._site(call.reply_to.site),
                call.reply_to.seq,
                call.seq,
            )
        )

    def _pack_back_reply(self, out: List[bytes], reply: BackReply) -> None:
        out.append(
            struct.pack(
                "<HqHqBB",
                self._site(reply.trace_id.initiator),
                reply.trace_id.seq,
                self._site(reply.reply_to.site),
                reply.reply_to.seq,
                _VERDICT_CODE[reply.verdict],
                1 if reply.timed_out else 0,
            )
        )
        self._opt_float(out, reply.cache_expires_at)
        participants = sorted(self._site(p) for p in reply.participants)
        count = len(participants)
        if count > 0xFFFF:
            raise _Unpackable("participant set too large")
        out.append(_U16.pack(count))
        if count:
            out.append(struct.pack(f"<{count}H", *participants))

    def _pack_back_outcome(self, out: List[bytes], outcome: BackOutcome) -> None:
        out.append(
            struct.pack(
                "<HqB",
                self._site(outcome.trace_id.initiator),
                outcome.trace_id.seq,
                _VERDICT_CODE[outcome.verdict],
            )
        )
        self._opt_float(out, outcome.cache_expires_at)

    def _pack_call_batch(self, out: List[bytes], batch: BackCallBatch) -> None:
        if len(batch.calls) > 0xFFFF:
            raise _Unpackable("call batch too large")
        out.append(_U16.pack(len(batch.calls)))
        for call in batch.calls:
            self._pack_back_call(out, call)

    def _pack_reply_batch(self, out: List[bytes], batch: BackReplyBatch) -> None:
        if len(batch.replies) > 0xFFFF:
            raise _Unpackable("reply batch too large")
        out.append(_U16.pack(len(batch.replies)))
        for reply in batch.replies:
            self._pack_back_reply(out, reply)

    def _pack_insert_request(self, out: List[bytes], req: InsertRequest) -> None:
        out.append(
            struct.pack(
                "<HqHBq",
                self._site(req.target.site),
                req.target.serial,
                self._opt_site(req.pin_holder),
                1 if req.release_owner_custody else 0,
                req.seq,
            )
        )

    def _pack_insert_done(self, out: List[bytes], done: InsertDone) -> None:
        out.append(
            struct.pack(
                "<Hqq", self._site(done.target.site), done.target.serial, done.seq
            )
        )

    def _pack_unpin(self, out: List[bytes], unpin: UnpinRequest) -> None:
        out.append(
            struct.pack(
                "<Hqq",
                self._site(unpin.target.site),
                unpin.target.serial,
                unpin.seq,
            )
        )

    def _pack_hop(self, out: List[bytes], hop: MutatorHop) -> None:
        name = hop.mutator.encode("utf-8")
        if len(name) > 0xFFFF:
            raise _Unpackable("mutator name too long")
        out.append(_U16.pack(len(name)))
        out.append(name)
        out.append(
            struct.pack(
                "<Hqq", self._site(hop.target.site), hop.target.serial, hop.seq
            )
        )

    def _pack_copy(self, out: List[bytes], copy: RemoteCopy) -> None:
        out.append(
            struct.pack(
                "<HqHqHq",
                self._site(copy.ref.site),
                copy.ref.serial,
                self._site(copy.dest_holder.site),
                copy.dest_holder.serial,
                self._opt_site(copy.pin_holder),
                copy.seq,
            )
        )

    def _opt_float(self, out: List[bytes], value: Optional[float]) -> None:
        if value is None:
            out.append(b"\x00")
        else:
            out.append(b"\x01")
            out.append(_F64.pack(value))

    # -- termination-trial packers -------------------------------------------
    #
    # Credit shares are exact Fractions; their numerator/denominator pack as
    # i64 pairs.  A long-running trial over many fan-out splits can overflow
    # that (credit denominators multiply), in which case struct.error demotes
    # the record to the pickled fallback -- exactness is never at risk.

    def _trial_head(self, out: List[bytes], trial: Tuple[SiteId, int]) -> None:
        out.append(struct.pack("<Hq", self._site(trial[0]), trial[1]))

    def _credit(self, out: List[bytes], credit: Fraction) -> None:
        out.append(
            struct.pack("<qq", credit.numerator, credit.denominator)
        )

    def _site_list(self, out: List[bytes], sites: Sequence[SiteId]) -> None:
        if len(sites) > 0xFFFF:
            raise _Unpackable("site list too long")
        out.append(_U16.pack(len(sites)))
        if sites:
            out.append(
                struct.pack(
                    f"<{len(sites)}H", *(self._site(s) for s in sites)
                )
            )

    def _pack_trial_mark(self, out: List[bytes], mark: TrialMark) -> None:
        self._trial_head(out, mark.trial)
        self._oid_list(out, mark.targets)
        self._credit(out, mark.credit)
        out.append(_I64.pack(mark.seq))

    def _pack_trial_rescue_start(
        self, out: List[bytes], start: TrialRescueStart
    ) -> None:
        self._trial_head(out, start.trial)
        self._site_list(out, start.member_sites)
        self._credit(out, start.credit)
        out.append(_I64.pack(start.seq))

    def _pack_trial_rescue(self, out: List[bytes], rescue: TrialRescue) -> None:
        self._trial_head(out, rescue.trial)
        self._oid_list(out, rescue.targets)
        self._site_list(out, rescue.member_sites)
        self._credit(out, rescue.credit)
        out.append(_I64.pack(rescue.seq))

    def _pack_trial_ack(self, out: List[bytes], ack: TrialAck) -> None:
        phase = _TRIAL_PHASE_CODE.get(ack.phase)
        if phase is None:
            raise _Unpackable(f"unknown trial phase {ack.phase!r}")
        self._trial_head(out, ack.trial)
        out.append(
            struct.pack(
                "<BBB", phase, 1 if ack.joined else 0, 1 if ack.dirty else 0
            )
        )
        self._credit(out, ack.credit)
        out.append(_I64.pack(ack.seq))

    def _pack_trial_collect(self, out: List[bytes], collect: TrialCollect) -> None:
        self._trial_head(out, collect.trial)
        out.append(_I64.pack(collect.seq))

    def _pack_trial_abort(self, out: List[bytes], abort: TrialAbort) -> None:
        self._trial_head(out, abort.trial)
        out.append(_I64.pack(abort.seq))

    # -- payload unpackers ---------------------------------------------------
    #
    # Each unpacker takes (buf, offset) and returns (payload, new_offset);
    # records are self-delimiting, so nested payloads need no length prefixes.

    def _read_oid(self, buf, off: int) -> Tuple[ObjectId, int]:
        site, serial = struct.unpack_from("<Hq", buf, off)
        return ObjectId(site=self._sites[site], serial=serial), off + 10

    def _read_oid_list(self, buf, off: int) -> Tuple[Tuple[ObjectId, ...], int]:
        (count,) = _U32.unpack_from(buf, off)
        off += 4
        if not count:
            return (), off
        sites = struct.unpack_from(f"<{count}H", buf, off)
        off += 2 * count
        serials = struct.unpack_from(f"<{count}q", buf, off)
        off += 8 * count
        table = self._sites
        return (
            tuple(
                ObjectId(site=table[s], serial=n) for s, n in zip(sites, serials)
            ),
            off,
        )

    def _read_pairs(
        self, buf, off: int
    ) -> Tuple[Tuple[Tuple[ObjectId, int], ...], int]:
        (count,) = _U32.unpack_from(buf, off)
        off += 4
        if not count:
            return (), off
        sites = struct.unpack_from(f"<{count}H", buf, off)
        off += 2 * count
        serials = struct.unpack_from(f"<{count}q", buf, off)
        off += 8 * count
        values = struct.unpack_from(f"<{count}i", buf, off)
        off += 4 * count
        table = self._sites
        return (
            tuple(
                (ObjectId(site=table[s], serial=n), v)
                for s, n, v in zip(sites, serials, values)
            ),
            off,
        )

    def _read_opt_float(self, buf, off: int) -> Tuple[Optional[float], int]:
        present = buf[off]
        off += 1
        if not present:
            return None, off
        (value,) = _F64.unpack_from(buf, off)
        return value, off + 8

    def _unpack_empty(self, buf, off: int):
        return UpdateRefreshRequest(), off

    def _unpack_ack(self, buf, off: int):
        (seq,) = _I64.unpack_from(buf, off)
        return UpdateAck(seq=seq), off + 8

    def _unpack_update(self, buf, off: int):
        full, seq = struct.unpack_from("<Bq", buf, off)
        off += 9
        distances, off = self._read_pairs(buf, off)
        removals, off = self._read_oid_list(buf, off)
        return (
            UpdatePayload(
                distances=distances, removals=removals, full=bool(full), seq=seq
            ),
            off,
        )

    def _unpack_delta(self, buf, off: int):
        (seq,) = _I64.unpack_from(buf, off)
        off += 8
        adds, off = self._read_pairs(buf, off)
        distances, off = self._read_pairs(buf, off)
        removals, off = self._read_oid_list(buf, off)
        return (
            UpdateDeltaPayload(
                adds=adds, distances=distances, removals=removals, seq=seq
            ),
            off,
        )

    def _unpack_back_call(self, buf, off: int):
        ti, ts, os_, on, rs, rn, seq = struct.unpack_from("<HqHqHqq", buf, off)
        table = self._sites
        return (
            BackCall(
                trace_id=TraceId(initiator=table[ti], seq=ts),
                target=ObjectId(site=table[os_], serial=on),
                reply_to=FrameId(site=table[rs], seq=rn),
                seq=seq,
            ),
            off + 38,
        )

    def _unpack_back_reply(self, buf, off: int):
        ti, ts, rs, rn, verdict, timed_out = struct.unpack_from(
            "<HqHqBB", buf, off
        )
        off += 22
        expires, off = self._read_opt_float(buf, off)
        (count,) = _U16.unpack_from(buf, off)
        off += 2
        table = self._sites
        if count:
            indices = struct.unpack_from(f"<{count}H", buf, off)
            off += 2 * count
            participants = frozenset(table[i] for i in indices)
        else:
            participants = frozenset()
        return (
            BackReply(
                trace_id=TraceId(initiator=table[ti], seq=ts),
                reply_to=FrameId(site=table[rs], seq=rn),
                verdict=_VERDICTS[verdict],
                participants=participants,
                cache_expires_at=expires,
                timed_out=bool(timed_out),
            ),
            off,
        )

    def _unpack_back_outcome(self, buf, off: int):
        ti, ts, verdict = struct.unpack_from("<HqB", buf, off)
        off += 11
        expires, off = self._read_opt_float(buf, off)
        return (
            BackOutcome(
                trace_id=TraceId(initiator=self._sites[ti], seq=ts),
                verdict=_VERDICTS[verdict],
                cache_expires_at=expires,
            ),
            off,
        )

    def _unpack_call_batch(self, buf, off: int):
        (count,) = _U16.unpack_from(buf, off)
        off += 2
        calls = []
        for _ in range(count):
            call, off = self._unpack_back_call(buf, off)
            calls.append(call)
        return BackCallBatch(calls=tuple(calls)), off

    def _unpack_reply_batch(self, buf, off: int):
        (count,) = _U16.unpack_from(buf, off)
        off += 2
        replies = []
        for _ in range(count):
            reply, off = self._unpack_back_reply(buf, off)
            replies.append(reply)
        return BackReplyBatch(replies=tuple(replies)), off

    def _unpack_insert_request(self, buf, off: int):
        site, serial, pin, release, seq = struct.unpack_from("<HqHBq", buf, off)
        return (
            InsertRequest(
                target=ObjectId(site=self._sites[site], serial=serial),
                pin_holder=None if pin == _NO_SITE else self._sites[pin],
                release_owner_custody=bool(release),
                seq=seq,
            ),
            off + 21,
        )

    def _unpack_insert_done(self, buf, off: int):
        site, serial, seq = struct.unpack_from("<Hqq", buf, off)
        return (
            InsertDone(
                target=ObjectId(site=self._sites[site], serial=serial), seq=seq
            ),
            off + 18,
        )

    def _unpack_unpin(self, buf, off: int):
        site, serial, seq = struct.unpack_from("<Hqq", buf, off)
        return (
            UnpinRequest(
                target=ObjectId(site=self._sites[site], serial=serial), seq=seq
            ),
            off + 18,
        )

    def _unpack_hop(self, buf, off: int):
        (length,) = _U16.unpack_from(buf, off)
        off += 2
        name = bytes(buf[off : off + length]).decode("utf-8")
        off += length
        site, serial, seq = struct.unpack_from("<Hqq", buf, off)
        return (
            MutatorHop(
                mutator=name,
                target=ObjectId(site=self._sites[site], serial=serial),
                seq=seq,
            ),
            off + 18,
        )

    def _unpack_copy(self, buf, off: int):
        rs, rn, ds, dn, pin, seq = struct.unpack_from("<HqHqHq", buf, off)
        table = self._sites
        return (
            RemoteCopy(
                ref=ObjectId(site=table[rs], serial=rn),
                dest_holder=ObjectId(site=table[ds], serial=dn),
                pin_holder=None if pin == _NO_SITE else table[pin],
                seq=seq,
            ),
            off + 30,
        )

    def _read_trial(self, buf, off: int) -> Tuple[Tuple[SiteId, int], int]:
        site, serial = struct.unpack_from("<Hq", buf, off)
        return (self._sites[site], serial), off + 10

    def _read_credit(self, buf, off: int) -> Tuple[Fraction, int]:
        numerator, denominator = struct.unpack_from("<qq", buf, off)
        return Fraction(numerator, denominator), off + 16

    def _read_site_list(self, buf, off: int) -> Tuple[Tuple[SiteId, ...], int]:
        (count,) = _U16.unpack_from(buf, off)
        off += 2
        if not count:
            return (), off
        indices = struct.unpack_from(f"<{count}H", buf, off)
        table = self._sites
        return tuple(table[i] for i in indices), off + 2 * count

    def _unpack_trial_mark(self, buf, off: int):
        trial, off = self._read_trial(buf, off)
        targets, off = self._read_oid_list(buf, off)
        credit, off = self._read_credit(buf, off)
        (seq,) = _I64.unpack_from(buf, off)
        return (
            TrialMark(trial=trial, targets=targets, credit=credit, seq=seq),
            off + 8,
        )

    def _unpack_trial_rescue_start(self, buf, off: int):
        trial, off = self._read_trial(buf, off)
        member_sites, off = self._read_site_list(buf, off)
        credit, off = self._read_credit(buf, off)
        (seq,) = _I64.unpack_from(buf, off)
        return (
            TrialRescueStart(
                trial=trial, member_sites=member_sites, credit=credit, seq=seq
            ),
            off + 8,
        )

    def _unpack_trial_rescue(self, buf, off: int):
        trial, off = self._read_trial(buf, off)
        targets, off = self._read_oid_list(buf, off)
        member_sites, off = self._read_site_list(buf, off)
        credit, off = self._read_credit(buf, off)
        (seq,) = _I64.unpack_from(buf, off)
        return (
            TrialRescue(
                trial=trial,
                targets=targets,
                member_sites=member_sites,
                credit=credit,
                seq=seq,
            ),
            off + 8,
        )

    def _unpack_trial_ack(self, buf, off: int):
        trial, off = self._read_trial(buf, off)
        phase, joined, dirty = struct.unpack_from("<BBB", buf, off)
        off += 3
        credit, off = self._read_credit(buf, off)
        (seq,) = _I64.unpack_from(buf, off)
        return (
            TrialAck(
                trial=trial,
                phase=_TRIAL_PHASES[phase],
                credit=credit,
                joined=bool(joined),
                dirty=bool(dirty),
                seq=seq,
            ),
            off + 8,
        )

    def _unpack_trial_collect(self, buf, off: int):
        trial, off = self._read_trial(buf, off)
        (seq,) = _I64.unpack_from(buf, off)
        return TrialCollect(trial=trial, seq=seq), off + 8

    def _unpack_trial_abort(self, buf, off: int):
        trial, off = self._read_trial(buf, off)
        (seq,) = _I64.unpack_from(buf, off)
        return TrialAbort(trial=trial, seq=seq), off + 8

    # -- records and blobs ---------------------------------------------------

    def pack_record(self, deliver_at: float, message: Message) -> bytes:
        """Encode one routed message as a self-contained record."""
        flags = _FLAG_DUP if message.dup else 0
        entry = self._packers.get(type(message.payload))
        if entry is not None:
            kind, packer = entry
            out: List[bytes] = []
            try:
                packer(out, message.payload)
                src = self._site(message.src)
                dst = self._site(message.dst)
            except (_Unpackable, struct.error):
                pass
            else:
                body = b"".join(out)
                return (
                    _HEADER.pack(
                        kind, flags, src, dst, message.uid, deliver_at, len(body)
                    )
                    + body
                )
        body = pickle.dumps(message.payload, protocol=pickle.HIGHEST_PROTOCOL)
        return (
            _HEADER.pack(
                _KIND_PICKLED,
                flags,
                self._index[message.src],
                self._index[message.dst],
                message.uid,
                deliver_at,
                len(body),
            )
            + body
        )

    def pack_blob(self, records: Sequence[bytes]) -> bytes:
        """Concatenate already-encoded records into one framed blob."""
        return _BLOB_PREFIX.pack(len(records)) + b"".join(records)

    def pack_routed(self, routed: Sequence[RoutedMessage]) -> bytes:
        """Encode a batch of (deliver_at, message) pairs as one blob."""
        return self.pack_blob(
            [self.pack_record(deliver_at, message) for deliver_at, message in routed]
        )

    def scan_blob(
        self, blob
    ) -> Iterator[Tuple[float, int, int, int, int, "memoryview"]]:
        """Yield ``(deliver_at, dst, src, kind, uid, record)`` per record.

        Routing metadata comes from the fixed header alone -- payload bytes
        are never decoded -- and ``record`` is a zero-copy memoryview of the
        whole record, ready to be re-framed into another blob.
        """
        view = memoryview(blob)
        (count,) = _BLOB_PREFIX.unpack_from(view, 0)
        off = _BLOB_PREFIX.size
        for _ in range(count):
            kind, _flags, src, dst, uid, deliver_at, length = _HEADER.unpack_from(
                view, off
            )
            end = off + _HEADER.size + length
            yield deliver_at, dst, src, kind, uid, view[off:end]
            off = end

    def scan_record(self, record) -> Tuple[float, int, int, int, int]:
        """``(deliver_at, dst, src, kind, uid)`` of one framed record.

        The ring-drain counterpart of :meth:`scan_blob`: rings carry bare
        records (the ring frames them itself), so routing metadata is read
        straight off the fixed header without any blob prefix.
        """
        kind, _flags, src, dst, uid, deliver_at, _length = _HEADER.unpack_from(
            record, 0
        )
        return deliver_at, dst, src, kind, uid

    def unpack_record(self, record) -> RoutedMessage:
        """Decode one self-contained record into its (deliver_at, Message)."""
        view = memoryview(record)
        kind, flags, src, dst, uid, deliver_at, length = _HEADER.unpack_from(
            view, 0
        )
        off = _HEADER.size
        if kind == _KIND_PICKLED:
            payload = pickle.loads(view[off : off + length])
        else:
            payload, end = self._unpackers[kind](view, off)
            if end != off + length:
                raise SimulationError(
                    f"wire record length mismatch for kind {kind}: "
                    f"decoded {end - off}, framed {length}"
                )
        return (
            deliver_at,
            Message(
                src=self._sites[src],
                dst=self._sites[dst],
                payload=payload,
                uid=uid,
                dup=bool(flags & _FLAG_DUP),
            ),
        )

    def unpack_blob(self, blob) -> List[RoutedMessage]:
        """Decode a blob back into (deliver_at, Message) pairs, in order."""
        view = memoryview(blob)
        (count,) = _BLOB_PREFIX.unpack_from(view, 0)
        off = _BLOB_PREFIX.size
        routed: List[RoutedMessage] = []
        table = self._sites
        for _ in range(count):
            kind, flags, src, dst, uid, deliver_at, length = _HEADER.unpack_from(
                view, off
            )
            off += _HEADER.size
            if kind == _KIND_PICKLED:
                payload = pickle.loads(view[off : off + length])
                off += length
            else:
                payload, end = self._unpackers[kind](view, off)
                if end != off + length:
                    raise SimulationError(
                        f"wire record length mismatch for kind {kind}: "
                        f"decoded {end - off}, framed {length}"
                    )
                off = end
            routed.append(
                (
                    deliver_at,
                    Message(
                        src=table[src],
                        dst=table[dst],
                        payload=payload,
                        uid=uid,
                        dup=bool(flags & _FLAG_DUP),
                    ),
                )
            )
        return routed

    def roundtrip(self, routed: Sequence[RoutedMessage]) -> List[RoutedMessage]:
        """pack + unpack (test support)."""
        return self.unpack_blob(self.pack_routed(routed))
