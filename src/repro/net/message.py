"""Message envelope and payload base class.

Protocol modules (insert protocol, update messages, back-trace calls, the
mutator, baseline collectors) each define their own payload dataclasses
deriving from :class:`Payload`.  The envelope adds addressing and bookkeeping
shared by all of them.

``Payload.kind()`` is the metrics key: benchmark E1 counts back-trace call,
reply, and report messages by this name to check the paper's 2E + N bound.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..ids import SiteId


class Payload:
    """Base class for message payloads.  Subclass per protocol message.

    Declares empty ``__slots__`` so that hot payload dataclasses (updates,
    back-trace calls, inserts) can opt into ``slots=True`` and actually shed
    their per-instance ``__dict__``; subclasses that don't opt in still get
    a ``__dict__`` automatically.
    """

    __slots__ = ()

    @classmethod
    def kind(cls) -> str:
        """Short name used for metrics aggregation."""
        return cls.__name__

    def carried_refs(self):
        """Object references this message carries to its destination.

        The omniscient oracle treats in-flight carried references as roots:
        until delivery they can still be stored into the destination's heap,
        so the objects they name must not be collected.  Payloads that ship
        references (mutator hops/copies, migration) override this.
        """
        return ()

    def size_units(self) -> int:
        """Abstract message size for bandwidth accounting.

        The paper notes back-trace messages are "small and can be piggybacked
        on other messages"; we charge one unit per payload by default and let
        bulk payloads (e.g. object migration) override.
        """
        return 1


_envelope_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Message:
    """An addressed payload in flight.

    ``dup`` marks an envelope injected by fault-plan duplication
    (:mod:`repro.net.faults`): the copy travels and delivers like any other
    message but is accounted separately (``messages.duplicated.*`` /
    ``messages.dup_delivered.*``) so sent/delivered/dropped counters
    reconcile per payload kind.  Each copy gets its own ``uid``.
    """

    src: SiteId
    dst: SiteId
    payload: Payload
    uid: int = field(default_factory=lambda: next(_envelope_counter))
    dup: bool = False

    @property
    def kind(self) -> str:
        return self.payload.kind()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}({self.src}->{self.dst})"
