"""Simulated message-passing network.

Provides typed messages (:mod:`.message`), pluggable latency models
(:mod:`.latency`), and the :class:`Network` itself, which supports per-pair
FIFO delivery (the paper's relation R1), probabilistic loss, partitions, and
crashed destinations.
"""

from .message import Message, Payload
from .latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
    ZonedLatency,
)
from .network import Network

__all__ = [
    "Message",
    "Payload",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "ZonedLatency",
    "Network",
]
