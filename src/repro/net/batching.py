"""Deferral and piggybacking of small control messages (paper section 4.6).

"These messages are small and can be piggybacked on other messages", and a
back trace costs "tenths of a second [per site] if messages are deferred and
piggybacked" -- trading latency for message count.  This module implements
that policy at the site boundary:

- small control payloads (back-trace calls/replies/reports, update batches,
  insert traffic) are queued per destination instead of sent immediately;
- a queue is flushed as one :class:`Bundle` either when its deferral timer
  expires or when *any* message departs for the same destination (the
  piggyback case: the pending payloads ride along, in order);
- per-pair FIFO is preserved: queued payloads always leave before or
  together with any later message to the same destination.

Deferral is safe for every queued protocol: insert custody pins hold until
their inserts land, back-trace timeouts are far longer than deferral delays,
and update messages are idempotent state transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..ids import ObjectId, SiteId
from ..metrics import MetricsRecorder
from ..sim.scheduler import EventHandle, Scheduler
from .message import Payload


@dataclass(frozen=True)
class Bundle(Payload):
    """Several logical payloads delivered as one physical message."""

    payloads: Tuple[Payload, ...]

    def size_units(self) -> int:
        return max(1, sum(payload.size_units() for payload in self.payloads))

    def carried_refs(self) -> Tuple[ObjectId, ...]:
        return tuple(
            ref for payload in self.payloads for ref in payload.carried_refs()
        )


SendFn = Callable[[SiteId, Payload], None]


class DeferringSender:
    """Per-site outgoing queue with timed flush and piggybacking."""

    def __init__(
        self,
        site_id: SiteId,
        scheduler: Scheduler,
        raw_send: SendFn,
        deferrable: Tuple[Type[Payload], ...],
        delay: float = 2.0,
        max_queue: int = 64,
        metrics: Optional[MetricsRecorder] = None,
    ):
        self.site_id = site_id
        self.scheduler = scheduler
        self.raw_send = raw_send
        self.deferrable = deferrable
        self.delay = delay
        self.max_queue = max_queue
        self.metrics = metrics or MetricsRecorder()
        self._queues: Dict[SiteId, List[Payload]] = {}
        self._timers: Dict[SiteId, EventHandle] = {}

    def send(self, dst: SiteId, payload: Payload) -> None:
        if isinstance(payload, self.deferrable):
            queue = self._queues.setdefault(dst, [])
            queue.append(payload)
            self.metrics.incr("deferral.queued")
            self.metrics.incr(f"deferral.logical.{payload.kind()}")
            if len(queue) >= self.max_queue:
                self.flush(dst)
            elif dst not in self._timers:
                self._timers[dst] = self.scheduler.schedule(
                    self.delay,
                    lambda: self._timer_fired(dst),
                    label=f"defer-flush:{self.site_id}->{dst}",
                    site=self.site_id,
                )
            return
        # An undeferred message departs: piggyback anything pending so FIFO
        # order to this destination is preserved.
        pending = self._take(dst)
        if pending:
            self.metrics.incr("deferral.piggybacked", len(pending))
            self.raw_send(dst, Bundle(payloads=tuple(pending + [payload])))
        else:
            self.raw_send(dst, payload)

    def _timer_fired(self, dst: SiteId) -> None:
        self._timers.pop(dst, None)
        self.flush(dst)

    def flush(self, dst: SiteId) -> None:
        pending = self._take(dst)
        if not pending:
            return
        if len(pending) == 1:
            self.raw_send(dst, pending[0])
        else:
            self.metrics.incr("deferral.bundles")
            self.raw_send(dst, Bundle(payloads=tuple(pending)))

    def flush_all(self) -> None:
        for dst in sorted(self._queues):
            self.flush(dst)

    def _take(self, dst: SiteId) -> List[Payload]:
        timer = self._timers.pop(dst, None)
        if timer is not None:
            timer.cancel()
        pending = self._queues.pop(dst, [])
        return pending

    @property
    def queued(self) -> int:
        return sum(len(queue) for queue in self._queues.values())
