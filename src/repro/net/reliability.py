"""At-least-once delivery primitives: sequence windows for duplicate
suppression.

Protocol hardening (section 4.6) turns the network's at-most-once delivery
into at-least-once for update messages (sequence-numbered, ack'd,
retransmitted) -- which makes *duplicate* delivery a first-class event every
receiver must tolerate.  Senders stamp a per-(sender, receiver) contiguous
sequence number on each protocol payload; receivers run a
:class:`DedupWindow` per sender.

The window is exact under both FIFO and non-FIFO delivery: it tracks the
highest sequence below which everything has been seen (``high_water``) plus
the sparse set of out-of-order arrivals above it, so a duplicate is detected
even when it overtakes fresher traffic.  Under per-pair FIFO delivery (the
default, assumption R1) the sparse set stays empty and the check is a single
integer comparison.
"""

from __future__ import annotations

from typing import Set


class DedupWindow:
    """Tracks which contiguous sequence numbers from one sender were seen.

    Sequence numbers start at 1 and are allocated contiguously by the
    sender; ``seen`` returns True for a duplicate and records first-time
    arrivals.
    """

    __slots__ = ("high_water", "_pending")

    def __init__(self) -> None:
        self.high_water = 0
        self._pending: Set[int] = set()

    def seen(self, seq: int) -> bool:
        """Record ``seq``; True iff it was already delivered before."""
        if seq <= self.high_water or seq in self._pending:
            return True
        self._pending.add(seq)
        while self.high_water + 1 in self._pending:
            self.high_water += 1
            self._pending.discard(self.high_water)
        return False

    def was_seen(self, seq: int) -> bool:
        """Non-marking query: was ``seq`` already recorded by :meth:`seen`?

        The delta-update gap check needs to distinguish "duplicate of a
        payload we applied" (re-ack it) from "duplicate of a payload we
        rejected as a gap" (keep refusing -- an ack would cancel the
        sender's retransmission ladder, which is the repair backstop), so
        gap-rejected sequences are deliberately never recorded.
        """
        return seq <= self.high_water or seq in self._pending

    @property
    def pending_gaps(self) -> int:
        """Out-of-order arrivals still above the contiguous frontier."""
        return len(self._pending)
