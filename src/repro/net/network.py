"""The simulated network.

Messages are handed to :meth:`Network.send`, which draws a latency, applies
loss/partition/crash rules and the optional declarative fault plan
(:mod:`repro.net.faults`), and schedules delivery through the event
scheduler.  With ``fifo_per_pair`` enabled (the default, matching the paper's
assumption R1 in section 6.4), delivery times between any ordered pair of
sites are monotonic, so messages between two sites never overtake each other
even when their sampled latencies would reorder them.

Accounting (all names in :mod:`repro.metrics.names`): every original send is
counted under ``messages.{Kind}``; it then either delivers exactly once
(``messages.delivered.{Kind}``) or is dropped exactly once
(``messages.dropped.{Kind}``, plus a reason aggregate under
``messages.dropped.{crash,partition,loss,fault}`` and the legacy
``messages.lost``), so per kind ``sent = delivered + dropped`` once nothing
is in flight.  Fault-plan duplicate copies are accounted separately
(``messages.duplicated.{Kind}`` injected = ``messages.dup_delivered.{Kind}``
+ ``messages.dup_dropped.{Kind}``).

Hot path: the per-send lookup chain (endpoint dict, crash set, partition
map, per-pair RNG memo, FIFO floor dict, f-string counter names) is
collapsed into one :class:`_Link` struct per ordered pair, built on first
use and cached in ``_links``.  A link caches everything about the pair that
only changes at topology events -- the destination's deliver function, the
pair's latency and fault RNG streams, the prefiltered fault rules, the
cached crash/partition verdict, the FIFO floor, and per-payload-kind
interned :class:`~repro.metrics.counters.CounterCell` handles -- so a clean
send costs one dict hit plus cell adds.  Every mutation that could change
any of that (``register``, ``crash``, ``recover``, ``partition``,
``heal_partition``, ``attach_shard``) drops the whole cache; links rebuild
lazily with rule-for-rule identical behaviour.  RNG streams survive
invalidation in the ``_pair_streams`` / ``_fault_streams`` memos, so a
rebuilt link resumes the pair's draw sequence exactly where it left off.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import NetworkConfig
from ..errors import UnknownSiteError
from ..ids import SiteId
from ..metrics import MetricsRecorder, names
from ..sim.rng import RngRegistry
from ..sim.scheduler import Scheduler
from .faults import FaultPlan
from .latency import LatencyModel, UniformLatency
from .message import Message, Payload

DeliverFn = Callable[[Message], None]


class _KindCells:
    """Interned counter cells for one (payload kind, ordered pair).

    Resolved once per (link, kind); the per-send accounting then runs
    entirely on cached cells.  The ``add`` call order in :meth:`Network.send`
    reproduces the historical ``incr`` order exactly, so counter insertion
    order (and hence snapshots) stays byte-identical.
    """

    __slots__ = (
        "sent",
        "units",
        "involve_src",
        "involve_dst",
        "delivered",
        "dropped",
        "duplicated",
        "dup_delivered",
        "dup_dropped",
        "deliver_label",
    )

    def __init__(self, metrics: MetricsRecorder, kind: str, src: SiteId, dst: SiteId):
        cell = metrics.cell
        self.sent = cell(names.msg_sent(kind))
        self.units = cell(f"units.{kind}")
        self.involve_src = cell(f"involve.{kind}.{src}")
        self.involve_dst = cell(f"involve.{kind}.{dst}")
        self.delivered = cell(names.msg_delivered_kind(kind))
        self.dropped = cell(names.msg_dropped_kind(kind))
        self.duplicated = cell(names.msg_duplicated(kind))
        self.dup_delivered = cell(names.msg_dup_delivered(kind))
        self.dup_dropped = cell(names.msg_dup_dropped(kind))
        self.deliver_label = "deliver:" + kind


class _Link:
    """Cached per-ordered-pair state: everything a send needs in one struct.

    Valid only until the next topology mutation; ``Network._invalidate_links``
    flushes the FIFO floor back to ``_last_delivery`` and drops the cache.
    """

    __slots__ = (
        "src",
        "dst",
        "deliver",
        "blocked",
        "rng",
        "fault_rng",
        "fault_rules",
        "fifo",
        "last_delivery",
        "local",
        "kind_cells",
    )

    def __init__(
        self,
        src: SiteId,
        dst: SiteId,
        deliver: DeliverFn,
        blocked: Optional[str],
        rng: random.Random,
        fault_rng: Optional[random.Random],
        fault_rules: Optional[tuple],
        fifo: bool,
        last_delivery: float,
        local: bool,
    ):
        self.src = src
        self.dst = dst
        self.deliver = deliver
        #: Drop reason every message on this link dies of right now
        #: ("crash" / "partition"), or None.  Safe to cache: every event
        #: that could change it invalidates the link cache.
        self.blocked = blocked
        self.rng = rng
        self.fault_rng = fault_rng
        self.fault_rules = fault_rules
        self.fifo = fifo
        self.last_delivery = last_delivery
        #: False only in shard mode when ``dst`` lives on another shard.
        self.local = local
        self.kind_cells: Dict[str, _KindCells] = {}


class Network:
    """Routes messages between registered sites with simulated delays."""

    def __init__(
        self,
        scheduler: Scheduler,
        rng: RngRegistry,
        metrics: MetricsRecorder,
        config: Optional[NetworkConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self._scheduler = scheduler
        self._rng_registry = rng
        self._rng = rng.stream("network")
        self._metrics = metrics
        self._config = config or NetworkConfig()
        self._latency = latency_model or UniformLatency(
            self._config.min_latency, self._config.max_latency
        )
        self._faults = fault_plan if fault_plan is not None and not fault_plan.is_empty else None
        # Cheap per-send gate: outside this window no link rule can match,
        # so roll() is skipped entirely (an idle plan costs one comparison).
        self._fault_window = self._faults.link_window if self._faults else None
        self._drop_probability = self._config.drop_probability
        self._endpoints: Dict[SiteId, DeliverFn] = {}
        self._crashed: Set[SiteId] = set()
        self._partition: Optional[Dict[SiteId, int]] = None
        self._last_delivery: Dict[Tuple[SiteId, SiteId], float] = {}
        self._in_flight: Dict[int, Message] = {}
        # Per-ordered-pair RNG streams (see NetworkConfig.pair_rng_streams).
        self._pair_streams: Optional[Dict[Tuple[SiteId, SiteId], random.Random]] = (
            {} if self._config.pair_rng_streams else None
        )
        # Fault randomness always uses dedicated per-pair streams: a plan
        # must neither perturb the latency draws of the clean path nor
        # depend on the global send interleaving (shard safety).
        self._fault_streams: Dict[Tuple[SiteId, SiteId], random.Random] = {}
        # Shard mode (set by the parallel engine inside a worker process):
        # sends to sites outside ``_shard_sites`` are not scheduled locally
        # but appended to ``_shard_outbox`` as (deliver_at, message) pairs
        # with the latency draw and FIFO clamp already applied sender-side.
        self._shard_sites: Optional[Set[SiteId]] = None
        self._shard_outbox: Optional[List[Tuple[float, Message]]] = None
        # Direct data path (parallel engine, direct_rings): a callback that
        # tries to put a cross-shard message straight into the destination
        # shard's SPSC ring.  True means the message travelled shard-to-
        # shard; False falls through to the coordinator-routed outbox (ring
        # full, oversized record).
        self._ring_writer: Optional[Callable[[float, Message], bool]] = None
        # The per-pair link cache (the hot-path fast lane; see module
        # docstring for the invalidation contract).
        self._links: Dict[Tuple[SiteId, SiteId], _Link] = {}
        # Pair-independent cells, interned once.
        cell = metrics.cell
        self._cell_total = cell(names.MSG_TOTAL)
        self._cell_units = cell(names.MSG_UNITS)
        self._cell_delivered = cell(names.MSG_DELIVERED)
        self._cell_lost = cell(names.MSG_LOST)
        self._reason_cells = {
            reason: cell(names.msg_dropped_reason(reason))
            for reason in ("crash", "partition", "loss", "fault")
        }

    # -- topology -----------------------------------------------------------

    def register(self, site_id: SiteId, deliver: DeliverFn) -> None:
        """Attach a site's receive function to the network."""
        self._endpoints[site_id] = deliver
        # Links cache the deliver fn (and the partition map consults the
        # endpoint set), so any (re-)registration drops the cache.
        self._invalidate_links()

    def known_sites(self) -> Set[SiteId]:
        return set(self._endpoints)

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        return self._faults

    # -- failures -------------------------------------------------------------

    def crash(self, site_id: SiteId) -> None:
        """Messages to/from a crashed site are lost (counted as drops)."""
        self._crashed.add(site_id)
        self._invalidate_links()

    def recover(self, site_id: SiteId) -> None:
        self._crashed.discard(site_id)
        self._invalidate_links()

    def is_crashed(self, site_id: SiteId) -> bool:
        return site_id in self._crashed

    def partition(self, *groups: Set[SiteId]) -> None:
        """Split the network: messages between different groups are lost.

        Sites not named in any group form one additional implicit group.
        """
        mapping: Dict[SiteId, int] = {}
        for index, group in enumerate(groups):
            for site_id in group:
                mapping[site_id] = index
        implicit = len(groups)
        for site_id in self._endpoints:
            mapping.setdefault(site_id, implicit)
        self._partition = mapping
        self._invalidate_links()

    def heal_partition(self) -> None:
        self._partition = None
        self._invalidate_links()

    def _partitioned(self, src: SiteId, dst: SiteId) -> bool:
        if self._partition is None:
            return False
        return self._partition.get(src) != self._partition.get(dst)

    def _blocked(self, src: SiteId, dst: SiteId) -> Optional[str]:
        """The drop reason a message on this link would die of, or None.

        One rule for both ends of a message's life: links cache this verdict
        for :meth:`send` and :meth:`_deliver` alike, so crash/partition
        handling is symmetric and every discard is counted.
        """
        if src in self._crashed or dst in self._crashed:
            return "crash"
        if self._partitioned(src, dst):
            return "partition"
        return None

    def _drop(self, cells: _KindCells, dup: bool, reason: str) -> None:
        """Count one discarded message (original vs duplicate copy)."""
        if dup:
            cells.dup_dropped.add()
            return
        self._cell_lost.add()
        cells.dropped.add()
        self._reason_cells[reason].add()

    # -- the link cache ------------------------------------------------------

    def _build_link(self, src: SiteId, dst: SiteId) -> _Link:
        deliver = self._endpoints.get(dst)
        if deliver is None:
            raise UnknownSiteError(f"no site registered as {dst!r}")
        if self._faults is not None:
            fault_rng: Optional[random.Random] = self._fault_rng(src, dst)
            fault_rules: Optional[tuple] = self._faults.rules_for(src, dst)
        else:
            fault_rng = None
            fault_rules = None
        link = _Link(
            src=src,
            dst=dst,
            deliver=deliver,
            blocked=self._blocked(src, dst),
            rng=self._rng_for(src, dst),
            fault_rng=fault_rng,
            fault_rules=fault_rules,
            fifo=self._config.fifo_per_pair,
            last_delivery=self._last_delivery.get((src, dst), 0.0),
            local=self._shard_sites is None or dst in self._shard_sites,
        )
        self._links[(src, dst)] = link
        return link

    def _invalidate_links(self) -> None:
        """Drop every cached link, flushing FIFO floors back to the dict.

        RNG streams are NOT reset -- they live in the ``_pair_streams`` /
        ``_fault_streams`` memos, so a rebuilt link resumes each pair's
        draw sequence mid-stream, exactly as the uncached implementation
        would.
        """
        links = self._links
        if not links:
            return
        if self._config.fifo_per_pair:
            floors = self._last_delivery
            for pair, link in links.items():
                if link.last_delivery > 0.0:
                    floors[pair] = link.last_delivery
        links.clear()

    # -- sharding (parallel engine support) ---------------------------------

    def attach_shard(
        self,
        sites: Set[SiteId],
        outbox: List[Tuple[float, Message]],
        ring_writer: Optional[Callable[[float, Message], bool]] = None,
    ) -> None:
        """Enter shard mode: this network instance serves only ``sites``.

        Called inside a forked worker process.  Sends whose destination is
        outside the shard are fully prepared sender-side (metrics, loss,
        latency draw, FIFO clamp) and then handed to ``ring_writer`` (the
        direct shard-to-shard path; it may decline) or parked in ``outbox``
        for the coordinator to route, instead of being scheduled on the
        local scheduler.  Requires per-pair RNG streams, otherwise latency
        draws would depend on the global send interleaving the shards no
        longer share.  (Fault plans are fine: their randomness is always
        per-pair.)
        """
        if self._pair_streams is None:
            raise UnknownSiteError(
                "shard mode requires NetworkConfig.pair_rng_streams"
            )
        if self._partition is not None:
            raise UnknownSiteError("shard mode does not support partitions")
        self._shard_sites = set(sites)
        self._shard_outbox = outbox
        self._ring_writer = ring_writer
        self._invalidate_links()

    @property
    def shard_sites(self) -> Optional[Set[SiteId]]:
        return None if self._shard_sites is None else set(self._shard_sites)

    def min_cross_latency(self, sites: Set[SiteId]) -> Optional[float]:
        """Tightest known floor on any delay leaving ``sites``, or ``None``.

        The minimum of :meth:`LatencyModel.min_delay` over every ordered
        (inside, outside) pair -- the shard-level outbound lookahead of the
        demand-driven window planner.  Shard-level (not per-site) because a
        message can hop cheaply *within* the shard before exiting: only the
        final cross-boundary hop is guaranteed, and that hop costs at least
        this minimum whatever path preceded it.  ``None`` when the model
        declines a bound for any pair (callers fall back to
        ``NetworkConfig.min_latency``) or when no site is outside.
        """
        best: Optional[float] = None
        outside = [dst for dst in self._endpoints if dst not in sites]
        if not outside:
            return None
        for src in sites:
            for dst in outside:
                bound = self._latency.min_delay(src, dst)
                if bound is None:
                    return None
                if best is None or bound < best:
                    best = bound
        return best

    def deliver_remote(self, message: Message) -> None:
        """Deliver a message routed in from another shard.

        The sender already paid the latency and FIFO clamp; this is the
        receiver half of :meth:`_deliver` (crash/partition checks happen at
        delivery time, exactly as in the sequential engine).
        """
        self._deliver(message)

    def _rng_for(self, src: SiteId, dst: SiteId) -> random.Random:
        if self._pair_streams is None:
            return self._rng
        stream = self._pair_streams.get((src, dst))
        if stream is None:
            stream = self._rng_registry.stream(f"net:{src}->{dst}")
            self._pair_streams[(src, dst)] = stream
        return stream

    def _fault_rng(self, src: SiteId, dst: SiteId) -> random.Random:
        stream = self._fault_streams.get((src, dst))
        if stream is None:
            stream = self._rng_registry.stream(f"fault:{src}->{dst}")
            self._fault_streams[(src, dst)] = stream
        return stream

    # -- sending ------------------------------------------------------------

    def send(self, src: SiteId, dst: SiteId, payload: Payload) -> None:
        """Send ``payload`` from ``src`` to ``dst`` (counted even if lost)."""
        link = self._links.get((src, dst))
        if link is None:
            link = self._build_link(src, dst)
        message = Message(src=src, dst=dst, payload=payload)
        kind = message.kind
        cells = link.kind_cells.get(kind)
        if cells is None:
            cells = link.kind_cells[kind] = _KindCells(self._metrics, kind, src, dst)
        # Accounting in the historical incr order: the per-kind send count,
        # the totals, then per-kind size units and per-site attribution
        # (which sites a protocol involves and what it really ships; E6).
        units = payload.size_units()
        cells.sent.add()
        self._cell_total.add()
        self._cell_units.add(units)
        cells.units.add(units)
        cells.involve_src.add()
        cells.involve_dst.add()

        if link.blocked is not None:
            self._drop(cells, False, link.blocked)
            return
        rng = link.rng
        if self._drop_probability and rng.random() < self._drop_probability:
            self._drop(cells, False, "loss")
            return
        now = self._scheduler.now
        extra_delay = 0.0
        duplicate_lags: Tuple[float, ...] = ()
        fault_window = self._fault_window
        if fault_window is not None and fault_window[0] <= now < fault_window[1]:
            fate = self._faults.roll(
                now, src, dst, link.fault_rng, rules=link.fault_rules
            )
            if fate.drop:
                self._drop(cells, False, "fault")
                return
            extra_delay = fate.extra_delay
            duplicate_lags = fate.duplicate_lags

        deliver_at = now + self._latency.sample(rng, src, dst) + extra_delay
        if link.fifo:
            floor = link.last_delivery
            if deliver_at < floor:
                deliver_at = floor
            link.last_delivery = deliver_at
        self._dispatch(link, cells, message, deliver_at)
        for lag in duplicate_lags:
            # A fresh envelope per copy: its own uid (in-flight tracking and
            # cross-shard routing need distinct keys) and the dup marker for
            # separate accounting.
            copy = Message(src=src, dst=dst, payload=payload, dup=True)
            cells.duplicated.add()
            copy_at = deliver_at + lag
            if link.fifo:
                floor = link.last_delivery
                if copy_at < floor:
                    copy_at = floor
                link.last_delivery = copy_at
            self._dispatch(link, cells, copy, copy_at)

    def _dispatch(
        self, link: _Link, cells: _KindCells, message: Message, deliver_at: float
    ) -> None:
        if not link.local:
            # Cross-shard: delivery time is already fixed sender-side.  Try
            # the direct ring to the destination shard first; a declined
            # write (ring full, oversized record) spills to the coordinator-
            # routed outbox, so the two paths are interchangeable per
            # message.
            if self._ring_writer is not None and self._ring_writer(
                deliver_at, message
            ):
                return
            self._shard_outbox.append((deliver_at, message))
            return
        self._in_flight[message.uid] = message
        self._scheduler.schedule_at(
            deliver_at,
            self._deliver,
            label=cells.deliver_label,
            site=message.dst,
            arg=message,
        )

    def in_flight_messages(self):
        """Messages scheduled but not yet delivered (oracle support)."""
        return list(self._in_flight.values())

    def _deliver(self, message: Message) -> None:
        self._in_flight.pop(message.uid, None)
        src = message.src
        dst = message.dst
        link = self._links.get((src, dst))
        if link is None:
            # First traffic on this pair since an invalidation (or, on a
            # shard, an inbound pair whose sender lives elsewhere).
            link = self._build_link(src, dst)
        kind = message.kind
        cells = link.kind_cells.get(kind)
        if cells is None:
            cells = link.kind_cells[kind] = _KindCells(self._metrics, kind, src, dst)
        # Crashes/partitions that arose while the message was in flight also
        # destroy it -- the destination never processes it.
        if link.blocked is not None:
            self._drop(cells, message.dup, link.blocked)
            return
        if message.dup:
            cells.dup_delivered.add()
        else:
            self._cell_delivered.add()
            cells.delivered.add()
        link.deliver(message)
