"""The simulated network.

Messages are handed to :meth:`Network.send`, which draws a latency, applies
loss/partition/crash rules and the optional declarative fault plan
(:mod:`repro.net.faults`), and schedules delivery through the event
scheduler.  With ``fifo_per_pair`` enabled (the default, matching the paper's
assumption R1 in section 6.4), delivery times between any ordered pair of
sites are monotonic, so messages between two sites never overtake each other
even when their sampled latencies would reorder them.

Accounting (all names in :mod:`repro.metrics.names`): every original send is
counted under ``messages.{Kind}``; it then either delivers exactly once
(``messages.delivered.{Kind}``) or is dropped exactly once
(``messages.dropped.{Kind}``, plus a reason aggregate under
``messages.dropped.{crash,partition,loss,fault}`` and the legacy
``messages.lost``), so per kind ``sent = delivered + dropped`` once nothing
is in flight.  Fault-plan duplicate copies are accounted separately
(``messages.duplicated.{Kind}`` injected = ``messages.dup_delivered.{Kind}``
+ ``messages.dup_dropped.{Kind}``).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import NetworkConfig
from ..errors import UnknownSiteError
from ..ids import SiteId
from ..metrics import MetricsRecorder, names
from ..sim.rng import RngRegistry
from ..sim.scheduler import Scheduler
from .faults import FaultPlan
from .latency import LatencyModel, UniformLatency
from .message import Message, Payload

DeliverFn = Callable[[Message], None]


class Network:
    """Routes messages between registered sites with simulated delays."""

    def __init__(
        self,
        scheduler: Scheduler,
        rng: RngRegistry,
        metrics: MetricsRecorder,
        config: Optional[NetworkConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self._scheduler = scheduler
        self._rng_registry = rng
        self._rng = rng.stream("network")
        self._metrics = metrics
        self._config = config or NetworkConfig()
        self._latency = latency_model or UniformLatency(
            self._config.min_latency, self._config.max_latency
        )
        self._faults = fault_plan if fault_plan is not None and not fault_plan.is_empty else None
        # Cheap per-send gate: outside this window no link rule can match,
        # so roll() is skipped entirely (an idle plan costs one comparison).
        self._fault_window = self._faults.link_window if self._faults else None
        self._endpoints: Dict[SiteId, DeliverFn] = {}
        self._crashed: Set[SiteId] = set()
        self._partition: Optional[Dict[SiteId, int]] = None
        self._last_delivery: Dict[Tuple[SiteId, SiteId], float] = {}
        self._in_flight: Dict[int, Message] = {}
        # Per-ordered-pair RNG streams (see NetworkConfig.pair_rng_streams).
        self._pair_streams: Optional[Dict[Tuple[SiteId, SiteId], random.Random]] = (
            {} if self._config.pair_rng_streams else None
        )
        # Fault randomness always uses dedicated per-pair streams: a plan
        # must neither perturb the latency draws of the clean path nor
        # depend on the global send interleaving (shard safety).
        self._fault_streams: Dict[Tuple[SiteId, SiteId], random.Random] = {}
        # Shard mode (set by the parallel engine inside a worker process):
        # sends to sites outside ``_shard_sites`` are not scheduled locally
        # but appended to ``_shard_outbox`` as (deliver_at, message) pairs
        # with the latency draw and FIFO clamp already applied sender-side.
        self._shard_sites: Optional[Set[SiteId]] = None
        self._shard_outbox: Optional[List[Tuple[float, Message]]] = None
        # Direct data path (parallel engine, direct_rings): a callback that
        # tries to put a cross-shard message straight into the destination
        # shard's SPSC ring.  True means the message travelled shard-to-
        # shard; False falls through to the coordinator-routed outbox (ring
        # full, oversized record).
        self._ring_writer: Optional[Callable[[float, Message], bool]] = None

    # -- topology -----------------------------------------------------------

    def register(self, site_id: SiteId, deliver: DeliverFn) -> None:
        """Attach a site's receive function to the network."""
        self._endpoints[site_id] = deliver

    def known_sites(self) -> Set[SiteId]:
        return set(self._endpoints)

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        return self._faults

    # -- failures -------------------------------------------------------------

    def crash(self, site_id: SiteId) -> None:
        """Messages to/from a crashed site are lost (counted as drops)."""
        self._crashed.add(site_id)

    def recover(self, site_id: SiteId) -> None:
        self._crashed.discard(site_id)

    def is_crashed(self, site_id: SiteId) -> bool:
        return site_id in self._crashed

    def partition(self, *groups: Set[SiteId]) -> None:
        """Split the network: messages between different groups are lost.

        Sites not named in any group form one additional implicit group.
        """
        mapping: Dict[SiteId, int] = {}
        for index, group in enumerate(groups):
            for site_id in group:
                mapping[site_id] = index
        implicit = len(groups)
        for site_id in self._endpoints:
            mapping.setdefault(site_id, implicit)
        self._partition = mapping

    def heal_partition(self) -> None:
        self._partition = None

    def _partitioned(self, src: SiteId, dst: SiteId) -> bool:
        if self._partition is None:
            return False
        return self._partition.get(src) != self._partition.get(dst)

    def _blocked(self, src: SiteId, dst: SiteId) -> Optional[str]:
        """The drop reason a message on this link would die of, or None.

        One helper for both ends of a message's life: :meth:`send` and
        :meth:`_deliver` apply the same check, so crash/partition handling is
        symmetric and every discard is counted.
        """
        if src in self._crashed or dst in self._crashed:
            return "crash"
        if self._partitioned(src, dst):
            return "partition"
        return None

    def _drop(self, message: Message, reason: str) -> None:
        """Count one discarded message (original vs duplicate copy)."""
        kind = message.kind
        if message.dup:
            self._metrics.incr(names.msg_dup_dropped(kind))
            return
        self._metrics.incr(names.MSG_LOST)
        self._metrics.incr(names.msg_dropped_kind(kind))
        self._metrics.incr(names.msg_dropped_reason(reason))

    # -- sharding (parallel engine support) ---------------------------------

    def attach_shard(
        self,
        sites: Set[SiteId],
        outbox: List[Tuple[float, Message]],
        ring_writer: Optional[Callable[[float, Message], bool]] = None,
    ) -> None:
        """Enter shard mode: this network instance serves only ``sites``.

        Called inside a forked worker process.  Sends whose destination is
        outside the shard are fully prepared sender-side (metrics, loss,
        latency draw, FIFO clamp) and then handed to ``ring_writer`` (the
        direct shard-to-shard path; it may decline) or parked in ``outbox``
        for the coordinator to route, instead of being scheduled on the
        local scheduler.  Requires per-pair RNG streams, otherwise latency
        draws would depend on the global send interleaving the shards no
        longer share.  (Fault plans are fine: their randomness is always
        per-pair.)
        """
        if self._pair_streams is None:
            raise UnknownSiteError(
                "shard mode requires NetworkConfig.pair_rng_streams"
            )
        if self._partition is not None:
            raise UnknownSiteError("shard mode does not support partitions")
        self._shard_sites = set(sites)
        self._shard_outbox = outbox
        self._ring_writer = ring_writer

    @property
    def shard_sites(self) -> Optional[Set[SiteId]]:
        return None if self._shard_sites is None else set(self._shard_sites)

    def min_cross_latency(self, sites: Set[SiteId]) -> Optional[float]:
        """Tightest known floor on any delay leaving ``sites``, or ``None``.

        The minimum of :meth:`LatencyModel.min_delay` over every ordered
        (inside, outside) pair -- the shard-level outbound lookahead of the
        demand-driven window planner.  Shard-level (not per-site) because a
        message can hop cheaply *within* the shard before exiting: only the
        final cross-boundary hop is guaranteed, and that hop costs at least
        this minimum whatever path preceded it.  ``None`` when the model
        declines a bound for any pair (callers fall back to
        ``NetworkConfig.min_latency``) or when no site is outside.
        """
        best: Optional[float] = None
        outside = [dst for dst in self._endpoints if dst not in sites]
        if not outside:
            return None
        for src in sites:
            for dst in outside:
                bound = self._latency.min_delay(src, dst)
                if bound is None:
                    return None
                if best is None or bound < best:
                    best = bound
        return best

    def deliver_remote(self, message: Message) -> None:
        """Deliver a message routed in from another shard.

        The sender already paid the latency and FIFO clamp; this is the
        receiver half of :meth:`_deliver` (crash/partition checks happen at
        delivery time, exactly as in the sequential engine).
        """
        self._deliver(message)

    def _rng_for(self, src: SiteId, dst: SiteId) -> random.Random:
        if self._pair_streams is None:
            return self._rng
        stream = self._pair_streams.get((src, dst))
        if stream is None:
            stream = self._rng_registry.stream(f"net:{src}->{dst}")
            self._pair_streams[(src, dst)] = stream
        return stream

    def _fault_rng(self, src: SiteId, dst: SiteId) -> random.Random:
        stream = self._fault_streams.get((src, dst))
        if stream is None:
            stream = self._rng_registry.stream(f"fault:{src}->{dst}")
            self._fault_streams[(src, dst)] = stream
        return stream

    # -- sending ------------------------------------------------------------

    def send(self, src: SiteId, dst: SiteId, payload: Payload) -> None:
        """Send ``payload`` from ``src`` to ``dst`` (counted even if lost)."""
        if dst not in self._endpoints:
            raise UnknownSiteError(f"no site registered as {dst!r}")
        message = Message(src=src, dst=dst, payload=payload)
        self._metrics.record_message(message.kind, payload.size_units())
        # Per-kind size units and per-site attribution: which sites a
        # protocol involves and what it really ships (benchmark E6).
        self._metrics.incr(f"units.{message.kind}", payload.size_units())
        self._metrics.incr(f"involve.{message.kind}.{src}")
        self._metrics.incr(f"involve.{message.kind}.{dst}")

        reason = self._blocked(src, dst)
        if reason is not None:
            self._drop(message, reason)
            return
        rng = self._rng_for(src, dst)
        if self._config.drop_probability and rng.random() < self._config.drop_probability:
            self._drop(message, "loss")
            return
        extra_delay = 0.0
        duplicate_lags: Tuple[float, ...] = ()
        if (
            self._fault_window is not None
            and self._fault_window[0] <= self._scheduler.now < self._fault_window[1]
        ):
            fate = self._faults.roll(
                self._scheduler.now, src, dst, self._fault_rng(src, dst)
            )
            if fate.drop:
                self._drop(message, "fault")
                return
            extra_delay = fate.extra_delay
            duplicate_lags = fate.duplicate_lags

        delay = self._latency.sample(rng, src, dst) + extra_delay
        deliver_at = self._clamp_fifo(src, dst, self._scheduler.now + delay)
        self._dispatch(message, deliver_at)
        for lag in duplicate_lags:
            # A fresh envelope per copy: its own uid (in-flight tracking and
            # cross-shard routing need distinct keys) and the dup marker for
            # separate accounting.
            copy = Message(src=src, dst=dst, payload=payload, dup=True)
            self._metrics.incr(names.msg_duplicated(message.kind))
            self._dispatch(copy, self._clamp_fifo(src, dst, deliver_at + lag))

    def _clamp_fifo(self, src: SiteId, dst: SiteId, deliver_at: float) -> float:
        if not self._config.fifo_per_pair:
            return deliver_at
        pair = (src, dst)
        floor = self._last_delivery.get(pair, 0.0)
        deliver_at = max(deliver_at, floor)
        self._last_delivery[pair] = deliver_at
        return deliver_at

    def _dispatch(self, message: Message, deliver_at: float) -> None:
        if self._shard_sites is not None and message.dst not in self._shard_sites:
            # Cross-shard: delivery time is already fixed sender-side.  Try
            # the direct ring to the destination shard first; a declined
            # write (ring full, oversized record) spills to the coordinator-
            # routed outbox, so the two paths are interchangeable per
            # message.
            if self._ring_writer is not None and self._ring_writer(
                deliver_at, message
            ):
                return
            self._shard_outbox.append((deliver_at, message))
            return
        self._in_flight[message.uid] = message
        self._scheduler.schedule_at(
            deliver_at,
            lambda: self._deliver(message),
            label=f"deliver:{message.kind}",
            site=message.dst,
        )

    def in_flight_messages(self):
        """Messages scheduled but not yet delivered (oracle support)."""
        return list(self._in_flight.values())

    def _deliver(self, message: Message) -> None:
        self._in_flight.pop(message.uid, None)
        # Crashes/partitions that arose while the message was in flight also
        # destroy it -- the destination never processes it.
        reason = self._blocked(message.src, message.dst)
        if reason is not None:
            self._drop(message, reason)
            return
        if message.dup:
            self._metrics.incr(names.msg_dup_delivered(message.kind))
        else:
            self._metrics.incr(names.MSG_DELIVERED)
            self._metrics.incr(names.msg_delivered_kind(message.kind))
        self._endpoints[message.dst](message)
