"""The simulated network.

Messages are handed to :meth:`Network.send`, which draws a latency, applies
loss/partition/crash rules, and schedules delivery through the event
scheduler.  With ``fifo_per_pair`` enabled (the default, matching the paper's
assumption R1 in section 6.4), delivery times between any ordered pair of
sites are monotonic, so messages between two sites never overtake each other
even when their sampled latencies would reorder them.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import NetworkConfig
from ..errors import UnknownSiteError
from ..ids import SiteId
from ..metrics import MetricsRecorder
from ..sim.rng import RngRegistry
from ..sim.scheduler import Scheduler
from .latency import LatencyModel, UniformLatency
from .message import Message, Payload

DeliverFn = Callable[[Message], None]


class Network:
    """Routes messages between registered sites with simulated delays."""

    def __init__(
        self,
        scheduler: Scheduler,
        rng: RngRegistry,
        metrics: MetricsRecorder,
        config: Optional[NetworkConfig] = None,
        latency_model: Optional[LatencyModel] = None,
    ):
        self._scheduler = scheduler
        self._rng_registry = rng
        self._rng = rng.stream("network")
        self._metrics = metrics
        self._config = config or NetworkConfig()
        self._latency = latency_model or UniformLatency(
            self._config.min_latency, self._config.max_latency
        )
        self._endpoints: Dict[SiteId, DeliverFn] = {}
        self._crashed: Set[SiteId] = set()
        self._partition: Optional[Dict[SiteId, int]] = None
        self._last_delivery: Dict[Tuple[SiteId, SiteId], float] = {}
        self._in_flight: Dict[int, Message] = {}
        # Per-ordered-pair RNG streams (see NetworkConfig.pair_rng_streams).
        self._pair_streams: Optional[Dict[Tuple[SiteId, SiteId], random.Random]] = (
            {} if self._config.pair_rng_streams else None
        )
        # Shard mode (set by the parallel engine inside a worker process):
        # sends to sites outside ``_shard_sites`` are not scheduled locally
        # but appended to ``_shard_outbox`` as (deliver_at, message) pairs
        # with the latency draw and FIFO clamp already applied sender-side.
        self._shard_sites: Optional[Set[SiteId]] = None
        self._shard_outbox: Optional[List[Tuple[float, Message]]] = None

    # -- topology -----------------------------------------------------------

    def register(self, site_id: SiteId, deliver: DeliverFn) -> None:
        """Attach a site's receive function to the network."""
        self._endpoints[site_id] = deliver

    def known_sites(self) -> Set[SiteId]:
        return set(self._endpoints)

    # -- failures -------------------------------------------------------------

    def crash(self, site_id: SiteId) -> None:
        """Messages to/from a crashed site are silently lost."""
        self._crashed.add(site_id)

    def recover(self, site_id: SiteId) -> None:
        self._crashed.discard(site_id)

    def is_crashed(self, site_id: SiteId) -> bool:
        return site_id in self._crashed

    def partition(self, *groups: Set[SiteId]) -> None:
        """Split the network: messages between different groups are lost.

        Sites not named in any group form one additional implicit group.
        """
        mapping: Dict[SiteId, int] = {}
        for index, group in enumerate(groups):
            for site_id in group:
                mapping[site_id] = index
        implicit = len(groups)
        for site_id in self._endpoints:
            mapping.setdefault(site_id, implicit)
        self._partition = mapping

    def heal_partition(self) -> None:
        self._partition = None

    def _partitioned(self, src: SiteId, dst: SiteId) -> bool:
        if self._partition is None:
            return False
        return self._partition.get(src) != self._partition.get(dst)

    # -- sharding (parallel engine support) ---------------------------------

    def attach_shard(
        self, sites: Set[SiteId], outbox: List[Tuple[float, Message]]
    ) -> None:
        """Enter shard mode: this network instance serves only ``sites``.

        Called inside a forked worker process.  Sends whose destination is
        outside the shard are fully prepared sender-side (metrics, loss,
        latency draw, FIFO clamp) and then parked in ``outbox`` for the
        coordinator to route, instead of being scheduled on the local
        scheduler.  Requires per-pair RNG streams, otherwise latency draws
        would depend on the global send interleaving the shards no longer
        share.
        """
        if self._pair_streams is None:
            raise UnknownSiteError(
                "shard mode requires NetworkConfig.pair_rng_streams"
            )
        if self._partition is not None:
            raise UnknownSiteError("shard mode does not support partitions")
        self._shard_sites = set(sites)
        self._shard_outbox = outbox

    @property
    def shard_sites(self) -> Optional[Set[SiteId]]:
        return None if self._shard_sites is None else set(self._shard_sites)

    def deliver_remote(self, message: Message) -> None:
        """Deliver a message routed in from another shard.

        The sender already paid the latency and FIFO clamp; this is the
        receiver half of :meth:`_deliver` (crash/partition checks happen at
        delivery time, exactly as in the sequential engine).
        """
        self._deliver(message)

    def _rng_for(self, src: SiteId, dst: SiteId) -> random.Random:
        if self._pair_streams is None:
            return self._rng
        stream = self._pair_streams.get((src, dst))
        if stream is None:
            stream = self._rng_registry.stream(f"net:{src}->{dst}")
            self._pair_streams[(src, dst)] = stream
        return stream

    # -- sending ------------------------------------------------------------

    def send(self, src: SiteId, dst: SiteId, payload: Payload) -> None:
        """Send ``payload`` from ``src`` to ``dst`` (counted even if lost)."""
        if dst not in self._endpoints:
            raise UnknownSiteError(f"no site registered as {dst!r}")
        message = Message(src=src, dst=dst, payload=payload)
        self._metrics.record_message(message.kind, payload.size_units())
        # Per-kind size units and per-site attribution: which sites a
        # protocol involves and what it really ships (benchmark E6).
        self._metrics.incr(f"units.{message.kind}", payload.size_units())
        self._metrics.incr(f"involve.{message.kind}.{src}")
        self._metrics.incr(f"involve.{message.kind}.{dst}")

        if src in self._crashed or dst in self._crashed or self._partitioned(src, dst):
            self._metrics.incr("messages.lost")
            return
        rng = self._rng_for(src, dst)
        if self._config.drop_probability and rng.random() < self._config.drop_probability:
            self._metrics.incr("messages.lost")
            return

        delay = self._latency.sample(rng, src, dst)
        deliver_at = self._scheduler.now + delay
        if self._config.fifo_per_pair:
            pair = (src, dst)
            floor = self._last_delivery.get(pair, 0.0)
            deliver_at = max(deliver_at, floor)
            self._last_delivery[pair] = deliver_at
        if self._shard_sites is not None and dst not in self._shard_sites:
            # Cross-shard: hand to the coordinator with the delivery time
            # already fixed; the receiving shard schedules it unchanged.
            self._shard_outbox.append((deliver_at, message))
            return
        self._in_flight[message.uid] = message
        self._scheduler.schedule_at(
            deliver_at,
            lambda: self._deliver(message),
            label=f"deliver:{message.kind}",
            site=dst,
        )

    def in_flight_messages(self):
        """Messages scheduled but not yet delivered (oracle support)."""
        return list(self._in_flight.values())

    def _deliver(self, message: Message) -> None:
        self._in_flight.pop(message.uid, None)
        # Crashes/partitions that arose while the message was in flight also
        # destroy it -- the destination never processes it.
        if message.dst in self._crashed or message.src in self._crashed:
            self._metrics.incr("messages.lost")
            return
        if self._partitioned(message.src, message.dst):
            self._metrics.incr("messages.lost")
            return
        self._metrics.incr("messages.delivered")
        self._endpoints[message.dst](message)
