"""Declarative fault injection for the simulated network (section 4.6).

The paper's fault-tolerance argument is that back tracing and reference
listing stay *safe* under lost and duplicated messages and crashed sites,
with liveness restored by retries once the faults heal.  This module makes
that claim exercisable: a :class:`FaultPlan` describes loss, duplication and
reordering-burst windows (per link or global) plus crash/recover and
partition schedules, and the :class:`~repro.net.network.Network` consults it
on every send.

Determinism and shard safety: all fault randomness is drawn from dedicated
per-ordered-pair RNG streams (``fault:{src}->{dst}``), never from the latency
streams.  A run with ``fault_plan=None`` therefore draws *zero* fault
randomness and is byte-identical to the historical behaviour, and a sharded
parallel run draws exactly the sequential run's values (each stream depends
only on the sender's own send order -- the same argument as
``NetworkConfig.pair_rng_streams``).

Reordering note: an extra delay is added *before* the per-pair FIFO clamp,
so a reorder burst shuffles messages across different links and against
timers but never violates the paper's assumption R1 (per-pair in-order
delivery).  Disable ``fifo_per_pair`` to exercise true per-pair reordering.

Crash and partition windows are *schedules*, not send-time rules: the driver
(the chaos harness, or any experiment loop) applies them via
:meth:`FaultPlan.schedule_edges` by calling ``site.crash()`` /
``site.recover()`` / ``network.partition()`` at the listed times.  This keeps
the network layer free of global coordination, which is what lets fault plans
run unchanged on the sharded parallel engine (where crash/recover must be
broadcast to workers by the coordinator).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import FrozenSet, List, Optional, Tuple

from ..errors import ConfigError
from ..ids import SiteId

_INF = float("inf")


def _window_contains(start: float, end: Optional[float], now: float) -> bool:
    return start <= now < (end if end is not None else _INF)


@dataclass(frozen=True)
class LinkFault:
    """One fault rule on a set of links over one time window.

    ``src``/``dst`` of ``None`` match any sender/receiver (a global rule).
    ``end`` of ``None`` means the rule never heals (rejected by the chaos
    harness, which needs a heal point for its eventual-collection phase).

    - ``loss``: probability an original message is dropped at send time.
    - ``duplicate_probability`` / ``duplicate_copies``: chance that a sent
      message is also delivered ``duplicate_copies`` extra times, each copy
      lagging the original by up to ``duplicate_lag``.
    - ``reorder_probability`` / ``reorder_delay``: chance a message is held
      back by an extra ``uniform(0, reorder_delay)`` before the FIFO clamp
      (cross-link and against-timer reordering; see module docstring).
    """

    start: float = 0.0
    end: Optional[float] = None
    src: Optional[SiteId] = None
    dst: Optional[SiteId] = None
    loss: float = 0.0
    duplicate_probability: float = 0.0
    duplicate_copies: int = 1
    duplicate_lag: float = 0.0
    reorder_probability: float = 0.0
    reorder_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError("LinkFault.start must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise ConfigError("LinkFault.end must be > start")
        for name in ("loss", "duplicate_probability", "reorder_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"LinkFault.{name} must be in [0, 1]")
        if self.duplicate_copies < 1:
            raise ConfigError("LinkFault.duplicate_copies must be >= 1")
        if self.duplicate_lag < 0:
            raise ConfigError("LinkFault.duplicate_lag must be >= 0")
        if self.reorder_delay < 0:
            raise ConfigError("LinkFault.reorder_delay must be >= 0")

    def matches(self, now: float, src: SiteId, dst: SiteId) -> bool:
        if not _window_contains(self.start, self.end, now):
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class SiteCrash:
    """Crash ``site`` at time ``at``; recover at ``recover_at`` (None = never)."""

    site: SiteId
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError("SiteCrash.at must be >= 0")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigError("SiteCrash.recover_at must be > at")


@dataclass(frozen=True)
class PartitionWindow:
    """Split the network into ``groups`` during [at, heal_at)."""

    groups: Tuple[FrozenSet[SiteId], ...]
    at: float
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigError("PartitionWindow needs at least one group")
        if self.at < 0:
            raise ConfigError("PartitionWindow.at must be >= 0")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ConfigError("PartitionWindow.heal_at must be > at")


@dataclass(frozen=True)
class SendFate:
    """The network-visible outcome of one send under a plan."""

    drop: bool = False
    extra_delay: float = 0.0
    #: (lag, ...) one entry per duplicate copy to inject after the original.
    duplicate_lags: Tuple[float, ...] = ()


#: Shared immutable fates for the two overwhelmingly common outcomes, so the
#: per-send hot path allocates nothing when a message sails through clean or
#: is dropped outright.
CLEAN_FATE = SendFate()
DROP_FATE = SendFate(drop=True)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, deterministic schedule of network faults.

    Compose with the class-method constructors and :meth:`merge`::

        plan = FaultPlan.loss(0.2, end=1000.0).merge(
            FaultPlan.duplication(0.15, end=1000.0),
            FaultPlan.reorder_burst(0.3, delay=25.0, start=200.0, end=600.0),
        )
    """

    links: Tuple[LinkFault, ...] = ()
    crashes: Tuple[SiteCrash, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    name: str = "faults"

    # -- constructors -------------------------------------------------------

    @classmethod
    def loss(
        cls,
        probability: float,
        start: float = 0.0,
        end: Optional[float] = None,
        src: Optional[SiteId] = None,
        dst: Optional[SiteId] = None,
    ) -> "FaultPlan":
        return cls(
            links=(LinkFault(start=start, end=end, src=src, dst=dst, loss=probability),),
            name=f"loss{int(probability * 100)}",
        )

    @classmethod
    def duplication(
        cls,
        probability: float,
        copies: int = 1,
        lag: float = 0.0,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> "FaultPlan":
        return cls(
            links=(
                LinkFault(
                    start=start,
                    end=end,
                    duplicate_probability=probability,
                    duplicate_copies=copies,
                    duplicate_lag=lag,
                ),
            ),
            name=f"dup{int(probability * 100)}",
        )

    @classmethod
    def reorder_burst(
        cls,
        probability: float,
        delay: float,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> "FaultPlan":
        return cls(
            links=(
                LinkFault(
                    start=start,
                    end=end,
                    reorder_probability=probability,
                    reorder_delay=delay,
                ),
            ),
            name="reorder",
        )

    @classmethod
    def crash_window(
        cls, site: SiteId, at: float, recover_at: Optional[float]
    ) -> "FaultPlan":
        return cls(crashes=(SiteCrash(site=site, at=at, recover_at=recover_at),),
                   name=f"crash:{site}")

    @classmethod
    def partition_window(
        cls, groups, at: float, heal_at: Optional[float]
    ) -> "FaultPlan":
        frozen = tuple(frozenset(group) for group in groups)
        return cls(
            partitions=(PartitionWindow(groups=frozen, at=at, heal_at=heal_at),),
            name="partition",
        )

    def merge(self, *others: "FaultPlan") -> "FaultPlan":
        """Union of this plan's rules with every other plan's."""
        links, crashes, partitions = list(self.links), list(self.crashes), list(self.partitions)
        names = [self.name]
        for other in others:
            links.extend(other.links)
            crashes.extend(other.crashes)
            partitions.extend(other.partitions)
            names.append(other.name)
        return FaultPlan(
            links=tuple(links),
            crashes=tuple(crashes),
            partitions=tuple(partitions),
            name="+".join(names),
        )

    def named(self, name: str) -> "FaultPlan":
        return replace(self, name=name)

    # -- send-time consultation --------------------------------------------

    def rules_for(self, src: SiteId, dst: SiteId) -> Tuple[LinkFault, ...]:
        """The link rules that can ever apply to the ordered pair, in rule
        order.

        Time windows are *not* evaluated here -- only the src/dst match,
        which is constant for the pair's lifetime -- so the result can be
        cached on a per-link struct and handed back to :meth:`roll` as its
        ``rules`` argument.  Because rules that never match a pair draw no
        randomness in :meth:`roll`, prefiltering preserves the per-pair draw
        sequence exactly.
        """
        return tuple(
            rule
            for rule in self.links
            if (rule.src is None or rule.src == src)
            and (rule.dst is None or rule.dst == dst)
        )

    def roll(
        self,
        now: float,
        src: SiteId,
        dst: SiteId,
        rng: random.Random,
        rules: Optional[Tuple[LinkFault, ...]] = None,
    ) -> SendFate:
        """Decide the fate of one send.  Draws are ordered rule-by-rule so
        the sequence depends only on the plan and the sender's send order
        (the shard-safety requirement).

        ``rules`` may carry a :meth:`rules_for` prefilter of ``self.links``
        for the pair; the outcome and draw order are identical either way.
        """
        extra_delay = 0.0
        duplicate_lags: List[float] = []
        for rule in (self.links if rules is None else rules):
            if not rule.matches(now, src, dst):
                continue
            if rule.loss > 0.0 and rng.random() < rule.loss:
                return DROP_FATE
            if rule.reorder_probability > 0.0 and rng.random() < rule.reorder_probability:
                extra_delay += rng.uniform(0.0, rule.reorder_delay)
            if (
                rule.duplicate_probability > 0.0
                and rng.random() < rule.duplicate_probability
            ):
                for _ in range(rule.duplicate_copies):
                    lag = rng.uniform(0.0, rule.duplicate_lag) if rule.duplicate_lag else 0.0
                    duplicate_lags.append(lag)
        if extra_delay == 0.0 and not duplicate_lags:
            return CLEAN_FATE
        return SendFate(extra_delay=extra_delay, duplicate_lags=tuple(duplicate_lags))

    # -- driver-side schedules ---------------------------------------------

    def schedule_edges(self) -> List[Tuple[float, str, object]]:
        """Time-sorted (time, action, data) driver actions.

        Actions: ``("crash", site)``, ``("recover", site)``,
        ``("partition", groups)``, ``("heal_partition", None)``.  The driver
        applies each edge when simulated time reaches it.
        """
        edges: List[Tuple[float, str, object]] = []
        for crash in self.crashes:
            edges.append((crash.at, "crash", crash.site))
            if crash.recover_at is not None:
                edges.append((crash.recover_at, "recover", crash.site))
        for partition in self.partitions:
            edges.append((partition.at, "partition", partition.groups))
            if partition.heal_at is not None:
                edges.append((partition.heal_at, "heal_partition", None))
        edges.sort(key=lambda edge: (edge[0], edge[1], str(edge[2])))
        return edges

    @property
    def link_window(self) -> Optional[Tuple[float, float]]:
        """(earliest start, latest end) over the link rules, None if no links.

        The network checks this before :meth:`roll` on every send, so a plan
        whose windows are all in the past (or future) costs one comparison
        per message instead of a walk over the rule list.
        """
        if not self.links:
            return None
        start = min(rule.start for rule in self.links)
        end = max(
            _INF if rule.end is None else rule.end for rule in self.links
        )
        return (start, end)

    @property
    def healed_at(self) -> float:
        """Earliest time after which no rule is active (inf if never)."""
        bound = 0.0
        for rule in self.links:
            bound = max(bound, _INF if rule.end is None else rule.end)
        for crash in self.crashes:
            bound = max(bound, _INF if crash.recover_at is None else crash.recover_at)
        for partition in self.partitions:
            bound = max(bound, _INF if partition.heal_at is None else partition.heal_at)
        return bound

    @property
    def is_empty(self) -> bool:
        return not (self.links or self.crashes or self.partitions)
