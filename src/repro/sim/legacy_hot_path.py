"""Frozen pre-overhaul hot path: the reference twin for the per-event rebuild.

The per-event hot-path overhaul (tuple-keyed scheduler heap, per-link send
caches, interned counter cells, type-keyed site dispatch) claims *byte
identity*: RNG draw order, event firing order, counter names and values,
snapshots, and trace outcomes must all be unchanged.  That claim needs a
reference implementation to twin against, so this module keeps a verbatim
copy of the previous engine layers:

- :class:`LegacyScheduler` -- the ``dataclass(order=True)`` event heap whose
  sift comparisons run generated Python ``__lt__`` instead of C tuple
  compares;
- :class:`LegacyNetwork` -- the per-send lookup chain (``_endpoints``,
  ``_pair_streams``, ``_last_delivery``, ``_crashed``, partition map, fault
  window) plus a fresh closure and f-string counter names per delivery;
- :class:`LegacySite` -- the two per-receive ``isinstance`` probes against
  the sequenced-payload tuple and the per-receive ``Bundle`` import.

``use_legacy_hot_path()`` patches the classes into
:mod:`repro.sim.simulation` for the duration of a ``with`` block, so a
simulation *constructed* inside the block runs entirely on the old layers
(the parallel engine forks after construction, so workers inherit them too).
The equivalence suite (``tests/integration/test_hot_path_equivalence.py``)
and benchmark E23 build twins this way and compare snapshots, merged
metrics, and trace outcomes byte for byte.

Two deliberate deviations from the historical source, both semantics-free:

- the legacy scheduler accepts the new ``arg=`` callback form (it stores the
  argument on the event and fires ``fn(arg)``), because shared parallel-engine
  code schedules deliveries that way on whichever scheduler it is given;
- class names carry the ``Legacy`` prefix.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..config import NetworkConfig
from ..errors import SchedulerError, UnknownSiteError
from ..ids import SiteId
from ..metrics import MetricsRecorder, names
from ..net.faults import FaultPlan
from ..net.latency import LatencyModel, UniformLatency
from ..net.message import Message, Payload
from ..site.site import Site
from .rng import RngRegistry
from .scheduler import _NO_ARG, EventCallback, EventHandle

DeliverFn = Callable[[Message], None]

_COMPACT_MIN_QUEUE = 64


@dataclass(order=True, slots=True)
class _LegacyEvent:
    time: float
    seq: int
    callback: Optional[EventCallback] = field(compare=False)
    label: str = field(compare=False, default="")
    owner: Optional["LegacyScheduler"] = field(compare=False, default=None)
    site: Optional[SiteId] = field(compare=False, default=None)
    arg: object = field(compare=False, default=_NO_ARG)

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> None:
        if self.callback is None:
            return
        self.callback = None
        if self.owner is not None:
            self.owner._note_cancelled()


class LegacyScheduler:
    """The pre-overhaul scheduler: a heap of order-comparable dataclasses."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[_LegacyEvent] = []
        self._events_fired = 0
        self._live_events = 0
        self._cancelled_events = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return self._live_events

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        label: str = "",
        site: Optional[SiteId] = None,
        arg: object = _NO_ARG,
    ) -> EventHandle:
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self._push(self._now + delay, callback, label, site, arg)

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        label: str = "",
        site: Optional[SiteId] = None,
        arg: object = _NO_ARG,
    ) -> EventHandle:
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._push(time, callback, label, site, arg)

    def _push(
        self,
        time: float,
        callback: EventCallback,
        label: str,
        site: Optional[SiteId],
        arg: object = _NO_ARG,
    ) -> EventHandle:
        event = _LegacyEvent(
            time=time, seq=self._seq, callback=callback, label=label, owner=self,
            site=site, arg=arg,
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live_events += 1
        return EventHandle(event)

    def _note_cancelled(self) -> None:
        self._live_events -= 1
        self._cancelled_events += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled_events * 2 > len(self._queue)
        ):
            self.compact()

    def compact(self) -> None:
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_events = 0

    def _pop_cancelled_head(self) -> None:
        heapq.heappop(self._queue)
        self._cancelled_events -= 1

    def retain_sites(self, sites: Set[SiteId]) -> int:
        untagged = [
            event.label or "<unlabelled>"
            for event in self._queue
            if not event.cancelled and event.site is None
        ]
        if untagged:
            raise SchedulerError(
                "cannot shard a scheduler holding site-untagged events: "
                + ", ".join(sorted(set(untagged))[:8])
            )
        kept = [
            event
            for event in self._queue
            if not event.cancelled and event.site in sites
        ]
        heapq.heapify(kept)
        self._queue = kept
        self._live_events = len(kept)
        self._cancelled_events = 0
        return len(kept)

    def peek_time(self) -> float:
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                self._pop_cancelled_head()
                continue
            return head.time
        return float("inf")

    def next_event_time(self) -> float:
        return self.peek_time()

    def live_events(self):
        for event in self._queue:
            if not event.cancelled:
                yield event.time, event.label, event.site

    def step(self) -> bool:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_events -= 1
                continue
            self._now = event.time
            callback, event.callback = event.callback, None
            assert callback is not None
            self._live_events -= 1
            self._events_fired += 1
            if event.arg is _NO_ARG:
                callback()
            else:
                callback(event.arg)
            return True
        return False

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                self._pop_cancelled_head()
                continue
            if head.time > time:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if not (max_events is not None and fired >= max_events):
            self._now = max(self._now, time)
        return fired

    def run_until_before(self, bound: float) -> int:
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                self._pop_cancelled_head()
                continue
            if head.time >= bound:
                break
            self.step()
            fired += 1
        return fired

    def advance_clock(self, time: float) -> None:
        self._now = max(self._now, time)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        return self.run_until(self._now + duration, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> int:
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        if fired >= max_events and self.pending:
            raise SchedulerError(
                f"drain exceeded {max_events} events with {self.pending} still pending"
            )
        return fired


class LegacyNetwork:
    """The pre-overhaul network: full per-send lookup chain, closure per
    delivery, f-string counter names per message."""

    def __init__(
        self,
        scheduler,
        rng: RngRegistry,
        metrics: MetricsRecorder,
        config: Optional[NetworkConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self._scheduler = scheduler
        self._rng_registry = rng
        self._rng = rng.stream("network")
        self._metrics = metrics
        self._config = config or NetworkConfig()
        self._latency = latency_model or UniformLatency(
            self._config.min_latency, self._config.max_latency
        )
        self._faults = fault_plan if fault_plan is not None and not fault_plan.is_empty else None
        self._fault_window = self._faults.link_window if self._faults else None
        self._endpoints: Dict[SiteId, DeliverFn] = {}
        self._crashed: Set[SiteId] = set()
        self._partition: Optional[Dict[SiteId, int]] = None
        self._last_delivery: Dict[Tuple[SiteId, SiteId], float] = {}
        self._in_flight: Dict[int, Message] = {}
        self._pair_streams: Optional[Dict[Tuple[SiteId, SiteId], random.Random]] = (
            {} if self._config.pair_rng_streams else None
        )
        self._fault_streams: Dict[Tuple[SiteId, SiteId], random.Random] = {}
        self._shard_sites: Optional[Set[SiteId]] = None
        self._shard_outbox: Optional[List[Tuple[float, Message]]] = None
        self._ring_writer: Optional[Callable[[float, Message], bool]] = None

    # -- topology -----------------------------------------------------------

    def register(self, site_id: SiteId, deliver: DeliverFn) -> None:
        self._endpoints[site_id] = deliver

    def known_sites(self) -> Set[SiteId]:
        return set(self._endpoints)

    @property
    def fault_plan(self) -> Optional[FaultPlan]:
        return self._faults

    # -- failures -----------------------------------------------------------

    def crash(self, site_id: SiteId) -> None:
        self._crashed.add(site_id)

    def recover(self, site_id: SiteId) -> None:
        self._crashed.discard(site_id)

    def is_crashed(self, site_id: SiteId) -> bool:
        return site_id in self._crashed

    def partition(self, *groups: Set[SiteId]) -> None:
        mapping: Dict[SiteId, int] = {}
        for index, group in enumerate(groups):
            for site_id in group:
                mapping[site_id] = index
        implicit = len(groups)
        for site_id in self._endpoints:
            mapping.setdefault(site_id, implicit)
        self._partition = mapping

    def heal_partition(self) -> None:
        self._partition = None

    def _partitioned(self, src: SiteId, dst: SiteId) -> bool:
        if self._partition is None:
            return False
        return self._partition.get(src) != self._partition.get(dst)

    def _blocked(self, src: SiteId, dst: SiteId) -> Optional[str]:
        if src in self._crashed or dst in self._crashed:
            return "crash"
        if self._partitioned(src, dst):
            return "partition"
        return None

    def _drop(self, message: Message, reason: str) -> None:
        kind = message.kind
        if message.dup:
            self._metrics.incr(names.msg_dup_dropped(kind))
            return
        self._metrics.incr(names.MSG_LOST)
        self._metrics.incr(names.msg_dropped_kind(kind))
        self._metrics.incr(names.msg_dropped_reason(reason))

    # -- sharding (parallel engine support) ---------------------------------

    def attach_shard(
        self,
        sites: Set[SiteId],
        outbox: List[Tuple[float, Message]],
        ring_writer: Optional[Callable[[float, Message], bool]] = None,
    ) -> None:
        if self._pair_streams is None:
            raise UnknownSiteError(
                "shard mode requires NetworkConfig.pair_rng_streams"
            )
        if self._partition is not None:
            raise UnknownSiteError("shard mode does not support partitions")
        self._shard_sites = set(sites)
        self._shard_outbox = outbox
        self._ring_writer = ring_writer

    @property
    def shard_sites(self) -> Optional[Set[SiteId]]:
        return None if self._shard_sites is None else set(self._shard_sites)

    def min_cross_latency(self, sites: Set[SiteId]) -> Optional[float]:
        best: Optional[float] = None
        outside = [dst for dst in self._endpoints if dst not in sites]
        if not outside:
            return None
        for src in sites:
            for dst in outside:
                bound = self._latency.min_delay(src, dst)
                if bound is None:
                    return None
                if best is None or bound < best:
                    best = bound
        return best

    def deliver_remote(self, message: Message) -> None:
        self._deliver(message)

    def _rng_for(self, src: SiteId, dst: SiteId) -> random.Random:
        if self._pair_streams is None:
            return self._rng
        stream = self._pair_streams.get((src, dst))
        if stream is None:
            stream = self._rng_registry.stream(f"net:{src}->{dst}")
            self._pair_streams[(src, dst)] = stream
        return stream

    def _fault_rng(self, src: SiteId, dst: SiteId) -> random.Random:
        stream = self._fault_streams.get((src, dst))
        if stream is None:
            stream = self._rng_registry.stream(f"fault:{src}->{dst}")
            self._fault_streams[(src, dst)] = stream
        return stream

    # -- sending ------------------------------------------------------------

    def send(self, src: SiteId, dst: SiteId, payload: Payload) -> None:
        if dst not in self._endpoints:
            raise UnknownSiteError(f"no site registered as {dst!r}")
        message = Message(src=src, dst=dst, payload=payload)
        self._metrics.record_message(message.kind, payload.size_units())
        self._metrics.incr(f"units.{message.kind}", payload.size_units())
        self._metrics.incr(f"involve.{message.kind}.{src}")
        self._metrics.incr(f"involve.{message.kind}.{dst}")

        reason = self._blocked(src, dst)
        if reason is not None:
            self._drop(message, reason)
            return
        rng = self._rng_for(src, dst)
        if self._config.drop_probability and rng.random() < self._config.drop_probability:
            self._drop(message, "loss")
            return
        extra_delay = 0.0
        duplicate_lags: Tuple[float, ...] = ()
        if (
            self._fault_window is not None
            and self._fault_window[0] <= self._scheduler.now < self._fault_window[1]
        ):
            fate = self._faults.roll(
                self._scheduler.now, src, dst, self._fault_rng(src, dst)
            )
            if fate.drop:
                self._drop(message, "fault")
                return
            extra_delay = fate.extra_delay
            duplicate_lags = fate.duplicate_lags

        delay = self._latency.sample(rng, src, dst) + extra_delay
        deliver_at = self._clamp_fifo(src, dst, self._scheduler.now + delay)
        self._dispatch(message, deliver_at)
        for lag in duplicate_lags:
            copy = Message(src=src, dst=dst, payload=payload, dup=True)
            self._metrics.incr(names.msg_duplicated(message.kind))
            self._dispatch(copy, self._clamp_fifo(src, dst, deliver_at + lag))

    def _clamp_fifo(self, src: SiteId, dst: SiteId, deliver_at: float) -> float:
        if not self._config.fifo_per_pair:
            return deliver_at
        pair = (src, dst)
        floor = self._last_delivery.get(pair, 0.0)
        deliver_at = max(deliver_at, floor)
        self._last_delivery[pair] = deliver_at
        return deliver_at

    def _dispatch(self, message: Message, deliver_at: float) -> None:
        if self._shard_sites is not None and message.dst not in self._shard_sites:
            if self._ring_writer is not None and self._ring_writer(
                deliver_at, message
            ):
                return
            self._shard_outbox.append((deliver_at, message))
            return
        self._in_flight[message.uid] = message
        self._scheduler.schedule_at(
            deliver_at,
            lambda: self._deliver(message),
            label=f"deliver:{message.kind}",
            site=message.dst,
        )

    def in_flight_messages(self):
        return list(self._in_flight.values())

    def _deliver(self, message: Message) -> None:
        self._in_flight.pop(message.uid, None)
        reason = self._blocked(message.src, message.dst)
        if reason is not None:
            self._drop(message, reason)
            return
        if message.dup:
            self._metrics.incr(names.msg_dup_delivered(message.kind))
        else:
            self._metrics.incr(names.MSG_DELIVERED)
            self._metrics.incr(names.msg_delivered_kind(message.kind))
        self._endpoints[message.dst](message)


class LegacySite(Site):
    """The pre-overhaul site boundary: isinstance probes per send/receive."""

    def send(self, dst: SiteId, payload: Payload) -> None:
        if self.crashed:
            return
        if isinstance(payload, self._sequenced) and payload.seq < 0:
            seq = self._mutation_seq.get(dst, 0) + 1
            self._mutation_seq[dst] = seq
            payload = replace(payload, seq=seq)
        if self._sender is not None:
            self._sender.send(dst, payload)
        else:
            self.network.send(self.site_id, dst, payload)

    def receive(self, message: Message) -> None:
        if self.crashed:
            return
        from ..net.batching import Bundle
        from ..net.reliability import DedupWindow

        if isinstance(message.payload, Bundle):
            for payload in message.payload.payloads:
                self.receive(Message(src=message.src, dst=message.dst, payload=payload))
            return
        payload = message.payload
        if isinstance(payload, self._sequenced) and payload.seq > 0:
            window = self._mutation_dedup.setdefault(message.src, DedupWindow())
            if window.seen(payload.seq):
                self.metrics.incr(names.dup_suppressed(message.kind))
                return
        handler = self._handlers.get(type(payload))
        if handler is None:
            raise TypeError(f"site {self.site_id}: no handler for {message.kind}")
        handler(message)


class use_legacy_hot_path:
    """Context manager: simulations built inside run on the legacy layers.

    Patches ``Scheduler``, ``Network``, and ``Site`` in
    :mod:`repro.sim.simulation` (the only place the engine classes are
    instantiated), so any :class:`~repro.sim.simulation.Simulation` --
    sequential or parallel -- *constructed* inside the block is wired with
    the frozen implementations.  Construction is what matters: the objects
    keep their classes after the block exits, and parallel workers inherit
    them through the fork.
    """

    def __enter__(self):
        from . import simulation

        self._saved = (simulation.Scheduler, simulation.Network, simulation.Site)
        simulation.Scheduler = LegacyScheduler
        simulation.Network = LegacyNetwork
        simulation.Site = LegacySite
        return self

    def __exit__(self, *exc):
        from . import simulation

        simulation.Scheduler, simulation.Network, simulation.Site = self._saved
        return False
