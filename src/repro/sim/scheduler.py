"""Priority-queue event scheduler with deterministic tie-breaking.

Events at equal simulated times fire in the order they were scheduled (a
monotonic sequence number breaks ties), so a run is fully determined by the
sequence of ``schedule`` calls -- no dict-ordering or hash-randomization
effects can change behaviour between runs.

Two features exist for the sharded parallel engine (:mod:`repro.sim.parallel`):

- every event may carry an owning *site* tag, which lets a forked shard
  worker retain exactly the events that belong to its sites
  (:meth:`Scheduler.retain_sites`);
- :meth:`Scheduler.run_until_before` fires events *strictly below* a bound,
  which is the shape conservative-lookahead windows need (a shard may run all
  events below the global safe time, and nothing at or past it).

Cancelled events are removed lazily when popped; when more than half of a
non-trivial queue is cancelled carcasses (e.g. the back-trace timeout handles
cancelled on every completed trace), the queue is compacted in one O(n)
rebuild so memory and pop cost stay proportional to live events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from ..errors import SchedulerError
from ..ids import SiteId

EventCallback = Callable[[], None]

_COMPACT_MIN_QUEUE = 64
"""Queues smaller than this are never compacted (rebuild cost beats benefit)."""


@dataclass(order=True, slots=True)
class _Event:
    time: float
    seq: int
    callback: Optional[EventCallback] = field(compare=False)
    label: str = field(compare=False, default="")
    owner: Optional["Scheduler"] = field(compare=False, default=None)
    site: Optional[SiteId] = field(compare=False, default=None)

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> None:
        if self.callback is None:
            return
        self.callback = None
        if self.owner is not None:
            self.owner._note_cancelled()


class EventHandle:
    """Returned by :meth:`Scheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire (or would have)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is a no-op."""
        self._event.cancel()


class Scheduler:
    """A discrete-event scheduler: simulated clock plus a timed callback queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[_Event] = []
        self._events_fired = 0
        self._live_events = 0
        self._cancelled_events = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued, not-yet-cancelled events (O(1): a live counter
        maintained on schedule/cancel/fire, not a queue scan)."""
        return self._live_events

    @property
    def queue_length(self) -> int:
        """Physical queue length including cancelled carcasses (introspection
        for the compaction tests; ``pending`` is the semantic count)."""
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (for progress reporting)."""
        return self._events_fired

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        label: str = "",
        site: Optional[SiteId] = None,
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated time units.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant, preserving FIFO
        order within a timestamp.  ``site`` tags the event with the site it
        belongs to; the parallel engine partitions the queue by this tag.
        """
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self._push(self._now + delay, callback, label, site)

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        label: str = "",
        site: Optional[SiteId] = None,
    ) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``.

        Uses the absolute timestamp *exactly* -- converting to a relative
        delay and back loses bits to float rounding, which once broke the
        network's per-pair FIFO clamp by landing a delivery fractionally
        before an earlier one scheduled for the same instant.
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._push(time, callback, label, site)

    def _push(
        self, time: float, callback: EventCallback, label: str, site: Optional[SiteId]
    ) -> EventHandle:
        event = _Event(
            time=time, seq=self._seq, callback=callback, label=label, owner=self,
            site=site,
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live_events += 1
        return EventHandle(event)

    # -- cancellation bookkeeping / compaction ------------------------------

    def _note_cancelled(self) -> None:
        self._live_events -= 1
        self._cancelled_events += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled_events * 2 > len(self._queue)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled carcasses and re-heapify the survivors.

        Firing order is unchanged: the surviving events keep their (time,
        seq) keys, and ``heapify`` restores the heap invariant over exactly
        that comparable set.
        """
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_events = 0

    def _pop_cancelled_head(self) -> None:
        heapq.heappop(self._queue)
        self._cancelled_events -= 1

    # -- shard support ------------------------------------------------------

    def retain_sites(self, sites: Set[SiteId]) -> int:
        """Keep only events tagged with one of ``sites``; return kept count.

        Used by a forked shard worker right after fork: the inherited queue
        holds every site's events, and the worker must own exactly its
        shard's.  Events without a site tag cannot be attributed to a shard,
        so their presence is an error -- running them in one worker (or all)
        would diverge from the sequential engine.
        """
        untagged = [
            event.label or "<unlabelled>"
            for event in self._queue
            if not event.cancelled and event.site is None
        ]
        if untagged:
            raise SchedulerError(
                "cannot shard a scheduler holding site-untagged events: "
                + ", ".join(sorted(set(untagged))[:8])
            )
        kept = [
            event
            for event in self._queue
            if not event.cancelled and event.site in sites
        ]
        heapq.heapify(kept)
        self._queue = kept
        self._live_events = len(kept)
        self._cancelled_events = 0
        return len(kept)

    def peek_time(self) -> float:
        """Timestamp of the earliest live event, or +inf when idle.

        O(1) amortized: cancelled carcasses at the head are pruned as a side
        effect (each is popped at most once across all calls), and the first
        live head is returned without popping it.  This is the public way to
        read the queue frontier -- the parallel engine's horizon and
        earliest-output-time computations build on it instead of touching
        the heap internals.
        """
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                self._pop_cancelled_head()
                continue
            return head.time
        return float("inf")

    def next_event_time(self) -> float:
        """Alias of :meth:`peek_time` (the historical name)."""
        return self.peek_time()

    def live_events(self):
        """Iterate ``(time, label, site)`` of every live event, heap order.

        A read-only scan (no pops, no compaction) for consumers that need
        more than the frontier -- the shard workers' earliest-output-time
        scan walks it once per window reply.  Order is the heap's physical
        order, not firing order; callers reduce (min), they do not replay.
        """
        for event in self._queue:
            if not event.cancelled:
                yield event.time, event.label, event.site

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_events -= 1
                continue
            self._now = event.time
            callback, event.callback = event.callback, None
            assert callback is not None
            self._live_events -= 1
            self._events_fired += 1
            callback()
            return True
        return False

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Fire events with timestamps <= ``time``; return how many fired.

        The clock is advanced to ``time`` even if the queue drains early, so
        periodic activities rescheduled by their own callbacks stay aligned.
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                self._pop_cancelled_head()
                continue
            if head.time > time:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if not (max_events is not None and fired >= max_events):
            self._now = max(self._now, time)
        return fired

    def run_until_before(self, bound: float) -> int:
        """Fire every event with timestamp strictly below ``bound``.

        The conservative-lookahead window of the parallel engine: a shard may
        execute all events below the global safe time but nothing at or past
        it.  The clock is *not* force-advanced to ``bound`` -- it moves only
        as events fire, so a later window (or :meth:`advance_clock`) decides
        the final clock position.
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                self._pop_cancelled_head()
                continue
            if head.time >= bound:
                break
            self.step()
            fired += 1
        return fired

    def advance_clock(self, time: float) -> None:
        """Move the clock forward to ``time`` without firing anything.

        Complements :meth:`run_until_before` at the end of a windowed
        advance; never moves the clock backwards.
        """
        self._now = max(self._now, time)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Fire events within the next ``duration`` time units."""
        return self.run_until(self._now + duration, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Fire events until the queue is empty (bounded by ``max_events``)."""
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        if fired >= max_events and self.pending:
            raise SchedulerError(
                f"drain exceeded {max_events} events with {self.pending} still pending"
            )
        return fired
