"""Priority-queue event scheduler with deterministic tie-breaking.

Events at equal simulated times fire in the order they were scheduled (a
monotonic sequence number breaks ties), so a run is fully determined by the
sequence of ``schedule`` calls -- no dict-ordering or hash-randomization
effects can change behaviour between runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SchedulerError

EventCallback = Callable[[], None]


@dataclass(order=True, slots=True)
class _Event:
    time: float
    seq: int
    callback: Optional[EventCallback] = field(compare=False)
    label: str = field(compare=False, default="")
    owner: Optional["Scheduler"] = field(compare=False, default=None)

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> None:
        if self.callback is None:
            return
        self.callback = None
        if self.owner is not None:
            self.owner._live_events -= 1


class EventHandle:
    """Returned by :meth:`Scheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire (or would have)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is a no-op."""
        self._event.cancel()


class Scheduler:
    """A discrete-event scheduler: simulated clock plus a timed callback queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[_Event] = []
        self._events_fired = 0
        self._live_events = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued, not-yet-cancelled events (O(1): a live counter
        maintained on schedule/cancel/fire, not a queue scan)."""
        return self._live_events

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (for progress reporting)."""
        return self._events_fired

    def schedule(self, delay: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Run ``callback`` after ``delay`` simulated time units.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant, preserving FIFO
        order within a timestamp.
        """
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self._push(self._now + delay, callback, label)

    def schedule_at(self, time: float, callback: EventCallback, label: str = "") -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``.

        Uses the absolute timestamp *exactly* -- converting to a relative
        delay and back loses bits to float rounding, which once broke the
        network's per-pair FIFO clamp by landing a delivery fractionally
        before an earlier one scheduled for the same instant.
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._push(time, callback, label)

    def _push(self, time: float, callback: EventCallback, label: str) -> EventHandle:
        event = _Event(time=time, seq=self._seq, callback=callback, label=label, owner=self)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live_events += 1
        return EventHandle(event)

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            callback, event.callback = event.callback, None
            assert callback is not None
            self._live_events -= 1
            self._events_fired += 1
            callback()
            return True
        return False

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Fire events with timestamps <= ``time``; return how many fired.

        The clock is advanced to ``time`` even if the queue drains early, so
        periodic activities rescheduled by their own callbacks stay aligned.
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if not (max_events is not None and fired >= max_events):
            self._now = max(self._now, time)
        return fired

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Fire events within the next ``duration`` time units."""
        return self.run_until(self._now + duration, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Fire events until the queue is empty (bounded by ``max_events``)."""
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        if fired >= max_events and self.pending:
            raise SchedulerError(
                f"drain exceeded {max_events} events with {self.pending} still pending"
            )
        return fired
