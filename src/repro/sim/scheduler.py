"""Priority-queue event scheduler with deterministic tie-breaking.

Events at equal simulated times fire in the order they were scheduled (a
monotonic sequence number breaks ties), so a run is fully determined by the
sequence of ``schedule`` calls -- no dict-ordering or hash-randomization
effects can change behaviour between runs.

The heap holds ``(time, seq, event)`` tuples rather than order-comparable
event objects: ``seq`` is unique, so every sift comparison is decided by the
C tuple comparison on a float (and at worst an int) and never falls through
to Python-level ``__lt__``.  This is the per-event hot path of the whole
simulator -- the sequential engine and every shard worker's inner loop pay
one push and one pop per event -- and generated dataclass comparisons were
its single largest interpreter cost (see benchmark E23; the pre-overhaul
implementation survives as :mod:`repro.sim.legacy_hot_path` and is twinned
byte-for-byte against this one).

Callbacks come in two forms: a plain thunk ``fn()`` or, with the ``arg``
keyword, ``fn(arg)``.  The second form exists for the network's deliveries
-- the hottest schedule site in the system -- which previously allocated a
fresh closure per message just to carry the :class:`~repro.net.message.
Message` into the callback.

Two features exist for the sharded parallel engine (:mod:`repro.sim.parallel`):

- every event may carry an owning *site* tag, which lets a forked shard
  worker retain exactly the events that belong to its sites
  (:meth:`Scheduler.retain_sites`);
- :meth:`Scheduler.run_until_before` fires events *strictly below* a bound,
  which is the shape conservative-lookahead windows need (a shard may run all
  events below the global safe time, and nothing at or past it).

Cancelled events are removed lazily when popped; when more than half of a
non-trivial queue is cancelled carcasses (e.g. the back-trace timeout handles
cancelled on every completed trace), the queue is compacted in one O(n)
rebuild so memory and pop cost stay proportional to live events.  In
addition, every bounded run prunes cancelled *heads* on entry and exit --
a storm of timeouts cancelled beyond the current window therefore cannot
linger at the front of the queue across many short ``run_for`` calls (each
would otherwise re-discover them before reaching its first live event).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Set, Tuple

from ..errors import SchedulerError
from ..ids import SiteId

EventCallback = Callable[[], None]

_COMPACT_MIN_QUEUE = 64
"""Queues smaller than this are never compacted (rebuild cost beats benefit)."""

_NO_ARG = object()
"""Sentinel: the event's callback is a plain thunk, fire it as ``fn()``."""


class _Event:
    """Mutable per-event record riding third in the heap tuples.

    Not order-comparable -- the heap never compares it, because the
    ``(time, seq)`` tuple prefix is unique.  ``fn is None`` doubles as the
    cancelled/consumed mark, exactly as the legacy dataclass used its
    ``callback`` field.
    """

    __slots__ = ("time", "seq", "fn", "arg", "label", "owner", "site")

    def __init__(self, time, seq, fn, arg, label, owner, site):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.arg = arg
        self.label = label
        self.owner = owner
        self.site = site

    @property
    def cancelled(self) -> bool:
        return self.fn is None

    def cancel(self) -> None:
        if self.fn is None:
            return
        self.fn = None
        self.arg = None
        if self.owner is not None:
            self.owner._note_cancelled()


#: A heap entry: C-comparable key prefix, then the event record.
_Entry = Tuple[float, int, _Event]


class EventHandle:
    """Returned by :meth:`Scheduler.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event):
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire (or would have)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is a no-op."""
        self._event.cancel()


class Scheduler:
    """A discrete-event scheduler: simulated clock plus a timed callback queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[_Entry] = []
        self._events_fired = 0
        self._live_events = 0
        self._cancelled_events = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued, not-yet-cancelled events (O(1): a live counter
        maintained on schedule/cancel/fire, not a queue scan)."""
        return self._live_events

    @property
    def queue_length(self) -> int:
        """Physical queue length including cancelled carcasses (introspection
        for the compaction tests; ``pending`` is the semantic count)."""
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (for progress reporting)."""
        return self._events_fired

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        label: str = "",
        site: Optional[SiteId] = None,
        arg: object = _NO_ARG,
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated time units.

        ``delay`` must be non-negative; zero-delay events fire after all
        events already scheduled for the current instant, preserving FIFO
        order within a timestamp.  ``site`` tags the event with the site it
        belongs to; the parallel engine partitions the queue by this tag.
        With ``arg`` given, the event fires as ``callback(arg)`` -- the
        closure-free delivery form of the network hot path.
        """
        if delay < 0:
            raise SchedulerError(f"cannot schedule into the past (delay={delay})")
        return self._push(self._now + delay, callback, label, site, arg)

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        label: str = "",
        site: Optional[SiteId] = None,
        arg: object = _NO_ARG,
    ) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``.

        Uses the absolute timestamp *exactly* -- converting to a relative
        delay and back loses bits to float rounding, which once broke the
        network's per-pair FIFO clamp by landing a delivery fractionally
        before an earlier one scheduled for the same instant.
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._push(time, callback, label, site, arg)

    def _push(
        self,
        time: float,
        callback: EventCallback,
        label: str,
        site: Optional[SiteId],
        arg: object = _NO_ARG,
    ) -> EventHandle:
        seq = self._seq
        self._seq = seq + 1
        event = _Event(time, seq, callback, arg, label, self, site)
        heapq.heappush(self._queue, (time, seq, event))
        self._live_events += 1
        return EventHandle(event)

    # -- cancellation bookkeeping / compaction ------------------------------

    def _note_cancelled(self) -> None:
        self._live_events -= 1
        self._cancelled_events += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled_events * 2 > len(self._queue)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled carcasses and re-heapify the survivors.

        Firing order is unchanged: the surviving entries keep their (time,
        seq) keys, and ``heapify`` restores the heap invariant over exactly
        that comparable set.
        """
        self._queue = [entry for entry in self._queue if entry[2].fn is not None]
        heapq.heapify(self._queue)
        self._cancelled_events = 0

    def _prune_cancelled_heads(self) -> None:
        """Pop every cancelled carcass sitting at the queue front.

        Called on entry *and* exit of the bounded run loops: a batch of
        timeouts cancelled past the current window bound is discarded the
        moment it surfaces, instead of being re-inspected at the head by
        every subsequent short ``run_for`` call until one finally reaches
        its timestamp.  Each carcass is popped at most once overall, so the
        amortized cost stays O(1) per cancelled event.
        """
        queue = self._queue
        while queue and queue[0][2].fn is None:
            heapq.heappop(queue)
            self._cancelled_events -= 1

    # -- shard support ------------------------------------------------------

    def retain_sites(self, sites: Set[SiteId]) -> int:
        """Keep only events tagged with one of ``sites``; return kept count.

        Used by a forked shard worker right after fork: the inherited queue
        holds every site's events, and the worker must own exactly its
        shard's.  Events without a site tag cannot be attributed to a shard,
        so their presence is an error -- running them in one worker (or all)
        would diverge from the sequential engine.
        """
        untagged = [
            entry[2].label or "<unlabelled>"
            for entry in self._queue
            if entry[2].fn is not None and entry[2].site is None
        ]
        if untagged:
            raise SchedulerError(
                "cannot shard a scheduler holding site-untagged events: "
                + ", ".join(sorted(set(untagged))[:8])
            )
        kept = [
            entry
            for entry in self._queue
            if entry[2].fn is not None and entry[2].site in sites
        ]
        heapq.heapify(kept)
        self._queue = kept
        self._live_events = len(kept)
        self._cancelled_events = 0
        return len(kept)

    def peek_time(self) -> float:
        """Timestamp of the earliest live event, or +inf when idle.

        O(1) amortized: cancelled carcasses at the head are pruned as a side
        effect (each is popped at most once across all calls), and the first
        live head is returned without popping it.  This is the public way to
        read the queue frontier -- the parallel engine's horizon and
        earliest-output-time computations build on it instead of touching
        the heap internals.
        """
        self._prune_cancelled_heads()
        if self._queue:
            return self._queue[0][0]
        return float("inf")

    def next_event_time(self) -> float:
        """Alias of :meth:`peek_time` (the historical name)."""
        return self.peek_time()

    def live_events(self):
        """Iterate ``(time, label, site)`` of every live event, heap order.

        A read-only scan (no pops, no compaction) for consumers that need
        more than the frontier -- the shard workers' earliest-output-time
        scan walks it once per window reply.  Order is the heap's physical
        order, not firing order; callers reduce (min), they do not replay.
        """
        for _time, _seq, event in self._queue:
            if event.fn is not None:
                yield event.time, event.label, event.site

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            fn = event.fn
            if fn is None:
                self._cancelled_events -= 1
                continue
            self._now = time
            event.fn = None
            self._live_events -= 1
            self._events_fired += 1
            if event.arg is _NO_ARG:
                fn()
            else:
                fn(event.arg)
            return True
        return False

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Fire events with timestamps <= ``time``; return how many fired.

        The clock is advanced to ``time`` even if the queue drains early, so
        periodic activities rescheduled by their own callbacks stay aligned.
        """
        fired = 0
        queue = self._queue
        self._prune_cancelled_heads()
        while queue:
            head = queue[0]
            event = head[2]
            fn = event.fn
            if fn is None:
                heapq.heappop(queue)
                self._cancelled_events -= 1
                continue
            if head[0] > time:
                break
            if max_events is not None and fired >= max_events:
                break
            # Inline firing (the body of step()): the head was just
            # inspected, popping it again through step() would re-test it.
            heapq.heappop(queue)
            self._now = head[0]
            event.fn = None
            self._live_events -= 1
            self._events_fired += 1
            if event.arg is _NO_ARG:
                fn()
            else:
                fn(event.arg)
            fired += 1
            # The callback may have cancelled enough events to trigger a
            # compaction (which rebuilds the queue list): re-read it.
            queue = self._queue
        self._prune_cancelled_heads()
        if not (max_events is not None and fired >= max_events):
            self._now = max(self._now, time)
        return fired

    def run_until_before(self, bound: float) -> int:
        """Fire every event with timestamp strictly below ``bound``.

        The conservative-lookahead window of the parallel engine: a shard may
        execute all events below the global safe time but nothing at or past
        it.  The clock is *not* force-advanced to ``bound`` -- it moves only
        as events fire, so a later window (or :meth:`advance_clock`) decides
        the final clock position.
        """
        fired = 0
        queue = self._queue
        self._prune_cancelled_heads()
        while queue:
            head = queue[0]
            event = head[2]
            fn = event.fn
            if fn is None:
                heapq.heappop(queue)
                self._cancelled_events -= 1
                continue
            if head[0] >= bound:
                break
            heapq.heappop(queue)
            self._now = head[0]
            event.fn = None
            self._live_events -= 1
            self._events_fired += 1
            if event.arg is _NO_ARG:
                fn()
            else:
                fn(event.arg)
            fired += 1
            # Compaction inside the callback rebuilds the list: re-read it.
            queue = self._queue
        self._prune_cancelled_heads()
        return fired

    def advance_clock(self, time: float) -> None:
        """Move the clock forward to ``time`` without firing anything.

        Complements :meth:`run_until_before` at the end of a windowed
        advance; never moves the clock backwards.
        """
        self._now = max(self._now, time)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Fire events within the next ``duration`` time units."""
        return self.run_until(self._now + duration, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Fire events until the queue is empty (bounded by ``max_events``)."""
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        if fired >= max_events and self.pending:
            raise SchedulerError(
                f"drain exceeded {max_events} events with {self.pending} still pending"
            )
        return fired
