"""Deterministic discrete-event simulation kernel.

The kernel is deliberately tiny: a single priority queue of timed callbacks
(:class:`Scheduler`), named seeded random streams (:class:`RngRegistry`), and
a :class:`Simulation` object that wires the scheduler to a network and a set
of sites.  Every run is a pure function of its seed and the registered event
handlers, which makes experiments replayable and test failures minimizable.
"""

from .scheduler import EventHandle, Scheduler
from .rng import RngRegistry
from .simulation import Simulation
from .parallel import ParallelSimulation, SafeTimePlanner, assign_shards

__all__ = [
    "EventHandle",
    "Scheduler",
    "RngRegistry",
    "Simulation",
    "ParallelSimulation",
    "SafeTimePlanner",
    "assign_shards",
]
