"""Sharded parallel simulation engine with conservative lookahead.

The sequential :class:`~repro.sim.simulation.Simulation` executes every
site's events on one scheduler.  This module partitions the sites across N
worker processes, each running its own :class:`~repro.sim.scheduler.Scheduler`
over its shard's events, and synchronizes the shards with conservative
lookahead in the Chandy--Misra--Bryant style.  Two window planners exist
(``SimulationConfig.window_planner``); both produce byte-identical
simulation results, because window boundaries only decide how often the
coordinator synchronizes, never what executes:

- **fixed** (the legacy planner): the coordinator repeatedly computes
  ``safe = min(horizon + lookahead, target)`` where ``horizon`` is the
  minimum over all shards of the earliest unexecuted event (including
  cross-shard messages still being routed) and ``lookahead`` is
  ``NetworkConfig.min_latency``.
- **demand** (the default): every window reply advertises the shard's
  *earliest output time* (EOT) -- the earliest instant at which anything
  the shard still holds could put a message on another shard's doorstep --
  and the coordinator plans ``safe = min(advertised EOTs, pending-message
  cascades, target)``.  A shard's EOT is the minimum over its live events
  of ``event time + shard lookahead``, where the shard lookahead is the
  tightest per-pair latency floor over its outbound links
  (:meth:`Network.min_cross_latency`, falling back to ``min_latency``),
  and provably-quiet GC-tick chains are looked *through*
  (:meth:`Site.quiet_gc_ticks`): a tick that will skip -- and, in delta
  mode, a forced full trace that will recompute the cached result and ship
  nothing -- contributes its first possibly-sending successor instead of
  itself.  Quiet stretches thus collapse into one window (a *quiescence
  jump* goes straight to the target), and when a window was dispatched
  with no routed input the next window command is issued before all
  replies are drained (*pipelined dispatch*), overlapping worker compute
  with coordination.

Every shard fires its events *strictly below* ``safe``
(:meth:`Scheduler.run_until_before`) and hands the coordinator any messages
addressed outside the shard.

Safety (fixed): an event executed inside a window has timestamp >=
``horizon``, so any message it sends arrives at ``>= horizon + min_latency
>= safe`` -- beyond every shard's executed frontier.  Safety (demand): any
message produced during the window traces back to some event that was live
when the EOTs were computed -- directly, through a cascade of derived
events (each no earlier than its parent), or through a quiet-tick chain
perturbed by such an event -- and therefore delivers at or after that
event's EOT term, hence at or after ``safe``.  Pending cross-shard
messages awaiting routing contribute ``deliver_at + destination-shard
lookahead`` terms for the cascades their delivery can start.  Pipelined
dispatch additionally relies on EOT *monotonicity under no input*: a shard
that received nothing can only get quieter, so the EOT it advertised one
window ago still lower-bounds everything it will output, which is why the
pipeline only engages when the previous window routed zero messages.  The
coordinator asserts the invariant at runtime: every routed message it
absorbs must deliver at or after the latest dispatched window bound.  No
shard can ever receive a message in its past, hence no rollback is needed.
Progress: every EOT term exceeds the horizon by at least the smallest
shard lookahead, so each round strictly advances; this requires
``min_latency > 0`` (with zero lookahead no window has positive width, and
the engine falls back to the sequential path with a warning).

Determinism: per-ordered-pair network RNG streams
(``NetworkConfig.pair_rng_streams``, forced on by this engine) make every
latency/loss draw depend only on the *sender's own* send order; per-site
event streams are already deterministic; and cross-shard messages are
injected into the receiving shard in ``(deliver_at, source site, sender
sequence)`` order.  A parallel run therefore produces the same final heap
contents, inref/outref tables, and collection survivors as a sequential run
of the same seed (with ``pair_rng_streams`` set) -- the equivalence tests
compare full snapshots byte for byte.

The data plane, in the spirit of the paper's small-messages discipline:

- **Persistent pool** (:class:`ShardWorkerPool`): workers fork once, after
  the simulation is fully constructed -- the child inherits the whole
  object graph by copy-on-write, prunes its scheduler to its shard
  (:meth:`Scheduler.retain_sites`), and puts its network into shard mode
  (:meth:`Network.attach_shard`).  From then on windows are driven over
  long-lived duplex pipes; nothing re-forks, and every byte that crosses a
  pipe is counted (:meth:`ParallelSimulation.coordination_stats`).
- **Packed wire format** (:mod:`repro.net.wire`, ``config.packed_wire``):
  cross-shard messages travel as struct-packed int records batched per
  (window, destination shard); the coordinator routes by scanning fixed
  headers without decoding payloads.  Payload kinds outside the hot set
  fall back to per-record pickling, so the protocol is total.
- **Shared arena** (:mod:`repro.store.shm`, ``config.shared_arena``): the
  coordinator pre-sizes one shared-memory region per site before forking;
  each worker re-homes its heaps' flat-mirror bitmaps (and CSR scratch)
  into its regions, and the coordinator reads per-site resident counts
  straight from the region headers instead of broadcasting.
- **Direct rings** (``config.direct_rings``): cross-shard messages travel
  as packed records through per-ordered-pair SPSC ring buffers in the
  shared arena instead of hopping twice through coordinator pipes.  Ring
  ``(i, j)`` is written only by worker ``i`` and read only by worker
  ``j``; every cursor (write position, certified read limit, confirmed
  consumption) rides the existing command/reply exchange, so no shared
  position is ever read while being written and overflow behaviour is
  deterministic (a record that does not fit spills to the legacy pipe
  path).  The per-window pipe exchange thus shrinks to the 24-byte reply
  trailer plus a few cursor ints each way, and the old dispatch -> drain ->
  route -> absorb sequence fuses into one round trip per window: workers
  pull their inbound rings themselves at window start (up to the
  coordinator-certified limits), *stash* records that are not yet due, and
  inject due ones in the same ``(deliver_at, source site, sender
  sequence)`` order the coordinator would have used -- so byte-identity
  with the sequential engine holds ring or no ring, and the window-floor
  invariant is asserted at drain time exactly as ``_absorb`` asserts it on
  the pipe path.  A shard's stashed records fold into its advertised
  frontier and earliest-output-time, so the window planner sees them just
  like coordinator-pending messages.
- **Delta control plane** (``config.delta_exports``): ``snapshot()`` ships
  only site snapshots whose content digest changed since the last export,
  ``merged_metrics()`` only counters whose values moved, and both merged
  views are cached coordinator-side and invalidated by a monotonically
  increasing state version (bumped by every command that can touch worker
  state) -- a steady-state poll loop costs one broadcast, not one per
  call.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
import traceback
import warnings
from collections import Counter
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..config import SimulationConfig
from ..errors import SimulationError
from ..ids import ObjectId, SiteId
from ..metrics import MetricsRecorder, names as metric_names
from ..net.latency import LatencyModel
from ..net.message import Message
from ..net.wire import (
    REPLY_META_BYTES,
    WireCodec,
    pack_reply_meta,
    pack_ring_meta,
    unpack_reply_meta,
    unpack_ring_meta,
)
from ..store.shm import RING_FRAME_BYTES, create_arena
from .simulation import Simulation

_INF = float("inf")

#: (deliver_at, message) pairs as prepared sender-side by Network.send.
RoutedMessage = Tuple[float, Message]

#: Coordinator-side routing entry for a packed record:
#: (deliver_at, dst index, src index, uid, record bytes).
_PackedPending = Tuple[float, int, int, int, Any]


def assign_shards(
    site_ids, workers: int, policy: str = "contiguous"
) -> List[List[SiteId]]:
    """Partition ``site_ids`` into at most ``workers`` non-empty shards.

    ``contiguous`` slices the sorted site list into balanced runs (sizes
    differ by at most one; neighbours stay together, which minimizes
    cross-shard traffic for ring-like topologies).  ``round_robin`` deals
    sites out cyclically (balances heterogeneous per-site load).
    """
    ordered = sorted(site_ids)
    workers = max(1, min(workers, len(ordered)))
    if policy == "round_robin":
        shards = [ordered[index::workers] for index in range(workers)]
    elif policy == "contiguous":
        base, extra = divmod(len(ordered), workers)
        shards, start = [], 0
        for index in range(workers):
            size = base + (1 if index < extra else 0)
            shards.append(ordered[start : start + size])
            start += size
    else:
        raise SimulationError(f"unknown shard policy {policy!r}")
    return [shard for shard in shards if shard]


class SafeTimePlanner:
    """Pure computation of conservative-lookahead windows.

    Kept free of any process machinery so the protocol itself is unit
    testable: given the shards' earliest pending times, the planner names the
    exclusive upper bound of the next window, or ``None`` when the target is
    reached.
    """

    def __init__(self, lookahead: float):
        if lookahead <= 0:
            raise SimulationError(
                "conservative lookahead requires lookahead > 0 "
                f"(got {lookahead})"
            )
        self.lookahead = lookahead

    def horizon(self, next_times: Iterable[float]) -> float:
        """Earliest unexecuted work across all shards (inf when idle).

        Accepts any iterable -- the coordinator hot loop passes a generator
        over its worker handles rather than materialising a list per window.
        """
        return min(next_times, default=_INF)

    def window(self, horizon: float, target_excl: float) -> Optional[float]:
        """Exclusive safe bound of the next window, or None when done.

        Any event at ``horizon`` must fall inside the window, so the bound
        is strictly above ``horizon`` even when ``lookahead`` underflows
        against a large timestamp (the ``nextafter`` fallback).
        """
        if horizon >= target_excl:
            return None
        safe = min(horizon + self.lookahead, target_excl)
        if safe <= horizon:
            safe = min(math.nextafter(horizon, _INF), target_excl)
        return safe


# ---------------------------------------------------------------------------
# Counted duplex channel (both sides of every worker pipe)
# ---------------------------------------------------------------------------


class _Channel:
    """A Connection wrapper that pickles explicitly and counts bytes.

    Explicit ``send_bytes(pickle.dumps(...))`` instead of ``Connection.send``
    so both endpoints know exactly how many bytes cross the process boundary
    -- the coordination-overhead numbers in BENCH_parallel_sim.json come
    from these counters, in packed and legacy wire modes alike.
    """

    __slots__ = ("conn", "bytes_sent", "bytes_recv", "messages_sent")

    def __init__(self, conn):
        self.conn = conn
        self.bytes_sent = 0
        self.bytes_recv = 0
        self.messages_sent = 0

    def send(self, obj) -> None:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self.conn.send_bytes(data)
        self.bytes_sent += len(data)
        self.messages_sent += 1

    def recv(self):
        data = self.conn.recv_bytes()
        self.bytes_recv += len(data)
        return pickle.loads(data)

    def close(self) -> None:
        self.conn.close()


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _Stop(Exception):
    """Internal: the worker was asked to shut down."""


class _RingWriter:
    """Worker-side producer over its row of outbound rings (direct_rings).

    Cross-shard sends are buffered per destination during command execution
    and copied into the rings only when the reply is built
    (:meth:`take_meta`), so a command that fails mid-way discards its ring
    writes exactly as it discards its pipe outbox, and a reply's ring
    advertisements always describe fully written records.  The fit check
    against the coordinator-certified consumption cursor happens at buffer
    time: a record that would not fit (ring full, oversized) is declined
    immediately and spills to the pipe outbox, deterministically.
    """

    __slots__ = (
        "_codec",
        "_index_to_worker",
        "_rings",
        "_write_pos",
        "_tentative",
        "_consumed",
        "_buffered",
        "_batch_min",
    )

    def __init__(self, arena, codec: WireCodec, my_index: int,
                 index_to_worker: Sequence[int]):
        workers = arena.ring_workers
        self._codec = codec
        self._index_to_worker = index_to_worker
        self._rings = [arena.ring(my_index, dst) for dst in range(workers)]
        #: Committed (advertised) absolute write position per destination.
        self._write_pos = [0] * workers
        #: Committed position plus everything buffered but not yet copied in.
        self._tentative = [0] * workers
        #: Latest coordinator-certified consumption cursor per destination.
        self._consumed = [0] * workers
        self._buffered: List[List[bytes]] = [[] for _ in range(workers)]
        self._batch_min = [_INF] * workers

    def write(self, deliver_at: float, message: Message) -> bool:
        """Try to route one cross-shard message; False means spill to pipe."""
        codec = self._codec
        dst = self._index_to_worker[codec.site_index(message.dst)]
        record = codec.pack_record(deliver_at, message)
        ring = self._rings[dst]
        needed = RING_FRAME_BYTES + len(record)
        if needed > ring.capacity - (self._tentative[dst] - self._consumed[dst]):
            return False
        self._buffered[dst].append(record)
        self._tentative[dst] += needed
        if deliver_at < self._batch_min[dst]:
            self._batch_min[dst] = deliver_at
        return True

    def update_consumed(self, consumed: Sequence[int]) -> None:
        """Adopt the coordinator-certified consumption cursors (monotonic)."""
        own = self._consumed
        for dst, pos in enumerate(consumed):
            if pos > own[dst]:
                own[dst] = pos

    def discard(self) -> None:
        """Drop buffered records (the failed-command path, like the outbox)."""
        for dst, pending in enumerate(self._buffered):
            if pending:
                del pending[:]
                self._tentative[dst] = self._write_pos[dst]
                self._batch_min[dst] = _INF

    def take_meta(self) -> bytes:
        """Flush buffered records into the rings; return the advertisement.

        Every entry names the destination worker, the record count, the new
        absolute write position, and the batch's earliest ``deliver_at`` (the
        coordinator folds it into its horizon until the batch is absorbed by
        the destination shard).  Empty when nothing was sent: the reply then
        stays exactly trailer-sized.
        """
        entries = []
        for dst, pending in enumerate(self._buffered):
            if not pending:
                continue
            ring = self._rings[dst]
            pos = self._write_pos[dst]
            consumed = self._consumed[dst]
            for record in pending:
                pos = ring.try_write(record, pos, consumed)
                if pos is None:  # pragma: no cover - fit was pre-checked
                    raise SimulationError(
                        "ring write certified to fit did not fit"
                    )
            count = len(pending)
            del pending[:]
            self._write_pos[dst] = pos
            entries.append((dst, count, pos, self._batch_min[dst]))
            self._batch_min[dst] = _INF
        return pack_ring_meta(entries)


class _RingReader:
    """Worker-side consumer over its column of inbound rings, plus the stash.

    The coordinator certifies read limits in each window/align command; the
    reader drains every newly certified byte range, asserts the window-floor
    invariant per record (exactly as the coordinator's ``_absorb`` does on
    the pipe path), and *stashes* records until they fall due.  Due
    extraction sorts by ``(deliver_at, source site index, sender sequence)``
    -- the codec's site-index order equals lexicographic SiteId order, so
    this reproduces the coordinator's deterministic injection order whether
    a record travelled the ring or spilled to the pipe.
    """

    __slots__ = ("_codec", "_rings", "_read_pos", "_stash")

    def __init__(self, arena, codec: WireCodec, my_index: int):
        workers = arena.ring_workers
        self._codec = codec
        self._rings = [arena.ring(src, my_index) for src in range(workers)]
        self._read_pos = [0] * workers
        #: (deliver_at, src index, uid, record bytes), unordered until due.
        self._stash: List[Tuple[float, int, int, bytes]] = []

    def drain(self, limits) -> None:
        """Read every inbound ring up to its newly certified limit."""
        if limits is None:
            return
        scan = self._codec.scan_record
        stash_append = self._stash.append
        for src, entry in enumerate(limits):
            if entry is None:
                continue
            limit, check_floor = entry
            records = self._rings[src].read(self._read_pos[src], limit)
            self._read_pos[src] = limit
            for record in records:
                deliver_at, _dst, src_site, _kind, uid = scan(record)
                if deliver_at < check_floor:
                    raise SimulationError(
                        "window-safety invariant violated: ring record "
                        f"delivers at {deliver_at} before its window floor "
                        f"{check_floor}"
                    )
                stash_append((deliver_at, src_site, uid, record))

    def stash_blob(self, blob) -> None:
        """Stash pipe-spilled records; they sort together with ring ones.

        No floor check here: spilled records already passed the
        coordinator's ``_absorb`` assertion before being routed back out.
        """
        stash_append = self._stash.append
        for deliver_at, _dst, src_site, _kind, uid, record in (
            self._codec.scan_blob(blob)
        ):
            stash_append((deliver_at, src_site, uid, bytes(record)))

    def stash_min(self) -> float:
        """Earliest stashed delivery (inf when empty) -- folded into the
        reply's frontier and EOT so the planner sees stashed work."""
        return min((entry[0] for entry in self._stash), default=_INF)

    def take_due(self, bound: float) -> List[RoutedMessage]:
        """Extract, order, and decode every stashed record due before ``bound``."""
        if not self._stash:
            return []
        due: List[Tuple[float, int, int, bytes]] = []
        rest: List[Tuple[float, int, int, bytes]] = []
        for entry in self._stash:
            (due if entry[0] < bound else rest).append(entry)
        self._stash = rest
        due.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        unpack = self._codec.unpack_record
        return [unpack(entry[3]) for entry in due]


class _DeltaExporter:
    """Worker-side state for the delta control plane (``delta_exports``).

    Snapshots ship per site only when the content digest moved since the
    last export (:func:`~repro.analysis.export.site_snapshot_delta`);
    metrics ship only counters whose values changed since the last export,
    starting from the fork baseline the coordinator already holds.
    """

    __slots__ = ("_digests", "_exported")

    def __init__(self, sim: Simulation):
        self._digests: Dict[SiteId, bytes] = {}
        self._exported: Dict[str, int] = dict(sim.metrics._counters)

    def snapshot(self, sim: Simulation, shard: Set[SiteId]) -> Dict[SiteId, Any]:
        from ..analysis.export import site_snapshot_delta

        payload: Dict[SiteId, Any] = {}
        for site_id in shard:
            digest, snap = site_snapshot_delta(
                sim.sites[site_id], self._digests.get(site_id)
            )
            self._digests[site_id] = digest
            payload[site_id] = snap
        return payload

    def metrics(self, sim: Simulation) -> Dict[str, int]:
        exported = self._exported
        delta: Dict[str, int] = {}
        for name, value in sim.metrics._counters.items():
            if value != exported.get(name, 0):
                delta[name] = value
                exported[name] = value
        return delta


def _shard_eot(sim: Simulation, lookahead: float) -> float:
    """Earliest instant this shard could put a message on another shard.

    The minimum over live events of ``adjusted time + lookahead``, where
    ``lookahead`` is the shard's tightest outbound latency floor.  Sound for
    everything a window can make the shard do: an executed event sends no
    earlier than its own timestamp; derived events (retries, trace frames,
    delivery cascades) never precede the event that scheduled them; and a
    routed-in message perturbing local state is itself covered by the
    coordinator's pending-message terms.

    GC-tick events are adjusted forward across their provably-quiet
    successors (:meth:`Site.quiet_gc_ticks`): ``k`` quiet ticks push the
    first possibly-sending tick of the chain to at least ``k`` full periods
    later (jitter only adds).  A local event that would invalidate the
    prediction executes before the tick it perturbs, so the perturbed tick
    fires no earlier than that event -- whose own EOT term already bounds
    the window.
    """
    period = sim.config.gc.local_trace_period
    sites = sim.sites
    eot = _INF
    for time, label, site_id in sim.scheduler.live_events():
        if (
            site_id is not None
            and label is not None
            and label.startswith("gc-tick:")
        ):
            time += sites[site_id].quiet_gc_ticks() * period
        if time + lookahead < eot:
            eot = time + lookahead
    return eot


def _schedule_incoming(sim: Simulation, incoming: List[RoutedMessage]) -> None:
    """Schedule routed-in messages at their sender-fixed delivery times.

    The coordinator pre-sorts ``incoming`` by (deliver_at, source site,
    sender sequence), so the scheduler's FIFO-within-timestamp tie-breaking
    reproduces the deterministic order regardless of which shard sent what.
    """
    deliver = sim.network.deliver_remote
    schedule_at = sim.scheduler.schedule_at
    for deliver_at, message in incoming:
        schedule_at(
            deliver_at,
            deliver,
            label="deliver:" + message.kind,
            site=message.dst,
            arg=message,
        )


def _execute(
    sim: Simulation,
    shard: Set[SiteId],
    command: tuple,
    exporter: Optional[_DeltaExporter] = None,
):
    """Run one coordinator command; return (payload, events_fired)."""
    op = command[0]
    if op == "window":
        _, safe, incoming = command
        _schedule_incoming(sim, incoming)
        return None, sim.scheduler.run_until_before(safe)
    if op == "align":
        _, time, incoming = command
        _schedule_incoming(sim, incoming)
        sim.scheduler.advance_clock(time)
        return None, 0
    if op == "site_call":
        _, site_id, method, args, kwargs = command
        return getattr(sim.site(site_id), method)(*args, **kwargs), 0
    if op == "crash":
        site_id = command[1]
        if site_id in shard:
            sim.site(site_id).crash()
        else:
            # Remote crash: this shard only needs the network view so its
            # sends to (and in-flight deliveries from) the site are lost,
            # exactly as the sequential engine's shared network would do.
            sim.network.crash(site_id)
        return None, 0
    if op == "recover":
        site_id = command[1]
        if site_id in shard:
            sim.site(site_id).recover()
        else:
            sim.network.recover(site_id)
        return None, 0
    if op == "quiesce":
        for site_id in shard:
            sim.sites[site_id].stop_auto_gc()
        return None, 0
    if op == "snapshot":
        if exporter is not None:
            return exporter.snapshot(sim, shard), 0
        from ..analysis.export import site_snapshot

        return {
            site_id: site_snapshot(sim.sites[site_id]) for site_id in shard
        }, 0
    if op == "metrics":
        if exporter is not None:
            return exporter.metrics(sim), 0
        return dict(sim.metrics._counters), 0
    if op == "outcomes":
        return list(sim._trace_outcomes), 0
    if op == "counts":
        return sum(len(sim.sites[site_id].heap) for site_id in shard), 0
    if op == "oids":
        oids: List[ObjectId] = []
        for site_id in sorted(shard):
            oids.extend(sim.sites[site_id].heap.object_ids())
        return oids, 0
    if op == "stop":
        raise _Stop
    raise SimulationError(f"unknown worker command {op!r}")


def _worker_main(
    conn,
    shard_sites: List[SiteId],
    sim: Simulation,
    wire_sites: Optional[List[SiteId]],
    arena,
    demand_eot: bool,
    worker_index: int = 0,
    ring_plan: Optional[List[int]] = None,
    delta_exports: bool = False,
) -> None:
    """Entry point of a forked shard worker.

    The child inherited the fully built simulation by fork; it prunes the
    scheduler to its shard, puts the network into shard mode, re-homes its
    heaps into the shared arena (when one exists), and then obeys
    coordinator commands.  Every reply is a uniform
    ``("ok", payload, outgoing, meta)`` tuple (or
    ``("error", traceback_text)``) where ``meta`` packs the shard's new
    frontier, its earliest output time, and the events fired
    (:func:`~repro.net.wire.pack_reply_meta`), so the coordinator always
    learns the shard's state and pending cross-shard messages in one
    exchange.  With ``demand_eot`` off (the fixed planner) the EOT scan is
    skipped entirely and the advertised EOT is ``inf`` -- the legacy
    planner never reads it, and A/B benchmarks stay cost-fair.  With a wire
    codec (``wire_sites`` given), ``incoming``/``outgoing`` are packed
    record blobs instead of pickled RoutedMessage lists.

    ``ring_plan`` (the packed-wire site index -> worker index table, set
    only when direct rings are active) switches the data path: cross-shard
    sends go straight into the destination shard's SPSC ring, window/align
    commands become ``(op, time, spill_blob, limits, consumed)`` 5-tuples,
    and the reply meta grows a ring-advertisement section.  The frontier
    and EOT in the trailer then fold in the stash of drained-but-not-due
    records, so the coordinator's planner accounts for work that never
    crossed its pipes.
    """
    shard = set(shard_sites)
    channel = _Channel(conn)
    outbox: List[RoutedMessage] = []
    codec = WireCodec(wire_sites) if wire_sites is not None else None
    lookahead = sim.config.network.min_latency
    ring_writer: Optional[_RingWriter] = None
    ring_reader: Optional[_RingReader] = None
    try:
        sim.scheduler.retain_sites(shard)
        if ring_plan is not None and codec is not None and arena is not None:
            ring_writer = _RingWriter(arena, codec, worker_index, ring_plan)
            ring_reader = _RingReader(arena, codec, worker_index)
            sim.network.attach_shard(shard, outbox, ring_writer.write)
        else:
            sim.network.attach_shard(shard, outbox)
        if demand_eot:
            bound = sim.network.min_cross_latency(shard)
            if bound is not None:
                lookahead = bound
        if arena is not None and arena.has_site_regions:
            for site_id in shard:
                sim.sites[site_id].heap.attach_shared_region(
                    arena.region(site_id)
                )
    except Exception:
        channel.send(("error", traceback.format_exc()))
        channel.close()
        return
    exporter = _DeltaExporter(sim) if delta_exports else None

    def packed_outgoing():
        if codec is None:
            outgoing = outbox[:]
        else:
            outgoing = codec.pack_routed(outbox)
        del outbox[:]
        return outgoing

    def reply_meta(fired: int) -> bytes:
        next_time = sim.scheduler.peek_time()
        eot = _shard_eot(sim, lookahead) if demand_eot else _INF
        if ring_reader is not None:
            stash_min = ring_reader.stash_min()
            if stash_min < next_time:
                next_time = stash_min
            if demand_eot and stash_min + lookahead < eot:
                eot = stash_min + lookahead
        meta = pack_reply_meta(next_time, eot, fired)
        if ring_writer is not None:
            meta += ring_writer.take_meta()
        return meta

    channel.send(("ok", None, packed_outgoing(), reply_meta(0)))
    while True:
        try:
            command = channel.recv()
        except EOFError:
            break
        try:
            if ring_reader is not None and command[0] in ("window", "align"):
                op, time_arg, blob, limits, consumed = command
                ring_writer.update_consumed(consumed)
                ring_reader.drain(limits)
                ring_reader.stash_blob(blob)
                command = (
                    op,
                    time_arg,
                    ring_reader.take_due(time_arg if op == "window" else _INF),
                )
            elif codec is not None and command[0] in ("window", "align"):
                command = (
                    command[0],
                    command[1],
                    codec.unpack_blob(command[2]),
                )
            payload, fired = _execute(sim, shard, command, exporter)
        except _Stop:
            channel.send(
                ("ok", None, packed_outgoing(), pack_reply_meta(_INF, _INF, 0))
            )
            break
        except Exception:
            del outbox[:]
            if ring_writer is not None:
                ring_writer.discard()
            channel.send(("error", traceback.format_exc()))
            continue
        channel.send(("ok", payload, packed_outgoing(), reply_meta(fired)))
    if arena is not None:
        if arena.has_site_regions:
            for site_id in shard:
                sim.sites[site_id].heap.detach_shared_region()
        arena.detach()
    channel.close()


# ---------------------------------------------------------------------------
# Coordinator side
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Coordinator-side bookkeeping for one shard worker."""

    __slots__ = (
        "process",
        "channel",
        "shard",
        "shard_indices",
        "index",
        "next_time",
        "eot",
        "limits_inflight",
    )

    def __init__(
        self, process, channel: _Channel, shard: Set[SiteId], index: int = 0
    ):
        self.process = process
        self.channel = channel
        self.shard = shard
        self.shard_indices: Set[int] = set()
        self.index = index
        self.next_time = _INF
        #: Last advertised earliest-output-time (inf under the fixed planner).
        self.eot = _INF
        #: FIFO of ring-limit tuples sent with window/align commands whose
        #: replies have not been absorbed yet (at most two, pipelining).  A
        #: reply to such a command confirms its limits as consumed.
        self.limits_inflight: List[Optional[tuple]] = []


class ShardWorkerPool:
    """The persistent fork-once worker pool behind :class:`ParallelSimulation`.

    Owns the processes and counted channels; fork happens exactly once, in
    :meth:`start`, and afterwards every window/drain/merge exchange travels
    over the same long-lived pipes.  A worker death mid-exchange surfaces as
    a prompt :class:`SimulationError` (the dead pipe raises ``EOFError``
    rather than hanging), after which the whole pool is reaped.
    """

    def __init__(self):
        self.workers: List[_WorkerHandle] = []
        self._stopped = False

    def start(
        self,
        shards: Sequence[Sequence[SiteId]],
        sim: Simulation,
        wire_sites: Optional[List[SiteId]],
        arena,
        demand_eot: bool = False,
        ring_plan: Optional[List[int]] = None,
        delta_exports: bool = False,
    ) -> None:
        context = multiprocessing.get_context("fork")
        for index, shard in enumerate(shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    list(shard),
                    sim,
                    wire_sites,
                    arena,
                    demand_eot,
                    index,
                    ring_plan,
                    delta_exports,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.workers.append(
                _WorkerHandle(process, _Channel(parent_conn), set(shard), index)
            )

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    def send(self, worker: _WorkerHandle, command: tuple) -> None:
        try:
            worker.channel.send(command)
        except (BrokenPipeError, ConnectionResetError, OSError):
            self._raise_dead(worker)

    def recv(self, worker: _WorkerHandle):
        try:
            return worker.channel.recv()
        except (EOFError, ConnectionResetError, OSError):
            self._raise_dead(worker)

    def _raise_dead(self, worker: _WorkerHandle) -> None:
        """A pipe failed: reap everything and raise without hanging."""
        worker.process.join(timeout=1)
        exitcode = worker.process.exitcode
        index = self.workers.index(worker)
        self.reap()
        raise SimulationError(
            f"shard worker {index} (pid {worker.process.pid}) died "
            f"mid-command (exit code {exitcode}); parallel simulation "
            "is unrecoverable -- all workers stopped"
        )

    def reap(self) -> None:
        """Terminate and join every worker unconditionally."""
        self._stopped = True
        for worker in self.workers:
            worker.channel.close()
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self.workers:
            worker.process.join(timeout=5)

    def stop(self) -> None:
        """Orderly shutdown: ask nicely, then reap stragglers."""
        if self._stopped:
            return
        self._stopped = True
        for worker in self.workers:
            try:
                worker.channel.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            try:
                worker.channel.recv()
            except (EOFError, OSError):
                pass
            worker.channel.close()
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5)

    @property
    def bytes_sent(self) -> int:
        return sum(worker.channel.bytes_sent for worker in self.workers)

    @property
    def bytes_recv(self) -> int:
        return sum(worker.channel.bytes_recv for worker in self.workers)

    @property
    def commands_sent(self) -> int:
        return sum(worker.channel.messages_sent for worker in self.workers)


_PROXY_METHODS = frozenset(
    {
        "run_local_trace",
        "stop_auto_gc",
        "schedule_next_trace",
        "check_backtrace_triggers",
        "mutator_add_ref",
        "mutator_remove_ref",
        "mutator_send_ref",
        "mutator_hop",
        "take_insert_custody",
        "pin_variable",
        "unpin_variable",
        "stats",
    }
)


class SiteProxy:
    """Post-fork stand-in for a :class:`Site` living in a worker process.

    Forwards the mutator-facing and GC-control API as remote calls; direct
    state access (``heap``, ``inrefs``, ``outrefs``) is not available across
    the process boundary -- use :meth:`ParallelSimulation.snapshot`.
    """

    __slots__ = ("_sim", "site_id")

    def __init__(self, sim: "ParallelSimulation", site_id: SiteId):
        object.__setattr__(self, "_sim", sim)
        object.__setattr__(self, "site_id", site_id)

    @property
    def crashed(self) -> bool:
        return self.site_id in self._sim._crashed_sites

    def crash(self) -> None:
        self._sim.crash_site(self.site_id)

    def recover(self) -> None:
        self._sim.recover_site(self.site_id)

    def __getattr__(self, name: str):
        if name in _PROXY_METHODS:
            sim, site_id = self._sim, self.site_id

            def call(*args, **kwargs):
                return sim._site_call(site_id, name, *args, **kwargs)

            call.__name__ = name
            return call
        raise AttributeError(
            f"site {self.site_id!r} runs in a worker process; {name!r} is "
            "not forwarded (use ParallelSimulation.snapshot() for state)"
        )

    def __repr__(self) -> str:
        return f"SiteProxy({self.site_id!r})"


class ParallelSimulation(Simulation):
    """Drop-in :class:`Simulation` that executes site shards in parallel.

    Construction, topology building, and everything before the first
    ``run_*`` call behave exactly like the sequential engine (same classes,
    same RNG streams).  The first time simulated time advances, the
    coordinator forks ``config.parallel_workers`` shard workers -- once --
    and from then on drives them over the persistent pool with
    conservative-lookahead windows.  With ``parallel_workers == 1`` (or when
    parallelism is impossible: zero ``min_latency``, no fork support, fewer
    than two sites) every call takes the inherited sequential path unchanged.

    Construct through :meth:`Simulation.create`; direct instantiation is
    deprecated (the factory picks the engine from ``parallel_workers`` and
    keeps call sites engine-agnostic).
    """

    #: > 0 while Simulation.create is constructing us (suppresses the
    #: direct-construction deprecation warning).
    _factory_depth = 0

    @classmethod
    def _create(
        cls,
        config: Optional[SimulationConfig] = None,
        *,
        latency_model: Optional[LatencyModel] = None,
        fault_plan=None,
    ) -> "ParallelSimulation":
        cls._factory_depth += 1
        try:
            return cls(config, latency_model=latency_model, fault_plan=fault_plan)
        finally:
            cls._factory_depth -= 1

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        fault_plan=None,
    ):
        if ParallelSimulation._factory_depth == 0:
            warnings.warn(
                "constructing ParallelSimulation directly is deprecated; "
                "use Simulation.create(config) (it selects the engine from "
                "config.parallel_workers)",
                DeprecationWarning,
                stacklevel=2,
            )
        config = config or SimulationConfig()
        requested = config.parallel_workers
        fallback = None
        if requested > 1:
            if config.network.min_latency <= 0:
                fallback = (
                    "network.min_latency must be > 0 (the conservative "
                    "lookahead bound); running sequentially"
                )
            elif "fork" not in multiprocessing.get_all_start_methods():
                fallback = "platform has no fork start method; running sequentially"
        self._parallel = requested > 1 and fallback is None
        if fallback is not None:
            warnings.warn(
                f"parallel_workers={requested}: {fallback}",
                RuntimeWarning,
                stacklevel=2,
            )
        if self._parallel and not config.network.pair_rng_streams:
            config = replace(
                config, network=replace(config.network, pair_rng_streams=True)
            )
        super().__init__(config, latency_model=latency_model, fault_plan=fault_plan)
        self._forked = False
        self._closed = False
        self._pool = ShardWorkerPool()
        self._codec: Optional[WireCodec] = None
        self._arena = None
        #: Legacy mode: RoutedMessage tuples.  Packed mode: _PackedPending
        #: tuples.  Both start with deliver_at, so horizon scans are shared.
        self._pending: List[Any] = []
        self._site_to_worker: Dict[SiteId, int] = {}
        self._crashed_sites: Set[SiteId] = set()
        self._proxies: Dict[SiteId, SiteProxy] = {}
        self._fork_counters: Counter = Counter()
        self._fork_outcome_count = 0
        self._planner = (
            SafeTimePlanner(config.network.min_latency) if self._parallel else None
        )
        self._demand = self._parallel and config.window_planner == "demand"
        #: Per-worker outbound latency floor (pending-message cascade terms).
        self._shard_lookahead: List[float] = []
        #: Packed-wire site index -> worker index (built at fork).
        self._index_to_worker: List[int] = []
        #: Latest dispatched window bound; every routed message absorbed from
        #: a window/align reply must deliver at or after it.
        self._floor: Optional[float] = None
        self._stats = Counter()
        # -- direct-ring data path (all empty/False until the fork decides) --
        self._rings_active = False
        #: src worker x dst worker matrices of absolute ring cursors: what
        #: each producer has advertised written, what each consumer has been
        #: told it may read, and what each consumer has confirmed reading.
        self._ring_write_pos: List[List[int]] = []
        self._ring_limit_sent: List[List[int]] = []
        self._ring_confirmed: List[List[int]] = []
        #: Advertised-but-unabsorbed ring batches:
        #: (min_deliver, end_pos, count, src worker, dst worker, floor).
        #: Each contributes to the horizon until the destination shard
        #: confirms having drained past ``end_pos``; ``floor`` is the window
        #: bound in force when the batch was advertised (-inf for batches
        #: born outside a window reply), re-asserted at drain time.
        self._ring_pending: List[Tuple[float, int, int, int, int, float]] = []
        # -- delta control plane --------------------------------------------
        self._delta_exports = config.delta_exports
        #: Monotonic version of worker-visible state; bumped by every command
        #: that can touch it.  The cached merged snapshot/metrics are valid
        #: exactly while their recorded version equals it.
        self._state_version = 0
        self._snapshot_version = -1
        self._snapshot_cache: Dict[SiteId, Any] = {}
        self._metrics_version = -1
        self._metrics_cache: Counter = Counter()
        #: Per-worker latest known counter values (delta merge base).
        self._worker_counters: List[Dict[str, int]] = []

    # -- lifecycle ----------------------------------------------------------

    @property
    def parallel_active(self) -> bool:
        """True when runs are (or will be) executed by shard workers."""
        return self._parallel

    @property
    def _workers(self) -> List[_WorkerHandle]:
        return self._pool.workers

    def _ensure_forked(self) -> None:
        if self._forked or not self._parallel:
            if self._closed:
                raise SimulationError("parallel simulation has been closed")
            return
        shards = assign_shards(
            self.sites, self.config.parallel_workers, self.config.shard_policy
        )
        if len(shards) < 2:
            warnings.warn(
                "parallel run degenerates to one shard "
                f"({len(self.sites)} sites); running sequentially",
                RuntimeWarning,
                stacklevel=3,
            )
            self._parallel = False
            self._planner = None
            return
        self._fork_counters = Counter(self.metrics._counters)
        self._fork_outcome_count = len(self._trace_outcomes)
        self._crashed_sites = {
            site_id for site_id, site in self.sites.items() if site.crashed
        }
        wire_sites = sorted(self.sites) if self.config.packed_wire else None
        if wire_sites is not None:
            self._codec = WireCodec(wire_sites)
        want_rings = (
            self._codec is not None and self.config.effective_direct_rings
        )
        if self.config.shared_arena or want_rings:
            # Created before the fork so every worker inherits the mapping;
            # a post-fork segment would be private to its creator.  With
            # shared_arena off but rings on, the arena is rings-only (no
            # site regions).
            self._arena = create_arena(
                (
                    {
                        site_id: site.heap.mirror_slots
                        for site_id, site in self.sites.items()
                    }
                    if self.config.shared_arena
                    else {}
                ),
                slot_capacity=self.config.arena_slots_per_site,
                ring_workers=len(shards) if want_rings else 0,
                ring_bytes=(
                    self.config.ring_bytes_per_pair if want_rings else 0
                ),
            )
        # Rings are best-effort like the arena itself: no shared memory on
        # this platform means the coordinator-routed path carries on.
        self._rings_active = (
            want_rings
            and self._arena is not None
            and self._arena.ring_workers == len(shards)
        )
        if self._rings_active:
            worker_count = len(shards)
            self._ring_write_pos = [
                [0] * worker_count for _ in range(worker_count)
            ]
            self._ring_limit_sent = [
                [0] * worker_count for _ in range(worker_count)
            ]
            self._ring_confirmed = [
                [0] * worker_count for _ in range(worker_count)
            ]
        min_latency = self.config.network.min_latency
        self._shard_lookahead = []
        for shard in shards:
            bound = (
                self.network.min_cross_latency(set(shard))
                if self._demand
                else None
            )
            self._shard_lookahead.append(
                min_latency if bound is None else bound
            )
        if self._codec is not None:
            # Built before the fork: ring-mode workers route sends through
            # this table themselves.
            self._index_to_worker = [0] * len(self.sites)
            for index, shard in enumerate(shards):
                for site_id in shard:
                    self._index_to_worker[self._codec.site_index(site_id)] = (
                        index
                    )
        self._pool.start(
            shards,
            self,
            wire_sites,
            self._arena,
            self._demand,
            ring_plan=self._index_to_worker if self._rings_active else None,
            delta_exports=self._delta_exports,
        )
        # Flag flips only after every fork: children must see the sequential
        # view of `self` so their internal calls take direct paths.
        self._forked = True
        self._worker_counters = [dict(self._fork_counters) for _ in shards]
        for index, worker in enumerate(self._pool):
            if self._codec is not None:
                worker.shard_indices = {
                    self._codec.site_index(site_id) for site_id in worker.shard
                }
            self._absorb(worker, self._pool.recv(worker))
            for site_id in worker.shard:
                self._site_to_worker[site_id] = index

    def close(self) -> None:
        """Stop the shard workers and release the arena.  Idempotent."""
        if not self._forked or self._closed:
            self._closed = self._closed or self._forked
            if self._arena is not None:
                self._arena.close()
                self._arena = None
            return
        self._closed = True
        self._pool.stop()
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "ParallelSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown dependent
        try:
            self.close()
        except Exception:
            pass

    # -- coordinator plumbing ------------------------------------------------

    def _absorb(
        self,
        worker: _WorkerHandle,
        reply: tuple,
        floor: Optional[float] = None,
        ring_reply: bool = False,
    ):
        """Fold one worker reply into coordinator state; return its payload.

        ``floor`` (set for window/align replies) is the latest dispatched
        window bound: the conservative-lookahead safety argument guarantees
        every routed message delivers at or after it, and the coordinator
        checks that invariant on every absorbed message rather than trusting
        the planner.

        ``ring_reply`` marks the reply as answering a window/align command
        that carried ring read limits: absorbing it first *confirms* those
        limits (the shard has drained past them -- its producers may reuse
        the space, and the batches stop contributing to the horizon), then
        parses any ring-advertisement section after the 24-byte trailer into
        new :attr:`_ring_pending` entries.
        """
        if reply[0] == "error":
            raise SimulationError(f"shard worker failed:\n{reply[1]}")
        _, payload, outgoing, meta = reply
        next_time, eot, fired = unpack_reply_meta(meta)
        if self._rings_active:
            if ring_reply and worker.limits_inflight:
                limits = worker.limits_inflight.pop(0)
                if limits is not None:
                    dst_w = worker.index
                    confirmed = self._ring_confirmed
                    for src_w, entry in enumerate(limits):
                        if entry is not None and entry[0] > confirmed[src_w][dst_w]:
                            confirmed[src_w][dst_w] = entry[0]
                    if self._ring_pending:
                        self._ring_pending = [
                            batch
                            for batch in self._ring_pending
                            if not (
                                batch[4] == dst_w
                                and limits[batch[3]] is not None
                                and batch[1] <= limits[batch[3]][0]
                            )
                        ]
            if len(meta) > REPLY_META_BYTES:
                src_w = worker.index
                batch_floor = floor if floor is not None else -_INF
                write_pos_row = self._ring_write_pos[src_w]
                stats = self._stats
                for dst_w, count, write_pos, min_deliver in unpack_ring_meta(
                    meta[REPLY_META_BYTES:]
                ):
                    stats["ring_bytes"] += write_pos - write_pos_row[dst_w]
                    stats["ring_messages"] += count
                    stats["cross_shard_messages"] += count
                    write_pos_row[dst_w] = write_pos
                    self._ring_pending.append(
                        (min_deliver, write_pos, count, src_w, dst_w,
                         batch_floor)
                    )
        if self._codec is not None:
            # A blob of packed records: route by scanning headers only.
            pending_append = self._pending.append
            stats = self._stats
            if len(outgoing) > 4:  # more than the empty-blob count prefix
                stats["payload_bytes"] += len(outgoing)
            for deliver_at, dst, src, kind, uid, record in self._codec.scan_blob(
                outgoing
            ):
                if floor is not None and deliver_at < floor:
                    raise SimulationError(
                        "window-safety invariant violated: routed message "
                        f"delivers at {deliver_at} before the dispatched "
                        f"window bound {floor}"
                    )
                stats["cross_shard_messages"] += 1
                if kind == 0:
                    stats["payloads_pickled"] += 1
                else:
                    stats["payloads_packed"] += 1
                if self._rings_active:
                    # With rings on, every pipe-routed record is one that
                    # declined its ring (full, or oversized for it).
                    stats["ring_spills"] += 1
                pending_append((deliver_at, dst, src, uid, record))
        elif outgoing:
            # Legacy wire: the payload cost is what pickling the routed list
            # costs (it crossed the pipe inside the reply tuple just so).
            if floor is not None:
                for deliver_at, _message in outgoing:
                    if deliver_at < floor:
                        raise SimulationError(
                            "window-safety invariant violated: routed "
                            f"message delivers at {deliver_at} before the "
                            f"dispatched window bound {floor}"
                        )
            self._stats["payload_bytes"] += len(
                pickle.dumps(outgoing, protocol=pickle.HIGHEST_PROTOCOL)
            )
            self._stats["cross_shard_messages"] += len(outgoing)
            self._stats["payloads_pickled"] += len(outgoing)
            self._pending.extend(outgoing)
        worker.next_time = next_time
        worker.eot = eot
        return payload, fired

    def _broadcast(self, command: tuple) -> Tuple[List[Any], int]:
        """Send ``command`` to every worker; gather payloads in shard order."""
        if self._closed:
            raise SimulationError("parallel simulation has been closed")
        self._stats["broadcasts"] += 1
        pool = self._pool
        for worker in pool:
            pool.send(worker, command)
        payloads: List[Any] = []
        total_fired = 0
        for worker in pool:
            payload, fired = self._absorb(worker, pool.recv(worker))
            payloads.append(payload)
            total_fired += fired
        return payloads, total_fired

    def _site_call(self, site_id: SiteId, method: str, *args, **kwargs):
        if self._closed:
            raise SimulationError("parallel simulation has been closed")
        self._stats["site_calls"] += 1
        self._state_version += 1
        pool = self._pool
        worker = pool.workers[self._site_to_worker[site_id]]
        pool.send(worker, ("site_call", site_id, method, args, kwargs))
        payload, _ = self._absorb(worker, pool.recv(worker))
        return payload

    def _take_pending(self, worker: _WorkerHandle, bound: float):
        """Remove and return pending messages for a shard due before ``bound``.

        The result is sorted by (deliver_at, source site, sender sequence):
        delivery time first, with the paper-prescribed deterministic
        tie-break for simultaneous cross-shard arrivals.  In packed mode the
        site index order equals lexicographic SiteId order (the codec's
        table is sorted), so sorting by source *index* is the same order --
        and the due records are re-framed into one blob without decoding.
        """
        due: List[Any] = []
        rest: List[Any] = []
        if self._codec is not None:
            shard_indices = worker.shard_indices
            for item in self._pending:
                if item[1] in shard_indices and item[0] < bound:
                    due.append(item)
                else:
                    rest.append(item)
            self._pending = rest
            due.sort(key=lambda item: (item[0], item[2], item[3]))
            return self._codec.pack_blob([item[4] for item in due])
        shard = worker.shard
        for item in self._pending:
            deliver_at, message = item
            if message.dst in shard and deliver_at < bound:
                due.append(item)
            else:
                rest.append(item)
        self._pending = rest
        due.sort(key=lambda item: (item[0], item[1].src, item[1].uid))
        return due

    def _ring_limits_for(self, dst_w: int) -> Optional[tuple]:
        """Newly certifiable read limits for worker ``dst_w``, or None.

        One slot per source worker: ``(limit, check_floor)`` when that ring
        has bytes beyond the last certified limit, else None.  The check
        floor is the weakest (minimum) floor over the pending batches the
        new range covers -- each record must deliver at or after it, which
        the worker re-asserts at drain time.  Certifying advances
        ``_ring_limit_sent`` immediately; the batches retire only when the
        worker's reply confirms the drain.
        """
        limit_sent = self._ring_limit_sent
        write_pos = self._ring_write_pos
        limits: List[Optional[Tuple[int, float]]] = []
        any_new = False
        for src_w in range(len(limit_sent)):
            new_limit = write_pos[src_w][dst_w]
            old_limit = limit_sent[src_w][dst_w]
            if new_limit <= old_limit:
                limits.append(None)
                continue
            check_floor = _INF
            for batch in self._ring_pending:
                if (
                    batch[3] == src_w
                    and batch[4] == dst_w
                    and batch[1] > old_limit
                    and batch[5] < check_floor
                ):
                    check_floor = batch[5]
            limits.append((new_limit, check_floor))
            limit_sent[src_w][dst_w] = new_limit
            any_new = True
        return tuple(limits) if any_new else None

    def _ring_consumed_for(self, src_w: int) -> tuple:
        """Confirmed consumption cursors for producer ``src_w``'s rings."""
        return tuple(self._ring_confirmed[src_w])

    def _effective_horizon(self) -> float:
        horizon = self._planner.horizon(
            worker.next_time for worker in self._pool
        )
        pending = self._pending
        if pending:
            # First element is deliver_at in both wire modes.
            horizon = min(horizon, min(item[0] for item in pending))
        if self._ring_pending:
            # Advertised ring batches the destination shard has not
            # confirmed draining yet; their earliest delivery caps the
            # horizon exactly like coordinator-held pending messages.
            horizon = min(
                horizon, min(batch[0] for batch in self._ring_pending)
            )
        return horizon

    def _pending_lookahead(self, item) -> float:
        """Outbound latency floor of the shard a pending message delivers to."""
        if self._codec is not None:
            worker_index = self._index_to_worker[item[1]]
        else:
            worker_index = self._site_to_worker[item[1].dst]
        return self._shard_lookahead[worker_index]

    def _plan_bound(self, target_excl: float) -> Optional[float]:
        """Exclusive bound of the next window, or None when the target is hit.

        Fixed planner: ``horizon + min_latency``.  Demand planner: the
        minimum of every shard's advertised EOT and, for each pending
        cross-shard message, ``deliver_at + destination-shard lookahead``
        (the earliest a cascade started by its delivery could leave that
        shard), clipped to the target.  Jumps past the fixed bound are
        counted as ``eot_jumps`` (or ``quiescence_jumps`` when the whole
        remaining span collapses into one window).
        """
        horizon = self._effective_horizon()
        if not self._demand:
            return self._planner.window(horizon, target_excl)
        if horizon >= target_excl:
            return None
        bound = target_excl
        for worker in self._pool:
            if worker.eot < bound:
                bound = worker.eot
        for item in self._pending:
            term = item[0] + self._pending_lookahead(item)
            if term < bound:
                bound = term
        for batch in self._ring_pending:
            # Same cascade argument as coordinator-held pending messages:
            # the earliest a cascade started by this batch's delivery could
            # leave the destination shard.
            term = batch[0] + self._shard_lookahead[batch[4]]
            if term < bound:
                bound = term
        fixed = min(horizon + self._planner.lookahead, target_excl)
        if bound >= target_excl:
            bound = target_excl
            if bound > fixed:
                self._stats["quiescence_jumps"] += 1
        elif bound > fixed:
            self._stats["eot_jumps"] += 1
        if bound <= horizon:  # lookahead underflowed against a large timestamp
            bound = min(math.nextafter(horizon, _INF), target_excl)
        return bound

    def _pipeline_bound(
        self, target_excl: float, bound: float
    ) -> Optional[float]:
        """Bound for a pre-dispatched window, or None when not provably safe.

        Preconditions (checked by the caller): the window being drained was
        dispatched with zero routed messages and nothing is pending now.
        Undrained workers' EOTs are then one window stale but still valid --
        a shard that received no input can only get quieter, so the EOT it
        advertised before that window lower-bounds everything it outputs
        during it and after it.  The candidate must clear the in-flight
        bound by at least one lookahead step: stale EOTs are never ahead of
        what a full drain would plan, so a narrow pre-dispatch would *add*
        a window the plain planner would have merged -- pipelining must buy
        overlap, not cost rounds.
        """
        candidate = target_excl
        for worker in self._pool:
            if worker.eot < candidate:
                candidate = worker.eot
        if candidate <= bound:
            return None
        if candidate < target_excl and candidate - bound < self._planner.lookahead:
            return None
        return candidate

    def _dispatch_window(self, bound: float) -> Tuple[float, bool]:
        """Send one window to every worker; True when it routed no messages.

        Ring mode fuses the whole dispatch -> drain -> route -> absorb
        sequence into this one send: the command certifies the worker's
        inbound ring limits (the worker pulls the records itself), carries
        the confirmed consumption cursors for its outbound rings, and ships
        any pipe-spilled records undue-filtered -- the worker's stash holds
        them until due.  "Routed no messages" then also requires that no
        new ring bytes were certified, which is what the pipelined-dispatch
        safety argument needs.
        """
        pool = self._pool
        self._stats["windows"] += 1
        self._floor = bound
        before = len(self._pending)
        if not self._rings_active:
            for worker in pool:
                pool.send(
                    worker, ("window", bound, self._take_pending(worker, bound))
                )
            return bound, len(self._pending) == before
        certified = False
        for worker in pool:
            limits = self._ring_limits_for(worker.index)
            worker.limits_inflight.append(limits)
            if limits is not None:
                certified = True
            pool.send(
                worker,
                (
                    "window",
                    bound,
                    self._take_pending(worker, _INF),
                    limits,
                    self._ring_consumed_for(worker.index),
                ),
            )
        return bound, not certified and len(self._pending) == before

    def _advance(self, target: float) -> int:
        """Advance every shard to exactly ``target`` via safe-time windows.

        At most two windows are ever in flight: while draining the replies
        of a window that was dispatched empty, the demand planner may issue
        the next window early (``pipelined_windows``) so idle workers start
        computing before the slowest reply lands.  Replies are always
        drained in worker order, so window bounds -- and hence all
        coordination counters -- are deterministic, never wall-clock-raced.
        """
        target_excl = math.nextafter(target, _INF)
        total_fired = 0
        pool = self._pool
        workers = pool.workers
        self._state_version += 1
        inflight: List[Tuple[float, bool]] = []
        while True:
            if not inflight:
                bound = self._plan_bound(target_excl)
                if bound is None:
                    break
                inflight.append(self._dispatch_window(bound))
            bound, clean = inflight.pop(0)
            for index, worker in enumerate(workers):
                _, fired = self._absorb(
                    worker, pool.recv(worker), floor=self._floor,
                    ring_reply=True,
                )
                total_fired += fired
                if (
                    self._demand
                    and clean
                    and not inflight
                    and not self._pending
                    and not self._ring_pending
                    and index + 1 < len(workers)
                ):
                    candidate = self._pipeline_bound(target_excl, bound)
                    if candidate is not None:
                        inflight.append(self._dispatch_window(candidate))
                        self._stats["pipelined_windows"] += 1
        # Align: park messages due beyond the target in their receiving
        # shards' queues and move every clock (ours included) to the target.
        self._stats["aligns"] += 1
        for worker in pool:
            if self._rings_active:
                limits = self._ring_limits_for(worker.index)
                worker.limits_inflight.append(limits)
                pool.send(
                    worker,
                    (
                        "align",
                        target,
                        self._take_pending(worker, _INF),
                        limits,
                        self._ring_consumed_for(worker.index),
                    ),
                )
            else:
                pool.send(
                    worker, ("align", target, self._take_pending(worker, _INF))
                )
        for worker in pool:
            self._absorb(
                worker, pool.recv(worker), floor=self._floor, ring_reply=True
            )
        self.scheduler.advance_clock(target)
        return total_fired

    def coordination_stats(self) -> Dict[str, int]:
        """Counters of coordinator<->worker traffic since the fork.

        ``windows``/``aligns`` count synchronization rounds, of which
        ``eot_jumps``/``quiescence_jumps`` beat the fixed-step bound thanks
        to advertised earliest-output-times and ``pipelined_windows`` were
        dispatched before the previous window finished draining (all three
        stay 0 under ``window_planner="fixed"``); ``bytes_sent``/
        ``bytes_recv`` are coordinator-side pipe totals (every pickled byte,
        both wire modes); ``cross_shard_messages`` counts routed messages, of
        which ``payloads_packed`` used the struct wire format and
        ``payloads_pickled`` fell back to (or ran as, in legacy mode)
        per-message pickling.  ``arena_bytes`` is the shared segment size (0
        without one).

        With direct rings active, ``cross_shard_messages`` splits into
        ``ring_messages`` (travelled shard-to-shard through shared memory;
        ``ring_bytes`` counts their framed bytes, which never cross a pipe)
        and ``ring_spills`` (declined the ring -- full, or oversized -- and
        took the legacy pipe path; the packed/pickled split describes only
        those).  ``payload_bytes`` therefore covers pipe-routed payloads
        alone, which is exactly what shrinks to trailer-plus-cursor size
        per window.
        """
        stats = dict(self._stats)
        for key in (
            "windows",
            "aligns",
            "broadcasts",
            "site_calls",
            "eot_jumps",
            "quiescence_jumps",
            "pipelined_windows",
            "cross_shard_messages",
            "payloads_packed",
            "payloads_pickled",
            "payload_bytes",
            "ring_messages",
            "ring_bytes",
            "ring_spills",
        ):
            stats.setdefault(key, 0)
        stats["bytes_sent"] = self._pool.bytes_sent
        stats["bytes_recv"] = self._pool.bytes_recv
        stats["commands_sent"] = self._pool.commands_sent
        stats["packed_wire"] = int(self._codec is not None)
        stats["demand_planner"] = int(self._demand)
        stats["direct_rings"] = int(self._rings_active)
        stats["delta_exports"] = int(self._delta_exports)
        stats["arena_bytes"] = self._arena.nbytes if self._arena is not None else 0
        return stats

    def coordination_metrics(self) -> MetricsRecorder:
        """:meth:`coordination_stats` surfaced through the metrics facade.

        Coordination counters are deliberately kept out of the simulation's
        own :class:`MetricsRecorder` -- a parallel run's merged metrics must
        stay byte-identical to its sequential twin's, and the twin has no
        coordinator.  This view republishes them under the canonical
        ``parallel.*`` names of :mod:`repro.metrics.names` for consumers
        that speak recorders.
        """
        recorder = MetricsRecorder()
        stats = self.coordination_stats()
        for key, name in metric_names.PARALLEL_STAT_NAMES.items():
            recorder.incr(name, stats.get(key, 0))
        return recorder

    # -- time control (Simulation API) ---------------------------------------

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        if not self._parallel:
            return super().run_until(time, max_events=max_events)
        self._ensure_forked()
        if not self._parallel:  # degraded during fork (single shard)
            return super().run_until(time, max_events=max_events)
        if max_events is not None:
            raise SimulationError(
                "max_events is not supported by the parallel engine"
            )
        if time < self.scheduler.now:
            return 0
        return self._advance(time)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        if not self._parallel:
            return super().run_for(duration, max_events=max_events)
        return self.run_until(self.scheduler.now + duration, max_events=max_events)

    def step(self) -> bool:
        if not self._parallel:
            return super().step()
        raise SimulationError(
            "step() is not available in parallel mode: the engine advances "
            "in safe-time windows, not single global events"
        )

    def settle(self, quiet_time: float = 50.0, max_rounds: int = 1000) -> None:
        if not self._parallel:
            return super().settle(quiet_time=quiet_time, max_rounds=max_rounds)
        for _ in range(max_rounds):
            if self.run_for(quiet_time) == 0:
                return
        raise SimulationError("simulation did not settle")

    def quiesce_auto_gc(self) -> None:
        if not self._forked:
            return super().quiesce_auto_gc()
        self._state_version += 1
        self._broadcast(("quiesce",))

    def run_gc_round(self, settle_time: float = 50.0) -> None:
        if not self._parallel:
            return super().run_gc_round(settle_time=settle_time)
        self._ensure_forked()
        if not self._parallel:
            return super().run_gc_round(settle_time=settle_time)
        # Mirrors the sequential implementation exactly: one trace per
        # non-crashed site in sorted order, message drain between sites.
        for site_id in sorted(self.sites):
            if site_id not in self._crashed_sites:
                self._site_call(site_id, "run_local_trace")
            self.run_for(settle_time)
        self.settle(settle_time)

    # -- construction / access ----------------------------------------------

    def add_site(self, site_id: SiteId, auto_gc: bool = True):
        if self._forked:
            raise SimulationError("cannot add sites after workers have forked")
        return super().add_site(site_id, auto_gc=auto_gc)

    def site(self, site_id: SiteId):
        if not self._forked:
            return super().site(site_id)
        if site_id not in self.sites:
            raise SimulationError(f"no such site: {site_id!r}")
        proxy = self._proxies.get(site_id)
        if proxy is None:
            proxy = self._proxies[site_id] = SiteProxy(self, site_id)
        return proxy

    def crash_site(self, site_id: SiteId) -> None:
        """Crash ``site_id`` (all shards learn, so sends to it are lost)."""
        if site_id not in self.sites:
            raise SimulationError(f"no such site: {site_id!r}")
        if not self._forked:
            super().site(site_id).crash()
            return
        self._crashed_sites.add(site_id)
        self._state_version += 1
        self._broadcast(("crash", site_id))

    def recover_site(self, site_id: SiteId) -> None:
        if site_id not in self.sites:
            raise SimulationError(f"no such site: {site_id!r}")
        if not self._forked:
            super().site(site_id).recover()
            return
        self._crashed_sites.discard(site_id)
        self._state_version += 1
        self._broadcast(("recover", site_id))

    # -- merged state --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Merged heap/ioref snapshot, same shape as ``analysis.export.snapshot``.

        With ``config.delta_exports`` (the default) the broadcast happens at
        most once per state version: workers ship only sites whose content
        digest moved since the last export (``None`` for unchanged ones),
        the coordinator patches its cached copy, and a repeat call with no
        intervening state change skips the broadcast entirely.  Treat the
        result as read-only -- cached site entries are shared between calls.
        """
        if not self._forked:
            from ..analysis.export import graph_snapshot

            return graph_snapshot(self)
        if not self._delta_exports:
            payloads, _ = self._broadcast(("snapshot",))
            merged: Dict[str, Any] = {}
            for shard_snapshot in payloads:
                merged.update(shard_snapshot)
            return {
                "time": self.now,
                "sites": {
                    site_id: merged[site_id] for site_id in sorted(merged)
                },
            }
        if self._snapshot_version != self._state_version:
            payloads, _ = self._broadcast(("snapshot",))
            cache = self._snapshot_cache
            for shard_snapshot in payloads:
                for site_id, snap in shard_snapshot.items():
                    if snap is not None:
                        cache[site_id] = snap
            self._snapshot_version = self._state_version
        cache = self._snapshot_cache
        return {
            "time": self.now,
            "sites": {site_id: cache[site_id] for site_id in sorted(cache)},
        }

    def merged_metrics(self) -> MetricsRecorder:
        """Counter totals across all workers (plus the pre-fork baseline).

        Every worker inherited the pre-fork counters at fork time, so the
        merge adds only each worker's post-fork deltas to the baseline once.
        Observations (value series) are not merged across processes.  With
        ``config.delta_exports`` the broadcast happens at most once per
        state version and ships only counters whose values moved; the
        coordinator keeps each worker's last known values and re-merges
        from those.
        """
        if not self._forked:
            return self.metrics
        if not self._delta_exports:
            payloads, _ = self._broadcast(("metrics",))
            merged = Counter(self._fork_counters)
            for worker_counters in payloads:
                for name, value in worker_counters.items():
                    merged[name] += value - self._fork_counters.get(name, 0)
            recorder = MetricsRecorder()
            recorder._counters.update(
                {name: value for name, value in merged.items() if value}
            )
            return recorder
        if self._metrics_version != self._state_version:
            payloads, _ = self._broadcast(("metrics",))
            for known, delta in zip(self._worker_counters, payloads):
                known.update(delta)
            merged = Counter(self._fork_counters)
            fork_value = self._fork_counters.get
            for known in self._worker_counters:
                for name, value in known.items():
                    merged[name] += value - fork_value(name, 0)
            self._metrics_cache = merged
            self._metrics_version = self._state_version
        recorder = MetricsRecorder()
        recorder._counters.update(
            {name: value for name, value in self._metrics_cache.items() if value}
        )
        return recorder

    @property
    def trace_outcomes(self) -> List[tuple]:
        if not self._forked:
            return list(self._trace_outcomes)
        payloads, _ = self._broadcast(("outcomes",))
        merged = list(self._trace_outcomes[: self._fork_outcome_count])
        fresh: List[tuple] = []
        for worker_outcomes in payloads:
            fresh.extend(worker_outcomes[self._fork_outcome_count :])
        # (time, initiator site, trace id) is unique per outcome and matches
        # the execution order a sequential run would have appended in.
        fresh.sort(key=lambda outcome: (outcome[0], outcome[1], outcome[2]))
        return merged + fresh

    def total_objects(self) -> int:
        if not self._forked:
            return super().total_objects()
        if self._arena is not None:
            # Workers publish per-site resident counts into their region
            # headers on every alloc/sweep, and they are parked in recv
            # between exchanges -- a direct read, no broadcast.  Any heap
            # that spilled its region invalidates the fast path (None).
            total = self._arena.total_alive()
            if total is not None:
                self._stats["arena_count_reads"] += 1
                return total
        payloads, _ = self._broadcast(("counts",))
        return sum(payloads)

    def all_object_ids(self) -> List[ObjectId]:
        if not self._forked:
            return super().all_object_ids()
        payloads, _ = self._broadcast(("oids",))
        merged: List[ObjectId] = []
        for oids in payloads:
            merged.extend(oids)
        return merged
