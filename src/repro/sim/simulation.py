"""Top-level simulation: scheduler + network + sites + mutators.

A :class:`Simulation` is the single object experiments interact with.  It
owns the deterministic scheduler, the RNG registry, the metrics recorder, the
network, and every site.  Controlled experiments usually disable automatic
GC (``auto_gc=False``), call :meth:`run_gc_round` to give every site exactly
one local trace per round (the "round" of the section 3 distance theorem),
and advance simulated time with :meth:`run_for` to deliver messages.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import SimulationConfig
from ..core.collector import CollectorSpec, resolve_collector
from ..errors import SimulationError
from ..ids import ObjectId, SiteId, TraceId
from ..metrics import MetricsRecorder
from ..net.faults import FaultPlan
from ..net.latency import LatencyModel
from ..net.network import Network
from ..site.site import Site
from .rng import RngRegistry
from .scheduler import Scheduler


class Simulation:
    """A complete simulated distributed object store."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        latency_model: Optional[LatencyModel] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        self.config = config or SimulationConfig()
        self.scheduler = Scheduler()
        self.rng = RngRegistry(self.config.seed)
        self.metrics = MetricsRecorder()
        self.network = Network(
            self.scheduler,
            self.rng,
            self.metrics,
            config=self.config.network,
            latency_model=latency_model,
            fault_plan=fault_plan,
        )
        self.sites: Dict[SiteId, Site] = {}
        self._mutator_hop_handlers: Dict[str, Callable[[ObjectId], None]] = {}
        self._trace_outcomes: List[tuple] = []
        # The cycle-collection backend, resolved once (unknown names fail
        # here, before any site exists) and injected into every add_site.
        self._collector_spec: CollectorSpec = resolve_collector(
            self.config.gc.collector
        )
        self._collector_driver: Optional[object] = None

    @classmethod
    def create(
        cls,
        config: Optional[SimulationConfig] = None,
        *,
        latency_model: Optional[LatencyModel] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> "Simulation":
        """Build the right engine for ``config``: the single entry point.

        Returns a plain sequential :class:`Simulation` unless
        ``config.parallel_workers > 1``, in which case the sharded parallel
        engine is constructed (imported lazily -- most runs never need it).
        Callers should prefer this over instantiating either class directly;
        direct ``ParallelSimulation(...)`` construction is deprecated.
        """
        config = config or SimulationConfig()
        target = cls
        if cls is Simulation and config.parallel_workers > 1:
            from .parallel import ParallelSimulation

            target = ParallelSimulation
        creator = getattr(target, "_create", None)
        if creator is not None:
            return creator(config, latency_model=latency_model, fault_plan=fault_plan)
        return target(config, latency_model=latency_model, fault_plan=fault_plan)

    # -- construction ---------------------------------------------------------------

    def add_site(self, site_id: SiteId, auto_gc: bool = True) -> Site:
        if site_id in self.sites:
            raise SimulationError(f"site {site_id!r} already exists")
        site = Site(
            site_id,
            self.scheduler,
            self.network,
            self.config.gc,
            metrics=self.metrics,
            jitter_rng=self.rng.stream(f"gc-jitter:{site_id}"),
            auto_gc=auto_gc,
            on_mutator_hop=self._dispatch_mutator_hop,
            on_trace_outcome=self._record_trace_outcome,
            collector_factory=self._collector_spec.site_factory,
        )
        self.sites[site_id] = site
        self.network.register(site_id, site.receive)
        return site

    def add_sites(self, site_ids, auto_gc: bool = True) -> List[Site]:
        return [self.add_site(site_id, auto_gc=auto_gc) for site_id in site_ids]

    @property
    def collector_driver(self):
        """The sim-level round driver of a driver-style backend, built lazily.

        The six ``baseline.*`` backends follow a coordinator model: handlers
        registered against the running simulation plus an explicit
        ``run_round``.  Selecting one via ``GcConfig.collector`` makes this
        property the supported way to reach that driver (it needs the sites,
        so it cannot exist before :meth:`add_site` calls).  Raises for
        backends that are purely per-site (backtrace, termination, null).
        """
        if self._collector_driver is None:
            factory = self._collector_spec.driver_factory
            if factory is None:
                raise SimulationError(
                    f"collector {self._collector_spec.name!r} has no "
                    "sim-level driver (it runs per-site)"
                )
            self._collector_driver = factory(self)
        return self._collector_driver

    def site(self, site_id: SiteId) -> Site:
        try:
            return self.sites[site_id]
        except KeyError:
            raise SimulationError(f"no such site: {site_id!r}") from None

    def site_of(self, oid: ObjectId) -> Site:
        return self.site(oid.site)

    # -- mutator wiring -----------------------------------------------------------------

    def register_mutator_hops(
        self, name: str, handler: Callable[[ObjectId], None]
    ) -> None:
        self._mutator_hop_handlers[name] = handler

    def _dispatch_mutator_hop(self, mutator: str, target: ObjectId) -> None:
        handler = self._mutator_hop_handlers.get(mutator)
        if handler is not None:
            handler(target)

    def _record_trace_outcome(self, site_id: SiteId, trace_id: TraceId, verdict) -> None:
        self._trace_outcomes.append((self.scheduler.now, site_id, trace_id, verdict))

    @property
    def trace_outcomes(self) -> List[tuple]:
        """(time, initiator site, trace id, verdict) for completed traces."""
        return list(self._trace_outcomes)

    # -- time control --------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        return self.scheduler.run_for(duration, max_events=max_events)

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        return self.scheduler.run_until(time, max_events=max_events)

    def step(self) -> bool:
        return self.scheduler.step()

    def settle(self, quiet_time: float = 50.0, max_rounds: int = 1000) -> None:
        """Advance time until no events fire for ``quiet_time`` units.

        Useful after manual GC rounds: lets all update/insert/back-trace
        messages drain.  Raises if the system never goes quiet.
        """
        for _ in range(max_rounds):
            fired = self.scheduler.run_for(quiet_time)
            if fired == 0:
                return
        raise SimulationError("simulation did not settle")

    def quiesce_auto_gc(self) -> None:
        """Cancel every site's periodic GC timer.

        Useful before drain phases: with the periodic tickers silenced,
        :meth:`settle` terminates deterministically and GC can be driven
        with :meth:`run_gc_round`.
        """
        for site in self.sites.values():
            site.stop_auto_gc()

    # -- controlled GC -----------------------------------------------------------------------

    def run_gc_round(self, settle_time: float = 50.0) -> None:
        """Each non-crashed site runs exactly one local trace, then messages drain.

        This is a "round" in the sense of the distance-propagation theorem of
        section 3: after k rounds, the distance estimates of a garbage cycle
        are at least k.
        """
        for site_id in sorted(self.sites):
            site = self.sites[site_id]
            if not site.crashed:
                site.run_local_trace()
            # Let the commit (if the trace is non-atomic) and the resulting
            # update/back-trace traffic progress before the next site runs.
            self.scheduler.run_for(settle_time)
        self.settle(settle_time)

    # -- global introspection ---------------------------------------------------------------------

    def total_objects(self) -> int:
        return sum(len(site.heap) for site in self.sites.values())

    def all_object_ids(self) -> List[ObjectId]:
        ids: List[ObjectId] = []
        for site in self.sites.values():
            ids.extend(site.heap.object_ids())
        return ids
