"""Named, seeded random streams.

Each component (network latency, mutator at site P, GC jitter at site Q, ...)
draws from its own stream derived from the master seed and the stream name.
Adding a new consumer of randomness therefore never perturbs the draws seen
by existing components, which keeps regression tests stable.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory of independent ``random.Random`` streams keyed by name."""

    def __init__(self, seed: int):
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream
