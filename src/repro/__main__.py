"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``demo``       -- the quickstart: watch a two-site cycle get collected.
- ``figures``    -- rebuild the paper's figure scenarios and print what
                    happens on each (F1, F2, F3, F5 stories).
- ``compare``    -- the collector comparison table (benchmark E6).
- ``stress``     -- a randomized full-concurrency run with live safety
                    auditing (like benchmark E7).
- ``scale``      -- a many-site churn run on the sharded parallel engine
                    (``--workers N`` picks the worker-process count).
- ``diff``       -- differential testing: run the back tracer and the
                    termination backend over identical seeded workloads and
                    oracle-check they reclaim the same garbage (E22).

Every command accepts ``--seed`` for deterministic replay and ``--profile``
to run under cProfile and print the top-20 cumulative hotspots on exit.
"""

from __future__ import annotations

import argparse
import sys

from .api import GcConfig, Simulation, SimulationConfig
from .analysis import Oracle
from .harness.profiling import profiled
from .harness.report import Table
from .workloads import GraphBuilder


def cmd_demo(args: argparse.Namespace) -> int:
    sim = Simulation.create(SimulationConfig(seed=args.seed))
    sim.add_sites(["P", "Q"], auto_gc=False)
    builder = GraphBuilder(sim)
    root = builder.obj("P", root=True)
    p, q = builder.obj("P"), builder.obj("Q")
    builder.link(root, p)
    builder.link(p, q)
    builder.link(q, p)
    sim.site("P").mutator_remove_ref(root, p)
    oracle = Oracle(sim)
    print("garbage cycle created:", sorted(str(o) for o in oracle.garbage_set()))
    for round_number in range(1, 40):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            print(f"collected after {round_number} rounds; "
                  f"{sim.metrics.count('messages.BackCall')} back calls, "
                  f"{sim.metrics.count('backtrace.completed_garbage')} trace confirmed")
            return 0
    print("NOT collected (this should never happen)")
    return 1


def cmd_figures(args: argparse.Namespace) -> int:
    from .harness.scenarios import build_figure1, build_figure2, build_figure3

    print("Figure 1: local tracing collects d,e by updates; back tracing gets f,g")
    scenario = build_figure1(seed=args.seed)
    oracle = Oracle(scenario.sim)
    for round_number in range(1, 40):
        scenario.sim.run_gc_round()
        if not oracle.garbage_set():
            print(f"  all garbage gone after round {round_number}")
            break

    print("Figure 2: insets computed for Q's outrefs")
    scenario = build_figure2(seed=args.seed)
    sim = scenario.sim
    for entry in sim.site("Q").inrefs.entries():
        for source in list(entry.sources):
            # Through the entry API so the table's distance epoch advances
            # and the incremental trace below sees the change.
            entry.set_source_distance(source, 9)
    sim.site("Q").run_local_trace()
    for entry in sim.site("Q").outrefs.entries():
        inset = ",".join(str(x) for x in sorted(entry.inset))
        print(f"  outref {entry.target}: inset {{{inset}}}")

    print("Figure 3: branching back trace over a live structure")
    scenario = build_figure3(seed=args.seed)
    sim = scenario.sim
    for _ in range(30):
        sim.run_gc_round()
    alive = all(
        sim.site(scenario[l].site).heap.contains(scenario[l])
        for l in ("a", "b", "c", "d")
    )
    print(f"  live structure intact after 30 rounds: {alive}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .harness.comparison import PROTOCOL_KINDS, run_with_collector

    table = Table(
        "Collecting a 2-site cycle in an 8-site system",
        ["collector", "rounds", "msgs", "sites", "ok", "ok w/ crash"],
    )
    for name in sorted(PROTOCOL_KINDS):
        healthy = run_with_collector(name)
        crashed = run_with_collector(name, crash_bystander=True)
        table.add_row(
            name,
            healthy["rounds"] if healthy["rounds"] is not None else "-",
            healthy["messages"],
            len(healthy["involved"]),
            "yes" if healthy["collected"] else "no",
            "yes" if crashed["collected"] else "NO",
        )
    table.print()
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    from .mutator import RandomWorkload, WorkloadConfig
    from .workloads import build_random_clustered_graph, build_ring_cycle

    gc = GcConfig(
        suspicion_threshold=1,
        assumed_cycle_length=4,
        local_trace_period=60.0,
        local_trace_period_jitter=20.0,
        local_trace_duration=5.0,
        backtrace_timeout=200.0,
    )
    sites = [f"s{i}" for i in range(args.sites)]
    sim = Simulation.create(SimulationConfig(seed=args.seed, gc=gc))
    sim.add_sites(sites, auto_gc=True)
    graph = build_random_clustered_graph(sim, sites, objects_per_site=25, seed=args.seed)
    rings = [build_ring_cycle(sim, sites[k:] + sites[:k]) for k in range(3)]
    mutators = [
        RandomWorkload(sim, f"m{i}", graph.roots[i % len(graph.roots)],
                       config=WorkloadConfig(mean_interval=3.0))
        for i in range(3)
    ]
    for mutator in mutators:
        mutator.start()
    oracle = Oracle(sim)
    for step in range(1, 21):
        sim.run_for(args.duration / 20)
        if step == 5:
            for ring in rings:
                ring.make_garbage(sim)
        oracle.check_safety()
        print(f"t={sim.now:7.0f} objects={sim.total_objects():4d} "
              f"swept={sim.metrics.count('gc.objects_swept'):4d} "
              f"traces={sim.metrics.count('backtrace.completed_garbage')}g/"
              f"{sim.metrics.count('backtrace.completed_live')}l safety=OK")
    for mutator in mutators:
        mutator.stop()
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    for _ in range(120):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            print("drained: zero residual garbage, zero safety violations")
            return 0
    print("residual garbage remains!")
    return 1


def cmd_scale(args: argparse.Namespace) -> int:
    from .config import NetworkConfig
    from .sim.parallel import ParallelSimulation
    from .workloads import SiteChurn

    config = SimulationConfig(
        seed=args.seed,
        network=NetworkConfig(pair_rng_streams=True),
        parallel_workers=args.workers,
        shard_policy=args.shard_policy,
    )
    sim = Simulation.create(config)
    sites = [f"s{i:03d}" for i in range(args.sites)]
    sim.add_sites(sites, auto_gc=True)
    churn = SiteChurn(sim, sites)
    churn.start(until=args.duration)
    fired = 0
    for step in range(10):
        fired += sim.run_for(args.duration / 10)
        print(
            f"t={sim.now:8.0f} events={fired:8d} objects={sim.total_objects():6d}"
        )
    metrics = (
        sim.merged_metrics()
        if isinstance(sim, ParallelSimulation) and sim.parallel_active
        else sim.metrics
    )  # isinstance, not ==: create() returned whichever engine fits
    print(
        f"done: {args.sites} sites / {args.workers} workers, "
        f"{fired} events, {metrics.count('churn.ops')} churn ops, "
        f"{metrics.count('messages.total')} messages, "
        f"{metrics.count('gc.objects_swept')} objects swept"
    )
    if isinstance(sim, ParallelSimulation):
        sim.close()
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .harness.chaos import run_chaos_matrix, standard_plans

    if args.smoke:
        seeds = [args.seed, args.seed + 1]
        site_ids = [f"s{index}" for index in range(4)]
        plans = standard_plans(site_ids)[:5]  # link faults only: fast
        results = run_chaos_matrix(seeds, plans, n_sites=4, garbage_rings=2)
    else:
        seeds = [args.seed + offset for offset in range(args.seeds)]
        results = run_chaos_matrix(seeds)
    table = Table(
        "Chaos matrix: oracle-audited GC under injected faults",
        ["seed", "plan", "safe", "collected", "rounds", "dropped", "dup", "retrans", "suppressed"],
    )
    failures = 0
    for result in results:
        failures += 0 if result.ok else 1
        table.add_row(
            result.seed,
            result.plan,
            "yes" if result.safety_ok else "NO",
            "yes" if result.collected else "NO",
            result.rounds_to_collect or "-",
            result.dropped,
            result.duplicated,
            result.retransmits,
            result.dup_suppressed,
        )
    table.print()
    for result in results:
        for violation in result.violations:
            print(f"  [{result.seed}/{result.plan}] {violation}")
    print(f"{len(results) - failures}/{len(results)} cases passed")
    return 1 if failures else 0


def cmd_diff(args: argparse.Namespace) -> int:
    from .harness.differential import WORKLOADS, run_differential_matrix

    if args.smoke:
        seeds = [args.seed, args.seed + 1]
        workloads = ("rings", "hypertext")
    else:
        seeds = [args.seed + offset for offset in range(args.seeds)]
        workloads = WORKLOADS
    results = run_differential_matrix(seeds, workloads)
    table = Table(
        "Differential matrix: backtrace vs termination, oracle-audited",
        ["seed", "workload", "garbage", "bt rounds", "term rounds", "gap", "agree"],
    )
    failures = 0
    for result in results:
        failures += 0 if result.agreed else 1
        bt = result.runs.get("backtrace")
        tm = result.runs.get("termination")
        gap = result.latency_gap
        table.add_row(
            result.seed,
            result.workload,
            result.expected_garbage,
            (bt.rounds_to_clear if bt and bt.rounds_to_clear else "-"),
            (tm.rounds_to_clear if tm and tm.rounds_to_clear else "-"),
            f"{gap:+.2f}" if gap is not None else "-",
            "yes" if result.agreed else "NO",
        )
    table.print()
    for result in results:
        run_violations = [
            violation
            for run in result.runs.values()
            for violation in run.violations
        ]
        for violation in result.violations + run_violations:
            print(f"  [{result.seed}/{result.workload}] {violation}")
    print(f"{len(results) - failures}/{len(results)} cells agreed")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Back-tracing distributed cycle collection (PODC'97 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile; print top-20 cumulative hotspots on exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="two-site cycle quickstart")
    sub.add_parser("figures", help="replay the paper's figures")
    sub.add_parser("compare", help="collector comparison table (E6)")
    stress = sub.add_parser("stress", help="randomized concurrency stress (E7)")
    stress.add_argument("--sites", type=int, default=4)
    stress.add_argument("--duration", type=float, default=3000.0)
    scale = sub.add_parser(
        "scale", help="many-site churn on the sharded parallel engine"
    )
    scale.add_argument("--sites", type=int, default=64)
    scale.add_argument("--workers", type=int, default=1)
    scale.add_argument(
        "--shard-policy", choices=("contiguous", "round_robin"), default="contiguous"
    )
    scale.add_argument("--duration", type=float, default=2000.0)
    chaos = sub.add_parser(
        "chaos", help="fault-injection matrix with oracle auditing (E17)"
    )
    chaos.add_argument(
        "--smoke", action="store_true", help="small fast matrix (CI)"
    )
    chaos.add_argument(
        "--seeds", type=int, default=8, help="number of seeds (full matrix)"
    )
    diff = sub.add_parser(
        "diff",
        help="differential test: backtrace vs termination backend (E22)",
    )
    diff.add_argument(
        "--smoke", action="store_true", help="small fast matrix (CI)"
    )
    diff.add_argument(
        "--seeds", type=int, default=8, help="number of seeds (full matrix)"
    )

    args = parser.parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "figures": cmd_figures,
        "compare": cmd_compare,
        "stress": cmd_stress,
        "scale": cmd_scale,
        "chaos": cmd_chaos,
        "diff": cmd_diff,
    }
    with profiled(enabled=args.profile):
        return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
