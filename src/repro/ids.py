"""Identifier types used throughout the library.

The paper's object model names objects by site plus a per-site serial number.
References *are* object ids: a reference held at site P pointing to an object
owned by site R is simply R's object id stored inside one of P's objects.

All id types are small immutable values that hash and sort deterministically,
which keeps the discrete-event simulation replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# Sites are identified by short strings ("P", "Q", ...) in examples and by
# generated names ("s00", "s01", ...) in workloads.  Using strings keeps
# traces and test failures readable, matching the paper's figures.
SiteId = str


@dataclass(frozen=True, order=True)
class ObjectId:
    """Globally unique name of an object: owning site + per-site serial.

    An :class:`ObjectId` doubles as a *reference*.  ``ObjectId.site`` tells
    whether a reference is local or remote relative to a holder.
    """

    site: SiteId
    serial: int

    def is_local_to(self, site: SiteId) -> bool:
        """Return True if this object lives at ``site``."""
        return self.site == site

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.site}.{self.serial}"


@dataclass(frozen=True, order=True)
class TraceId:
    """Unique id of one distributed back trace.

    The initiating site assigns the id (site + a local sequence number), as
    described in section 4.7 of the paper; uniqueness follows from the site id
    being unique and the sequence number being locally monotonic.
    """

    initiator: SiteId
    seq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"bt:{self.initiator}:{self.seq}"


@dataclass(frozen=True, order=True)
class FrameId:
    """Identifies one activation frame of a back trace at one site."""

    site: SiteId
    seq: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"fr:{self.site}:{self.seq}"


Ref = ObjectId
"""Alias used where code reads better as 'reference' than 'object id'."""


def parse_object_id(text: str) -> ObjectId:
    """Parse the ``site.serial`` form produced by ``str(ObjectId)``.

    >>> parse_object_id("P.3")
    ObjectId(site='P', serial=3)
    """
    site, _, serial = text.rpartition(".")
    if not site:
        raise ValueError(f"not an object id: {text!r}")
    return ObjectId(site=site, serial=int(serial))


IdLike = Union[ObjectId, str]


def coerce_object_id(value: IdLike) -> ObjectId:
    """Accept either an :class:`ObjectId` or its string form."""
    if isinstance(value, ObjectId):
        return value
    return parse_object_id(value)
