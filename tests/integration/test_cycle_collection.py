"""End-to-end cycle collection across topologies (E1, E5, completeness)."""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.core.backtrace.messages import TraceOutcome
from repro.workloads import (
    GraphBuilder,
    build_clique_cycle,
    build_hypertext_web,
    build_ring_cycle,
)

from ..conftest import collect_until_clean, make_sim


@pytest.mark.parametrize("n_sites", [2, 3, 4, 6, 10])
def test_ring_cycles_collected(n_sites):
    sites = [f"s{i}" for i in range(n_sites)]
    sim = make_sim(sites=sites)
    workload = build_ring_cycle(sim, sites)
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    collect_until_clean(sim, oracle, max_rounds=60)


@pytest.mark.parametrize("n_sites", [2, 3, 5])
def test_clique_cycles_collected(n_sites):
    sites = [f"s{i}" for i in range(n_sites)]
    sim = make_sim(sites=sites)
    workload = build_clique_cycle(sim, sites)
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    collect_until_clean(sim, oracle, max_rounds=60)


def test_ring_with_local_chains_collected():
    sites = ["a", "b", "c"]
    sim = make_sim(sites=sites)
    workload = build_ring_cycle(sim, sites, objects_per_site=5)
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    collect_until_clean(sim, oracle, max_rounds=60)


def test_cycle_pointing_to_live_objects_spares_them():
    """A garbage cycle referencing live objects must not drag them down."""
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    root = b.obj("P", "root", root=True)
    keeper = b.obj("Q", "keeper")
    b.link(root, keeper)
    p, q = b.obj("P", "p"), b.obj("Q", "q")
    b.link_cycle([p, q])
    b.link(q, keeper)  # the cycle points at a live object
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=60)
    assert sim.site("Q").heap.contains(keeper)


def test_cycle_with_garbage_tail_collected_entirely():
    sim = make_sim(sites=("P", "Q", "R"))
    b = GraphBuilder(sim)
    b.obj("P", "root", root=True)
    p, q = b.obj("P", "p"), b.obj("Q", "q")
    b.link_cycle([p, q])
    tail1 = b.obj("R", "tail1")
    tail2 = b.obj("R", "tail2")
    b.link(q, tail1)
    b.link(tail1, tail2)
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=60)


def test_two_disjoint_cycles_collected_independently():
    sim = make_sim(sites=("P", "Q", "R", "S"))
    b = GraphBuilder(sim)
    b.obj("P", "root", root=True)
    c1 = [b.obj("P"), b.obj("Q")]
    c2 = [b.obj("R"), b.obj("S")]
    b.link_cycle(c1)
    b.link_cycle(c2)
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=60)


def test_interlocked_cycles_sharing_a_site():
    """Two cycles sharing an object: the SCC spans three sites."""
    sim = make_sim(sites=("P", "Q", "R"))
    b = GraphBuilder(sim)
    hub = b.obj("P", "hub")
    left = b.obj("Q", "left")
    right = b.obj("R", "right")
    b.link(hub, left)
    b.link(left, hub)
    b.link(hub, right)
    b.link(right, hub)
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=60)


def test_hypertext_web_leak_collected():
    sites = ["w0", "w1", "w2", "w3"]
    sim = make_sim(sites=sites)
    web = build_hypertext_web(
        sim, sites, documents_per_site=2, citations_per_document=2,
        back_link_probability=0.8, catalog_fraction=1.0, seed=7,
    )
    oracle = Oracle(sim)
    for _ in range(3):
        sim.run_gc_round()
    # Unlink half the catalog: cross-site citation cycles become garbage.
    for index in list(web.catalog_entries)[::2]:
        web.unlink_from_catalog(sim, index)
    collect_until_clean(sim, oracle, max_rounds=80)


def test_message_complexity_formula():
    """Section 4.6: a confirming trace costs 2E + (N - 1) messages, where E
    counts traversed inter-site references and N the participant sites (the
    initiator reports to the N-1 others)."""
    for n_sites in (2, 4, 8):
        sites = [f"s{i}" for i in range(n_sites)]
        sim = make_sim(sites=sites)
        workload = build_ring_cycle(sim, sites)
        for _ in range(2):
            sim.run_gc_round()
        workload.make_garbage(sim)
        oracle = Oracle(sim)
        # Run until just before the trace triggers, then snapshot.
        for _ in range(60):
            before = sim.metrics.snapshot()
            sim.run_gc_round()
            if sim.metrics.count("backtrace.started") > 0:
                break
        delta = sim.metrics.snapshot().diff(before)
        edges = n_sites  # a ring has one inter-site reference per site
        assert delta.get("messages.BackCall", 0) == edges
        assert delta.get("messages.BackReply", 0) == edges
        assert delta.get("messages.BackOutcome", 0) == n_sites - 1


def test_exactly_one_trace_confirms_default_config():
    """With T2 = T + L and L at least the cycle length, the first trace
    confirms garbage -- no abortive Live attempts (section 4.3)."""
    sites = [f"s{i}" for i in range(4)]
    sim = make_sim(sites=sites, gc=GcConfig(assumed_cycle_length=8))
    workload = build_ring_cycle(sim, sites)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=60)
    assert sim.metrics.count("backtrace.completed_garbage") >= 1
    assert sim.metrics.count("backtrace.completed_live") == 0


def test_premature_threshold_causes_abortive_traces_but_converges():
    """With T2 too low for the cycle, early traces return Live; collection
    still completes (the back threshold ratchets up, later traces confirm)."""
    sites = [f"s{i}" for i in range(6)]
    sim = make_sim(
        sites=sites,
        gc=GcConfig(assumed_cycle_length=1, back_threshold_increment=2),
    )
    workload = build_ring_cycle(sim, sites)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=80)
    assert sim.metrics.count("backtrace.completed_live") >= 1
    assert sim.metrics.count("backtrace.completed_garbage") >= 1


def test_acyclic_garbage_never_needs_backtracing():
    sim = make_sim(sites=("P", "Q", "R"))
    b = GraphBuilder(sim)
    root = b.obj("P", "root", root=True)
    chain = [b.obj("P"), b.obj("Q"), b.obj("R")]
    b.link(root, chain[0])
    b.link(chain[0], chain[1])
    b.link(chain[1], chain[2])
    for _ in range(2):
        sim.run_gc_round()
    sim.site("P").mutator_remove_ref(root, chain[0])
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=10)
    assert sim.metrics.count("backtrace.started") == 0
