"""Twin-run equivalence: caching/coalescing/batching must not change outcomes.

The verdict cache, trace coalescing, and call batching are pure performance
mechanisms: the same seeded workload run with all three on and all three off
must collect exactly the same objects and leave exactly the same survivors,
with the oracle auditing safety after every round.
"""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.workloads import build_ring_cycle

from ..conftest import make_sim

SITES = [f"s{i}" for i in range(6)]

# Low thresholds so the *live* ring's distances exceed the back threshold and
# the live suspects get back-traced repeatedly -- the case the cache serves.
TUNING = dict(
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
)


def _run_scenario(seed: int, **features):
    sim = make_sim(seed=seed, sites=SITES, gc=GcConfig(**TUNING, **features))
    live = build_ring_cycle(sim, SITES)
    doomed = build_ring_cycle(sim, SITES[:4])
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
        oracle.check_safety()
    doomed.make_garbage(sim)
    for _ in range(30):
        sim.run_gc_round()
        oracle.check_safety()
    heaps = {
        site_id: frozenset(sim.site(site_id).heap.object_ids()) for site_id in SITES
    }
    return sim, oracle, heaps, live, doomed


@pytest.mark.parametrize("seed", [0, 7])
def test_twin_run_cache_on_off_identical_collection(seed):
    sim_on, oracle_on, heaps_on, live_on, _ = _run_scenario(seed)
    sim_off, oracle_off, heaps_off, _, _ = _run_scenario(
        seed,
        backtrace_cache=False,
        backtrace_coalesce=False,
        backtrace_batch_calls=False,
    )
    # Both runs collected all garbage and kept every live object.
    assert not oracle_on.garbage_set()
    assert not oracle_off.garbage_set()
    for member in live_on.cycle:
        assert sim_on.site(member.site).heap.contains(member)
    # The surviving heaps are identical, site by site, object by object.
    assert heaps_on == heaps_off
    # And the optimized run actually exercised its mechanisms.
    assert sim_on.metrics.count("backtrace.cache_hits") > 0
    assert sim_off.metrics.count("backtrace.cache_hits") == 0
