"""Every example program must run green -- examples are part of the API.

Each runs in a subprocess with the repository root on the path, exactly as
a user would invoke it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        cwd=tmp_path,  # artifacts (CSV etc.) land in a scratch dir
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example} printed nothing"
