"""Every example program must run green -- examples are part of the API.

Each runs in a subprocess with ``src`` on PYTHONPATH, exactly as a user
following the README's `PYTHONPATH=src python examples/...` would invoke it.
"""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_clean(example, tmp_path):
    src = str(REPO_ROOT / "src")
    existing = os.environ.get("PYTHONPATH")
    pythonpath = src if not existing else src + os.pathsep + existing
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        cwd=tmp_path,  # artifacts (CSV etc.) land in a scratch dir
        env={**os.environ, "PYTHONPATH": pythonpath},
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example} printed nothing"
