"""Integration tests for the distance heuristic (section 3, benchmark E2).

The theorem: if all sites containing a cycle do at least one local trace per
round, then k rounds after the cycle became garbage the estimated distances
of all objects in the cycle are at least k.  Live objects' estimates converge
to their true distances and stay put.
"""

import pytest

from repro import GcConfig
from repro.workloads import GraphBuilder, build_ring_cycle

from ..conftest import make_sim


def min_cycle_distance(sim, workload):
    distances = []
    for member in workload.cycle:
        entry = sim.site(member.site).inrefs.get(member)
        if entry is not None:
            distances.append(entry.distance)
    return min(distances) if distances else None


@pytest.mark.parametrize("n_sites", [2, 3, 5, 8])
def test_garbage_cycle_distances_grow_at_least_one_per_round(n_sites):
    sites = [f"s{i}" for i in range(n_sites)]
    sim = make_sim(sites=sites, gc=GcConfig(enable_backtracing=False))
    workload = build_ring_cycle(sim, sites)
    for _ in range(3):
        sim.run_gc_round()
    workload.make_garbage(sim)
    baseline = min_cycle_distance(sim, workload)
    for k in range(1, 12):
        sim.run_gc_round()
        assert min_cycle_distance(sim, workload) >= baseline + k - 1


def test_live_object_distance_converges_to_true_distance():
    """A chain root -> s0 -> s1 -> s2 -> s3: true distances are 1..4."""
    sites = ["s0", "s1", "s2", "s3"]
    sim = make_sim(sites=sites, gc=GcConfig(enable_backtracing=False))
    b = GraphBuilder(sim)
    root = b.obj("s0", "root", root=True)
    members = [b.obj(site) for site in sites]
    b.link(root, members[1])
    b.link(members[1], members[2])
    b.link(members[2], members[3])
    for _ in range(6):
        sim.run_gc_round()
    for hop, member in enumerate(members[1:], start=1):
        entry = sim.site(member.site).inrefs.require(member)
        assert entry.distance == hop
    # Further rounds change nothing.
    for _ in range(4):
        sim.run_gc_round()
    for hop, member in enumerate(members[1:], start=1):
        assert sim.site(member.site).inrefs.require(member).distance == hop


def test_live_cycle_distance_stable():
    """A live ring's estimates stabilize at true distances (no runaway)."""
    sites = ["a", "b", "c"]
    sim = make_sim(sites=sites, gc=GcConfig(enable_backtracing=False))
    workload = build_ring_cycle(sim, sites)  # anchored to the root
    for _ in range(10):
        sim.run_gc_round()
    snapshot = [
        sim.site(m.site).inrefs.require(m).distance for m in workload.cycle
    ]
    for _ in range(5):
        sim.run_gc_round()
    assert snapshot == [
        sim.site(m.site).inrefs.require(m).distance for m in workload.cycle
    ]
    assert max(snapshot) <= len(sites) + 1


def test_all_cyclic_garbage_eventually_suspected():
    """Completeness of the heuristic: every cycle member crosses T."""
    threshold = 4
    sites = [f"s{i}" for i in range(4)]
    sim = make_sim(
        sites=sites,
        gc=GcConfig(suspicion_threshold=threshold, enable_backtracing=False),
    )
    workload = build_ring_cycle(sim, sites, objects_per_site=2)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    for _ in range(threshold + 4):
        sim.run_gc_round()
    for member in workload.cycle:
        entry = sim.site(member.site).inrefs.get(member)
        if entry is not None:  # intra-site members have no inref
            assert entry.is_suspected(threshold)


def test_new_source_starts_at_distance_one():
    sim = make_sim(sites=("P", "Q"))
    b = GraphBuilder(sim)
    target = b.obj("Q", "t")
    holder = b.obj("P", "h", root=True)
    b.link(holder, target)
    entry = sim.site("Q").inrefs.require(target)
    assert entry.sources == {"P": 1}
