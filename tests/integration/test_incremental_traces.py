"""Incremental local traces must be observationally invisible.

The dirty-tracking planner may resolve a gc tick as a *skip* (nothing
changed) or as a distance-only *fast path*; either way the externally
visible state -- heaps, ioref tables, update traffic, and oracle-checked
liveness -- has to be exactly what a full trace would have produced.
These tests drive a bench_e13-style system (live cross-site chain plus a
2-site garbage cycle) through collection into steady state and compare
against forced full traces and an ``incremental_traces=False`` twin run
on the same seed.
"""

from dataclasses import replace

import pytest

from repro import GcConfig, Simulation, SimulationConfig
from repro.analysis import Oracle, snapshot
from repro.workloads import GraphBuilder, build_ring_cycle

SITES = ["s0", "s1", "s2", "s3"]


def build_system(gc: GcConfig, seed: int = 7):
    """Live chain s0->s1->s2->s3 rooted at s0, garbage ring on (s2, s3)."""
    sim = Simulation(SimulationConfig(seed=seed, gc=gc))
    sim.add_sites(SITES, auto_gc=False)
    builder = GraphBuilder(sim)
    root = builder.obj("s0", "root", root=True)
    prev = root
    for site_id in SITES[1:]:
        nxt = builder.obj(site_id, f"chain_{site_id}")
        builder.link(prev, nxt)
        prev = nxt
    cycle = build_ring_cycle(sim, ["s2", "s3"])
    return sim, builder, cycle


def collect_until_clean(sim, oracle, max_rounds=40):
    for round_number in range(1, max_rounds + 1):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            return round_number
    raise AssertionError("cycle was not collected within the round budget")


def tables_fingerprint(sim):
    """State fingerprint excluding simulated time (which always advances)."""
    return snapshot(sim)["sites"]


def test_steady_state_ticks_skip_and_leave_no_trace():
    # A huge full_trace_every_n keeps the periodic safety net out of the
    # measurement window so every quiescent tick must resolve as a skip.
    gc = GcConfig(full_trace_every_n=1000)
    sim, _, cycle = build_system(gc)
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    cycle.make_garbage(sim)
    collect_until_clean(sim, oracle)
    for _ in range(3):  # drain into a fully quiescent steady state
        sim.run_gc_round()

    before_metrics = sim.metrics.snapshot()
    before_state = tables_fingerprint(sim)
    rounds = 5
    for _ in range(rounds):
        sim.run_gc_round()
    delta = sim.metrics.snapshot().diff(before_metrics)

    # Every tick at every site resolved as a skip: no traces, no messages.
    assert delta.get("gc.traces_skipped", 0) == rounds * len(SITES)
    assert delta.get("gc.local_traces", 0) == 0
    assert delta.get("gc.objects_scanned", 0) == 0
    assert delta.get("messages.UpdatePayload", 0) == 0
    assert tables_fingerprint(sim) == before_state
    oracle.check_safety()
    assert not oracle.garbage_set()

    # A forced full trace at every site recomputes everything from scratch;
    # if the skips had left anything stale this would expose it.
    for site_id in SITES:
        sim.site(site_id).run_local_trace(force_full=True)
    sim.settle()
    assert tables_fingerprint(sim) == before_state
    oracle.check_safety()


def test_periodic_full_trace_safety_net_fires():
    gc = GcConfig(full_trace_every_n=3)
    sim, _, cycle = build_system(gc)
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    cycle.make_garbage(sim)
    collect_until_clean(sim, oracle)
    for _ in range(3):
        sim.run_gc_round()

    before = sim.metrics.snapshot()
    for _ in range(6):
        sim.run_gc_round()
    delta = sim.metrics.snapshot().diff(before)
    # With the safety net at 3, quiescent ticks alternate skip/skip/skip/full
    # (per site) -- both counters must be moving.
    assert delta.get("gc.traces_full", 0) >= len(SITES)
    assert delta.get("gc.traces_skipped", 0) >= len(SITES)
    oracle.check_safety()
    assert not oracle.garbage_set()


def test_mutation_after_skips_is_picked_up():
    gc = GcConfig(full_trace_every_n=1000)
    sim, builder, cycle = build_system(gc)
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    cycle.make_garbage(sim)
    collect_until_clean(sim, oracle)
    for _ in range(4):  # several all-skip rounds: the caches are warm
        sim.run_gc_round()

    # Cut the live chain at its head: everything downstream (one object per
    # site, across three sites) is now garbage that only retraces can find.
    sim.site("s0").mutator_remove_ref(builder["root"], builder["chain_s1"])
    oracle.check_safety()
    assert oracle.garbage_set(), "the cut must create acyclic garbage"

    before = sim.metrics.snapshot()
    for _ in range(8):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set(), "stale cache: mutation was never traced"
    delta = sim.metrics.snapshot().diff(before)
    # The heap epoch bump at s0 forced a real (full) retrace there, and the
    # cascade of source-removal updates forced retraces downstream.
    assert delta.get("gc.traces_full", 0) >= 4
    # Collected objects really left the heaps (the ring workload's own
    # root and anchor on s2 stay live, so check the chain objects exactly).
    for site_id in SITES[1:]:
        remaining = set(sim.site(site_id).heap.object_ids())
        assert builder[f"chain_{site_id}"] not in remaining


def test_distance_ratchet_rides_the_fast_path():
    # With back tracing disabled the suspected cycle's distances ratchet up
    # forever: after the classification flip, every tick at the cycle sites
    # is a distance-only change, i.e. exactly the fast path's territory.
    def run(incremental: bool):
        gc = GcConfig(
            incremental_traces=incremental,
            enable_backtracing=False,
            full_trace_every_n=1000,
        )
        sim, _, cycle = build_system(gc)
        for _ in range(2):
            sim.run_gc_round()
        cycle.make_garbage(sim)
        for _ in range(10):
            sim.run_gc_round()
        return sim

    incremental = run(True)
    full = run(False)
    assert incremental.metrics.count("gc.traces_fast_path") > 0
    # The fast path recomputes suspected distances without a heap scan.
    assert incremental.metrics.count("gc.objects_scanned") < full.metrics.count(
        "gc.objects_scanned"
    )
    assert tables_fingerprint(incremental) == tables_fingerprint(full)


@pytest.mark.parametrize("seed", [7, 11])
def test_incremental_and_full_modes_agree_end_to_end(seed):
    # Same workload, same seed, collection enabled: both modes must collect
    # the same garbage and end in byte-identical table state.
    def run(incremental: bool):
        gc = GcConfig(incremental_traces=incremental)
        sim, _, cycle = build_system(gc, seed=seed)
        oracle = Oracle(sim)
        for _ in range(2):
            sim.run_gc_round()
        cycle.make_garbage(sim)
        rounds = collect_until_clean(sim, oracle)
        for _ in range(3):
            sim.run_gc_round()
        oracle.check_safety()
        return sim, rounds

    inc_sim, inc_rounds = run(True)
    full_sim, full_rounds = run(False)
    assert inc_rounds == full_rounds
    assert tables_fingerprint(inc_sim) == tables_fingerprint(full_sim)
    # Incrementality actually engaged and actually saved scanning work.
    skipped = inc_sim.metrics.count("gc.traces_skipped")
    fast = inc_sim.metrics.count("gc.traces_fast_path")
    assert skipped + fast > 0
    assert inc_sim.metrics.count("gc.objects_scanned") < full_sim.metrics.count(
        "gc.objects_scanned"
    )
