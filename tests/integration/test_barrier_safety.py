"""Safety of the transfer barrier and the clean rule under races.

The centrepiece is a counterfactual: with the transfer barrier disabled, a
mutation concurrent with back tracing collects a live object (the oracle
catches the dangling reference); with the barrier enabled the same schedule
is safe.  This demonstrates the barrier is load-bearing, not ceremonial.

Topology (Figure 5 extended so the suspected region closes a cross-site
cycle, which is when stale insets actually bite):

    a@P (root) -> b@Q -> y          (clean spine)
    rootR@R -> e@R -> f@Q           (old path into the cycle)
    f -> z -> x -> g@P -> f         (cross-site cycle Q <-> P)

The mutator traverses e -> f (barrier moment), copies z into y (new clean
path), then e -> f is deleted.  A back trace from Q's outref g sees the stale
inset {f}; without the barrier it confirms the live inref g@P as garbage.
"""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.core.backtrace.messages import TraceOutcome
from repro.errors import OracleError
from repro.mutator import Mutator
from repro.workloads import GraphBuilder

from ..conftest import make_sim

SUSPECT = 9


def build_race_topology(gc: GcConfig, seed: int = 0):
    sim = make_sim(seed=seed, sites=("P", "Q", "R"), gc=gc)
    b = GraphBuilder(sim)
    b.obj("P", "a", root=True)
    b.obj("P", "g")
    b.obj("Q", "b")
    b.obj("Q", "y")
    b.obj("Q", "f")
    b.obj("Q", "z")
    b.obj("Q", "x")
    b.obj("R", "rootR", root=True)
    b.obj("R", "e")
    b.link("a", "b")
    b.link("b", "y")
    b.link("rootR", "e")
    b.link("e", "f")
    b.link("f", "z")
    b.link("z", "x")
    b.link("x", "g")
    b.link("g", "f")
    return sim, b


def prepare_stale_suspicion(sim, b):
    """Make the f/z/x/g cycle suspected with computed (soon stale) insets."""
    sim.site("Q").inrefs.require(b["f"]).sources.update(
        {site: SUSPECT for site in sim.site("Q").inrefs.require(b["f"]).sources}
    )
    sim.site("P").inrefs.require(b["g"]).sources["Q"] = SUSPECT
    sim.site("Q").run_local_trace()
    sim.site("P").run_local_trace()
    sim.settle()
    # Re-force suspicion (the traces re-propagated some distances).
    for site_id, label in (("Q", "f"), ("P", "g")):
        entry = sim.sites[site_id].inrefs.require(b[label])
        for source in entry.sources:
            entry.sources[source] = SUSPECT
    assert sim.site("Q").outrefs.require(b["g"]).inset == {b["f"]}
    assert sim.site("P").outrefs.require(b["f"]).inset == {b["g"]}


def run_mutation_then_trace(sim, b):
    """The racy schedule: traverse, copy, delete, then back trace from g."""
    mutator = Mutator(sim, "m", b["rootR"])
    mutator.traverse(b["e"], check_held=True)
    mutator.traverse(b["f"])  # inter-site hop R -> Q: the barrier moment
    sim.settle()
    mutator.traverse(b["z"])
    mutator.set_variable("zref", b["z"])
    # Re-enter at the root and walk to y, then copy z in (local copy: no
    # barrier fires here, by design -- section 6.1.1).
    mutator._arrived(b["a"])
    mutator.traverse(b["b"])
    sim.settle()
    mutator.traverse(b["y"])
    mutator.store_ref(b["z"], holder=b["y"])
    mutator.clear_variable("zref")
    # Delete the old path and let R's trace propagate the removal.
    sim.site("R").mutator_remove_ref(b["e"], b["f"])
    sim.site("R").run_local_trace()
    sim.settle()
    # The stale-information back trace from Q's outref g.
    sim.site("Q").engine.start_trace(b["g"])
    sim.settle()
    # Local traces act on whatever was flagged.
    sim.site("Q").run_local_trace()
    sim.site("P").run_local_trace()
    sim.settle()
    return mutator


def test_without_barrier_live_object_is_lost():
    """Counterfactual: the unsafe system really is unsafe."""
    gc = GcConfig(enable_transfer_barrier=False)
    sim, b = build_race_topology(gc)
    prepare_stale_suspicion(sim, b)
    run_mutation_then_trace(sim, b)
    # g@P is live (a -> b -> y -> z -> x -> g) but was collected.
    assert not sim.site("P").heap.contains(b["g"])
    with pytest.raises(OracleError):
        Oracle(sim).check_safety()


def test_with_barrier_same_schedule_is_safe():
    gc = GcConfig()
    sim, b = build_race_topology(gc)
    prepare_stale_suspicion(sim, b)
    run_mutation_then_trace(sim, b)
    Oracle(sim).check_safety()
    assert sim.site("P").heap.contains(b["g"])
    assert sim.site("Q").heap.contains(b["z"])
    # The trace (if it ran at all against the cleaned iorefs) returned Live.
    verdicts = [outcome[3] for outcome in sim.trace_outcomes]
    assert TraceOutcome.GARBAGE not in verdicts
    # And the cycle is later collected once it truly becomes garbage.
    oracle = Oracle(sim)
    sim.site("Q").mutator_remove_ref(b["y"], b["z"])
    for _ in range(40):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set()


@pytest.mark.parametrize("seed", range(8))
def test_figure6_race_interleavings_are_safe(seed):
    """Figure 6: vary message timing; the clean rule must keep every
    interleaving of {mutator traversal, back trace branches, local traces}
    safe."""
    gc = GcConfig()
    sim, b = build_race_topology(gc, seed=seed)
    prepare_stale_suspicion(sim, b)
    oracle = Oracle(sim)
    # Fire the back trace *before* the mutation's messages land, so branches
    # and the mutator hop race across the network.
    mutator = Mutator(sim, "m", b["rootR"])
    mutator.traverse(b["e"], check_held=True)
    sim.site("Q").engine.start_trace(b["g"])
    mutator.traverse(b["f"])  # hop in flight while trace is active
    sim.run_for(2.0)
    sim.settle()
    mutator.when_arrived(lambda: None)
    if not mutator.in_transit and mutator.position == b["f"]:
        mutator.traverse(b["z"])
        mutator.set_variable("zref", b["z"])
        mutator._arrived(b["a"])
        mutator.traverse(b["b"])
        sim.settle()
        mutator.traverse(b["y"])
        mutator.store_ref(b["z"], holder=b["y"])
        mutator.clear_variable("zref")
    sim.site("R").mutator_remove_ref(b["e"], b["f"])
    for _ in range(6):
        sim.run_gc_round()
        oracle.check_safety()
    # z and g must be alive iff the copy landed; either way no live object
    # was collected (check_safety above) and the system converges.
    for _ in range(40):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set()
