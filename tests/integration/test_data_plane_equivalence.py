"""Data-plane twins: delta updates + flat kernel must not change outcomes.

The delta update protocol and the flat-graph trace kernel are pure
performance mechanisms.  A seeded workload run with both on must leave the
same survivors, the same ioref tables, and the same back-trace verdicts as
the same workload with full-snapshot updates and the legacy set-based
kernel -- and the optimized configuration must stay byte-identical across
the sequential and sharded-parallel engines, healthy or under a fault plan.
"""

import json

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.metrics import graph_snapshot, names
from repro.net.faults import FaultPlan
from repro.sim.parallel import ParallelSimulation
from repro.workloads import build_ring_cycle

SITES = [f"s{i:02d}" for i in range(8)]
TUNING = dict(
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
)


# -- optimized vs legacy (sequential, manual rounds) -------------------------


def _run_modes(seed, **features):
    gc = GcConfig(**TUNING, **features)
    sim = Simulation.create(SimulationConfig(seed=seed, gc=gc))
    sim.add_sites(SITES, auto_gc=False)
    live = build_ring_cycle(sim, SITES)
    doomed = build_ring_cycle(sim, SITES[:4])
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
        oracle.check_safety()
    doomed.make_garbage(sim)
    for _ in range(30):
        sim.run_gc_round()
        oracle.check_safety()
    assert not oracle.garbage_set()
    snap = graph_snapshot(sim)
    snap.pop("time", None)
    outcomes = sorted((s, str(t), str(v)) for _, s, t, v in sim.trace_outcomes)
    return json.dumps(snap, sort_keys=True), outcomes, sim


@pytest.mark.parametrize("seed", [5, 23])
def test_optimized_vs_legacy_twin_is_identical(seed):
    snap_on, outcomes_on, sim_on = _run_modes(seed)
    snap_off, outcomes_off, sim_off = _run_modes(
        seed, delta_updates=False, flat_kernel=False
    )
    assert snap_on == snap_off
    assert outcomes_on == outcomes_off
    # The optimized run actually exercised its mechanisms...
    assert sim_on.metrics.count(names.UPDATE_DELTAS_SENT) > 0
    assert sim_off.metrics.count(names.UPDATE_DELTAS_SENT) == 0
    # ...and spent less on update traffic while doing it.
    on_units = sim_on.metrics.count("units.UpdatePayload") + sim_on.metrics.count(
        "units.UpdateDeltaPayload"
    )
    off_units = sim_off.metrics.count("units.UpdatePayload")
    assert on_units < off_units


# -- sequential vs parallel (auto GC, cycle-accurate) ------------------------

NETWORK = NetworkConfig(min_latency=5.0, max_latency=20.0, pair_rng_streams=True)
AUTO_GC = GcConfig(
    local_trace_period=100.0,
    local_trace_period_jitter=25.0,
    **TUNING,
)

CHAOS_PLAN = FaultPlan.loss(0.15, start=50.0, end=250.0).merge(
    FaultPlan.duplication(0.2, copies=1, lag=10.0, start=50.0, end=250.0),
    FaultPlan.reorder_burst(0.3, delay=15.0, start=50.0, end=250.0),
).named("data-plane-storm")


def _twin_run(workers, seed, plan=None):
    config = SimulationConfig(
        seed=seed, gc=AUTO_GC, network=NETWORK, parallel_workers=workers
    )
    sim = Simulation.create(config, fault_plan=plan)
    sim.add_sites(SITES, auto_gc=True)
    doomed = build_ring_cycle(sim, SITES[:4])
    sim.run_for(300.0)
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    doomed.make_garbage(sim)
    for _ in range(10):
        sim.run_gc_round()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    outcomes = sorted(
        (t, s, str(tid), str(v)) for t, s, tid, v in sim.trace_outcomes
    )
    if isinstance(sim, ParallelSimulation):
        snap = sim.snapshot()
        sim.close()
    else:
        snap = graph_snapshot(sim)
    snap.pop("time", None)
    return json.dumps(snap, sort_keys=True), outcomes


def test_four_worker_twin_is_byte_identical():
    assert _twin_run(1, seed=29) == _twin_run(4, seed=29)


def test_four_worker_chaos_twin_is_byte_identical():
    assert _twin_run(1, seed=31, plan=CHAOS_PLAN) == _twin_run(
        4, seed=31, plan=CHAOS_PLAN
    )
