"""Tests for the shared collector-comparison driver (repro.harness.comparison)."""

import pytest

from repro.harness.comparison import (
    CYCLE_SITES,
    PROTOCOL_KINDS,
    build_scenario,
    run_with_collector,
)


def test_scenario_shape():
    sim, workload = build_scenario()
    assert len(sim.sites) == 8
    assert {m.site for m in workload.cycle} == set(CYCLE_SITES)
    from repro.analysis import Oracle

    garbage = Oracle(sim).garbage_set()
    assert set(workload.cycle) <= garbage


def test_backtrace_row_locality():
    stats = run_with_collector("backtrace")
    assert stats["collected"]
    assert stats["involved"] == sorted(CYCLE_SITES)
    assert stats["messages"] == 5  # 2E + (N-1) with E=2, N=2


def test_unknown_collector_rejected():
    with pytest.raises(ValueError):
        run_with_collector("nonsense")


def test_protocol_kinds_cover_all_payloads():
    """Each collector's message kinds resolve to real payload classes."""
    import repro.baselines.centralservice as central
    import repro.baselines.globaltrace as glob
    import repro.baselines.grouptrace as group
    import repro.baselines.hughes as hughes
    import repro.baselines.migration as migration
    import repro.baselines.trialdeletion as trial
    import repro.core.backtrace.messages as bt
    import repro.core.termination as term

    modules = [central, glob, group, hughes, migration, trial, bt, term]
    known = set()
    for module in modules:
        for name in dir(module):
            attr = getattr(module, name)
            if isinstance(attr, type):
                known.add(name)
    for kinds in PROTOCOL_KINDS.values():
        for kind in kinds:
            assert kind in known, f"{kind} is not a known payload class"
