"""Integration tests reproducing the paper's figures (F1-F6 in DESIGN.md)."""

from repro import GcConfig
from repro.analysis import Oracle
from repro.core.backtrace.messages import TraceOutcome
from repro.harness.scenarios import (
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure5,
)
from repro.mutator import Mutator


def run_rounds(sim, count):
    for _ in range(count):
        sim.run_gc_round()


class TestFigure1:
    """Reference listing: locality works, inter-site cycles leak."""

    def test_acyclic_garbage_collected_via_updates(self):
        scenario = build_figure1()
        sim = scenario.sim
        run_rounds(sim, 2)
        # Q collected d and reported e; P then dropped inref e and collected e.
        assert not sim.site("Q").heap.contains(scenario["d"])
        assert not sim.site("P").heap.contains(scenario["e"])
        assert scenario["e"] not in sim.site("P").inrefs

    def test_cycle_never_collected_without_backtracing(self):
        gc = GcConfig(enable_backtracing=False)
        scenario = build_figure1(gc=gc)
        sim = scenario.sim
        run_rounds(sim, 25)
        assert sim.site("Q").heap.contains(scenario["f"])
        assert sim.site("R").heap.contains(scenario["g"])
        # ... and their distance estimates have grown without bound
        # (section 3's signature of cyclic garbage).
        assert sim.site("Q").inrefs.require(scenario["f"]).distance > 20

    def test_cycle_collected_with_backtracing(self):
        scenario = build_figure1()
        sim = scenario.sim
        oracle = Oracle(sim)
        for _ in range(30):
            sim.run_gc_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()
        # Live objects all survived.
        for label in ("a", "b", "c"):
            assert sim.site(scenario[label].site).heap.contains(scenario[label])

    def test_locality_site_uninvolved_in_cycle_not_contacted(self):
        """The f,g cycle lives on Q and R: after distances converge, its
        collection involves no back-trace message to P."""
        scenario = build_figure1()
        sim = scenario.sim
        oracle = Oracle(sim)
        # Let acyclic garbage drain and distances grow first.
        run_rounds(sim, 3)
        before = sim.metrics.snapshot()
        for _ in range(30):
            sim.run_gc_round()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()
        # All back-trace traffic stayed within {Q, R}: P neither initiated
        # nor served any back call (P's engine never created a record).
        assert sim.site("P").engine.active_trace_count == 0
        assert sim.metrics.count("backtrace.started") >= 1


class TestFigure2:
    """Insets and the start-from-outref rule."""

    def test_garbage_cycle_fully_collected(self):
        scenario = build_figure2()
        sim = scenario.sim
        oracle = Oracle(sim)
        assert oracle.garbage_set()  # the figure's structure is unrooted
        for _ in range(30):
            sim.run_gc_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()

    def test_inset_of_c_contains_both_inrefs(self):
        scenario = build_figure2()
        sim = scenario.sim
        # Force suspicion and compute back info at Q.
        for entry in sim.site("Q").inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = 9
        sim.site("Q").run_local_trace()
        entry = sim.site("Q").outrefs.require(scenario["c"])
        assert entry.inset == {scenario["a"], scenario["b"]}
        entry_d = sim.site("Q").outrefs.require(scenario["d"])
        assert entry_d.inset == {scenario["b"]}


class TestFigure3:
    """Branching back trace over a live structure returns Live."""

    def test_live_structure_survives_backtracing_forever(self):
        scenario = build_figure3()
        sim = scenario.sim
        oracle = Oracle(sim)
        assert not oracle.garbage_set()
        run_rounds(sim, 30)
        oracle.check_safety()
        for label in ("a", "b", "c", "d"):
            assert sim.site(scenario[label].site).heap.contains(scenario[label])

    def test_live_suspects_stop_generating_traces(self):
        """Section 4.3: visits bump back thresholds, so live suspects go
        quiet once their thresholds exceed their (stable) distances."""
        gc = GcConfig(assumed_cycle_length=1)  # T2 = 5: triggers early
        scenario = build_figure3(gc=gc)
        sim = scenario.sim
        run_rounds(sim, 20)
        started_midway = sim.metrics.count("backtrace.started")
        assert started_midway >= 0
        run_rounds(sim, 15)
        # After enough threshold bumps no new traces start.
        stable = sim.metrics.count("backtrace.started")
        run_rounds(sim, 10)
        assert sim.metrics.count("backtrace.started") == stable

    def test_becomes_garbage_after_cutting_long_path(self):
        scenario = build_figure3()
        sim = scenario.sim
        oracle = Oracle(sim)
        run_rounds(sim, 6)  # distances converge to true values
        sim.site("S").mutator_remove_ref(scenario["hop"], scenario["a"])
        for _ in range(40):
            sim.run_gc_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()


class TestFigure5:
    """Transfer barrier keeps a concurrent mutation safe."""

    def _run_mutation(self, gc: GcConfig):
        scenario = build_figure5(gc=gc)
        sim = scenario.sim
        # Let distances converge: the remote loop c,d,e,f,z,x,g becomes
        # suspected (true distances 2..6 exceed nothing yet -- force more
        # rounds so estimates cross the threshold where they should).
        for _ in range(8):
            sim.run_gc_round()
        mutator = Mutator(sim, "m", scenario["a"])
        # Traverse the old path: a -> b (P->Q), b -> c (Q->R), c -> d,
        # d -> e, e -> f (the barrier moment at Q), f -> z.
        for label in ("b", "c", "d", "e", "f", "z"):
            mutator.traverse(scenario[label])
            sim.settle()
        # Copy z into y: the mutator walks back to y by re-entering at the
        # root (a variable kept z pinned meanwhile).
        mutator.set_variable("zref", scenario["z"])
        mutator._arrived(scenario["a"])  # re-enter via persistent root
        mutator.traverse(scenario["b"])
        sim.settle()
        mutator.traverse(scenario["y"])
        mutator.store_ref(scenario["z"], holder=scenario["y"])
        mutator.clear_variable("zref")
        # Delete the old path edge d -> e at S.
        sim.site("S").mutator_remove_ref(scenario["d"], scenario["e"])
        return scenario, sim, mutator

    def test_with_barrier_z_survives(self):
        scenario, sim, mutator = self._run_mutation(GcConfig())
        oracle = Oracle(sim)
        for _ in range(30):
            sim.run_gc_round()
            oracle.check_safety()
        # z is live through a -> b -> y -> z and was never collected; so are
        # x and g (reachable from z) and d (still reachable via c -> d).
        for label in ("z", "x", "d"):
            assert sim.site(scenario[label].site).heap.contains(scenario[label])
        assert sim.site("P").heap.contains(scenario["g"])
        # The severed tail of the old path (e and f) was collected.
        assert not sim.site("R").heap.contains(scenario["e"])
        assert not sim.site("Q").heap.contains(scenario["f"])

    def test_barrier_cleans_f_and_outset_g(self):
        scenario = build_figure5()
        sim = scenario.sim
        for _ in range(8):
            sim.run_gc_round()
        q = sim.site("Q")
        f_entry = q.inrefs.require(scenario["f"])
        assert f_entry.is_suspected(sim.config.gc.suspicion_threshold)
        g_entry = q.outrefs.require(scenario["g"])
        assert not g_entry.is_clean
        assert g_entry.inset == {scenario["f"]}
        mutator = Mutator(sim, "m", scenario["a"])
        for label in ("b", "c", "d", "e", "f"):
            mutator.traverse(scenario[label])
            sim.settle()
        assert f_entry.is_clean(sim.config.gc.suspicion_threshold)
        assert q.outrefs.require(scenario["g"]).is_clean
