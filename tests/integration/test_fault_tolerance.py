"""Fault tolerance (sections 2 and 4.6; benchmark E8).

Locality under failure: a crashed or partitioned site delays only the
collection of garbage reachable from it; everything else proceeds.  Back
traces touching a dead site time out and conservatively decide Live.
"""

import pytest

from repro import GcConfig, NetworkConfig
from repro.analysis import Oracle
from repro.core.backtrace.messages import TraceOutcome
from repro.workloads import GraphBuilder, build_ring_cycle

from ..conftest import collect_until_clean, make_sim


def fast_timeout_gc(**kwargs):
    return GcConfig(backtrace_timeout=30.0, **kwargs)


def test_cycle_away_from_crashed_site_still_collected():
    sites = ["a", "b", "c", "d"]
    sim = make_sim(sites=sites, gc=fast_timeout_gc())
    # The cycle lives on a and b; c crashes; d holds unrelated live data.
    cycle = build_ring_cycle(sim, ["a", "b"])
    bystander = GraphBuilder(sim)
    root_d = bystander.obj("d", "rootd", root=True)
    for _ in range(2):
        sim.run_gc_round()
    sim.site("c").crash()
    cycle.make_garbage(sim)
    oracle = Oracle(sim)
    for _ in range(60):
        sim.run_gc_round()
        oracle.check_safety()
        remaining = {oid for oid in oracle.garbage_set() if oid.site != "c"}
        if not remaining:
            break
    assert not {oid for oid in oracle.garbage_set() if oid.site != "c"}


def test_cycle_through_crashed_site_waits_then_collects_after_recovery():
    sites = ["a", "b", "c"]
    sim = make_sim(sites=sites, gc=fast_timeout_gc())
    workload = build_ring_cycle(sim, sites)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    sim.site("c").crash()
    oracle = Oracle(sim)
    for _ in range(15):
        sim.run_gc_round()
        oracle.check_safety()
    # Cycle members at the living sites survive (conservative Live verdicts);
    # no unsafe collection happened.
    alive_members = [m for m in workload.cycle if m.site != "c"]
    for member in alive_members:
        assert sim.site(member.site).heap.contains(member)
    # Recovery: collection completes.
    sim.site("c").recover()
    collect_until_clean(sim, oracle, max_rounds=80)


def test_partition_blocks_cross_cycle_only():
    sites = ["a", "b", "c", "d"]
    sim = make_sim(sites=sites, gc=fast_timeout_gc())
    crossing = build_ring_cycle(sim, ["a", "c"])   # spans the partition
    inside = build_ring_cycle(sim, ["a", "b"])     # within one side
    for _ in range(2):
        sim.run_gc_round()
    crossing.make_garbage(sim)
    inside.make_garbage(sim)
    sim.network.partition({"a", "b"}, {"c", "d"})
    oracle = Oracle(sim)
    for _ in range(40):
        sim.run_gc_round()
        oracle.check_safety()
        inside_left = [m for m in inside.cycle if sim.site(m.site).heap.contains(m)]
        if not inside_left:
            break
    assert not [m for m in inside.cycle if sim.site(m.site).heap.contains(m)]
    # The crossing cycle survives the partition (safely uncollected).
    assert any(sim.site(m.site).heap.contains(m) for m in crossing.cycle)
    sim.network.heal_partition()
    collect_until_clean(sim, oracle, max_rounds=80)


def test_lost_backtrace_messages_safe_with_drops():
    """Random message loss: timeouts decide Live; safety holds; collection
    eventually succeeds in a loss-free window."""
    sites = ["a", "b", "c"]
    sim = make_sim(
        sites=sites,
        gc=fast_timeout_gc(),
        network=NetworkConfig(drop_probability=0.3),
    )
    workload = build_ring_cycle(sim, sites)
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    oracle = Oracle(sim)
    for _ in range(40):
        sim.run_gc_round()
        oracle.check_safety()
    # Stop dropping (config object is frozen; replace the network config).
    sim.network._config = NetworkConfig(drop_probability=0.0)
    collect_until_clean(sim, oracle, max_rounds=120)


def test_outcome_timeout_clears_visited_marks():
    """If the initiator's report never arrives, participants assume Live and
    clear their visited marks (section 4.6)."""
    from repro.net.latency import ConstantLatency

    sites = ["a", "b"]
    sim = make_sim(
        sites=sites,
        gc=fast_timeout_gc(enable_backtracing=False),
        latency_model=ConstantLatency(2.0),
    )
    workload = build_ring_cycle(sim, sites)
    workload.make_garbage(sim)
    # Force suspicion directly and compute insets.
    for site in sim.sites.values():
        for entry in site.inrefs.entries():
            for source in entry.sources:
                entry.sources[source] = 9
    for site_id in sites:
        sim.sites[site_id].run_local_trace()
    sim.settle()
    target = next(
        entry.target for entry in sim.site("a").outrefs.suspected_entries()
    )
    trace_id = sim.site("a").engine.start_trace(target)
    assert trace_id is not None
    # Latency is exactly 2.0: b receives the call at t+2 and marks visited;
    # crash the initiator at t+3, before b's reply (t+4) or any outcome
    # report can land.
    sim.run_for(3.0)
    sim.site("a").crash()
    sim.run_for(500.0)
    # b's visited marks for that trace are gone (outcome timeout -> Live).
    for entry in sim.site("b").inrefs.entries():
        assert trace_id not in entry.visited
    for entry in sim.site("b").outrefs.entries():
        assert trace_id not in entry.visited
    assert sim.metrics.count("backtrace.outcome_timeouts") >= 1


def test_safety_under_crash_during_trace():
    """Crashing a participant mid-trace never yields an unsafe verdict."""
    for crash_at in (0.5, 2.0, 5.0):
        sites = ["a", "b", "c"]
        sim = make_sim(sites=sites, gc=fast_timeout_gc(), seed=int(crash_at * 10))
        workload = build_ring_cycle(sim, sites)
        for _ in range(2):
            sim.run_gc_round()
        workload.make_garbage(sim)
        oracle = Oracle(sim)
        for _ in range(60):
            sim.run_gc_round()
            if sim.metrics.count("backtrace.started"):
                break
        sim.run_for(crash_at)
        sim.site("b").crash()
        sim.run_for(1000.0)
        oracle.check_safety()
        sim.site("b").recover()
        collect_until_clean(sim, oracle, max_rounds=80)
