"""Randomized whole-system stress (section 6 end-to-end; benchmark E7).

Everything runs at once: automatic jittered local traces (non-atomic, so back
traces and barriers hit mid-trace windows), multiple random mutators firing
transfer and insert barriers, and the back-trace trigger policy.  The oracle
checks after every quiescent slice that no live object was ever collected;
after the mutators stop, completeness is checked: all remaining garbage --
including whatever inter-site cycles the churn created -- is collected.
"""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.mutator import RandomWorkload, WorkloadConfig
from repro.workloads import build_hypertext_web, build_random_clustered_graph

from ..conftest import make_sim

# T = 1 makes everything beyond one inter-site hop suspected, maximizing
# barrier/clean-rule traffic (this configuration caught a real protocol bug:
# variable-carried references materialized without the insert protocol).
STRESS_GC = GcConfig(
    suspicion_threshold=1,
    assumed_cycle_length=4,
    local_trace_period=60.0,
    local_trace_period_jitter=20.0,
    local_trace_duration=5.0,
    backtrace_timeout=200.0,
)


def drive(sim, oracle, duration, slices=20):
    for _ in range(slices):
        sim.run_for(duration / slices)
        oracle.check_safety()


def drain_to_completion(sim, oracle, max_rounds=120):
    """After mutators stop: converge to zero garbage via manual rounds."""
    for _ in range(max_rounds):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            return
    remaining = oracle.garbage_set()
    raise AssertionError(f"{len(remaining)} garbage objects persist: {sorted(remaining)[:6]}")


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_clustered_graph_churn_safety_and_completeness(seed):
    sites = [f"s{i}" for i in range(4)]
    sim = make_sim(seed=seed, sites=sites, auto_gc=True, gc=STRESS_GC)
    workload = build_random_clustered_graph(
        sim, sites, objects_per_site=25, seed=seed
    )
    oracle = Oracle(sim)
    mutators = [
        RandomWorkload(
            sim,
            f"m{i}",
            workload.roots[i % len(workload.roots)],
            config=WorkloadConfig(mean_interval=3.0),
        )
        for i in range(3)
    ]
    for mutator in mutators:
        mutator.start()
    drive(sim, oracle, duration=3000.0)
    for mutator in mutators:
        mutator.stop()
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    oracle.check_safety()
    assert sum(m.ops_executed for m in mutators) > 200
    drain_to_completion(sim, oracle)


@pytest.mark.parametrize("seed", [3, 4])
def test_hypertext_churn(seed):
    sites = [f"w{i}" for i in range(3)]
    sim = make_sim(seed=seed, sites=sites, auto_gc=True, gc=STRESS_GC)
    web = build_hypertext_web(
        sim, sites, documents_per_site=3, citations_per_document=2,
        back_link_probability=0.7, catalog_fraction=0.8, seed=seed,
    )
    oracle = Oracle(sim)
    mutator = RandomWorkload(
        sim, "reader", web.catalog, config=WorkloadConfig(mean_interval=4.0)
    )
    mutator.start()
    # Periodically unlink catalog entries while the reader churns.
    entries = list(web.catalog_entries)

    def unlink_next():
        if entries:
            web.unlink_from_catalog(sim, entries.pop())
            sim.scheduler.schedule(400.0, unlink_next)

    sim.scheduler.schedule(400.0, unlink_next)
    drive(sim, oracle, duration=4000.0)
    mutator.stop()
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    drain_to_completion(sim, oracle)


def test_stress_with_nonfifo_network_is_still_safe():
    """Without FIFO delivery some protocol assumptions (R1) are void; the
    system may leak conservatively but must never collect a live object."""
    from repro import NetworkConfig

    sites = [f"s{i}" for i in range(3)]
    sim = make_sim(
        seed=9,
        sites=sites,
        auto_gc=True,
        gc=STRESS_GC,
        network=NetworkConfig(fifo_per_pair=False),
    )
    workload = build_random_clustered_graph(sim, sites, objects_per_site=20, seed=9)
    oracle = Oracle(sim)
    mutator = RandomWorkload(
        sim, "m", workload.roots[0], config=WorkloadConfig(mean_interval=3.0)
    )
    mutator.start()
    drive(sim, oracle, duration=2500.0)
    mutator.stop()
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    oracle.check_safety()


def test_stress_with_crashes_and_recoveries():
    sites = [f"s{i}" for i in range(4)]
    sim = make_sim(seed=11, sites=sites, auto_gc=True, gc=STRESS_GC)
    workload = build_random_clustered_graph(sim, sites, objects_per_site=20, seed=11)
    oracle = Oracle(sim)
    mutator = RandomWorkload(
        sim, "m", workload.roots[0], config=WorkloadConfig(mean_interval=3.0)
    )
    mutator.start()
    rng = sim.rng.stream("chaos")

    def chaos():
        victim = rng.choice(sites)
        site = sim.site(victim)
        # Never crash the mutator's current host (a real app would fail over;
        # our scripted one would dangle).
        if victim != mutator.mutator.site_id:
            if site.crashed:
                site.recover()
            else:
                site.crash()
        sim.scheduler.schedule(500.0, chaos)

    sim.scheduler.schedule(500.0, chaos)
    drive(sim, oracle, duration=4000.0)
    mutator.stop()
    for site_id in sites:
        if sim.site(site_id).crashed:
            sim.site(site_id).recover()
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    oracle.check_safety()
