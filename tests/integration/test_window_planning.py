"""Demand-driven window planning: byte-identity and planner behaviour.

Window boundaries decide how often the coordinator synchronizes, never what
executes -- so the demand planner (EOT advertisement + quiescence jumps +
pipelined dispatch) must be byte-identical to the legacy fixed-step planner
and to the sequential engine, on the same seed, at any worker count, with
or without a fault-plan storm.  These tests run the three engines over an
e13-shaped workload (churn burst, quiet tail, explicit GC rounds) and
compare full snapshots, trace outcomes, and merged metrics; they also check
the planner actually earned its keep (fewer windows than fixed) and that
the fixed planner stays pure (no jumps, no pipelining).
"""

import json

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.metrics import names
from repro.net.faults import FaultPlan
from repro.sim.parallel import ParallelSimulation
from repro.workloads import ChurnConfig, SiteChurn, build_ring_cycle

SITES = [f"s{i:02d}" for i in range(12)]
CHURN_UNTIL = 250.0
GC = dict(
    local_trace_period=100.0,
    local_trace_period_jitter=25.0,
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
    full_trace_every_n=6,
    full_update_period=3,
)
NETWORK = dict(min_latency=5.0, max_latency=20.0, pair_rng_streams=True)

STORM = (
    FaultPlan.loss(0.15, start=50.0, end=200.0)
    .merge(
        FaultPlan.duplication(0.2, copies=1, lag=10.0, start=50.0, end=200.0),
        FaultPlan.reorder_burst(0.3, delay=15.0, start=50.0, end=200.0),
    )
    .named("planner-storm")
)


def _run(workers, planner, seed, fault_plan=None):
    """One full scenario; returns (snapshot_json, outcomes, metrics, stats)."""
    config = SimulationConfig(
        seed=seed,
        gc=GcConfig(**GC),
        network=NetworkConfig(**NETWORK),
        parallel_workers=workers,
        window_planner=planner,
    )
    sim = Simulation.create(config, fault_plan=fault_plan)
    sim.add_sites(SITES, auto_gc=True)
    doomed = build_ring_cycle(sim, SITES[:4])
    churn = SiteChurn(sim, SITES, ChurnConfig(mean_interval=4.0))
    churn.start(until=CHURN_UNTIL)

    # Churn burst, then a quiet tail long enough for the collectors to reach
    # their quiet full-trace state (full_trace_every_n=6 at period ~100 means
    # the look-through only pays off ~600 time units after churn stops).
    sim.run_for(2000.0)
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    doomed.make_garbage(sim)
    for _ in range(8):
        sim.run_gc_round()
    sim.settle(quiet_time=30.0, max_rounds=3000)

    if isinstance(sim, ParallelSimulation) and sim.parallel_active:
        snapshot = json.dumps(sim.snapshot(), sort_keys=True)
        outcomes = sim.trace_outcomes
        metrics = dict(sim.merged_metrics()._counters)
        stats = sim.coordination_stats()
        sim.close()
    else:
        from repro.analysis.export import graph_snapshot

        snapshot = json.dumps(graph_snapshot(sim), sort_keys=True)
        outcomes = sim.trace_outcomes
        metrics = {k: v for k, v in sim.metrics._counters.items() if v}
        stats = None
    return snapshot, outcomes, metrics, stats


@pytest.mark.parametrize("workers", [2, 4])
def test_demand_fixed_and_sequential_are_byte_identical(workers):
    seq_snap, seq_outcomes, seq_metrics, _ = _run(1, "demand", seed=17)
    fixed = _run(workers, "fixed", seed=17)
    demand = _run(workers, "demand", seed=17)

    for snap, outcomes, metrics, _ in (fixed, demand):
        assert snap == seq_snap
        assert outcomes == seq_outcomes
        assert metrics == seq_metrics

    fixed_stats, demand_stats = fixed[3], demand[3]
    # The workload has a quiet tail: the demand planner must actually plan
    # fewer rounds, and route exactly the same messages through them.
    assert demand_stats["windows"] < fixed_stats["windows"]
    assert (
        demand_stats["cross_shard_messages"]
        == fixed_stats["cross_shard_messages"]
    )
    assert (
        demand_stats["eot_jumps"] + demand_stats["quiescence_jumps"] > 0
    )
    # A/B purity: the fixed planner never jumps and never pipelines.
    assert fixed_stats["eot_jumps"] == 0
    assert fixed_stats["quiescence_jumps"] == 0
    assert fixed_stats["pipelined_windows"] == 0
    assert fixed_stats["demand_planner"] == 0
    assert demand_stats["demand_planner"] == 1


def test_chaos_storm_twins_across_planners():
    seq_snap, seq_outcomes, _, _ = _run(1, "demand", seed=29, fault_plan=STORM)
    for planner in ("fixed", "demand"):
        snap, outcomes, _, stats = _run(
            4, planner, seed=29, fault_plan=STORM
        )
        assert snap == seq_snap
        assert outcomes == seq_outcomes
        assert stats["windows"] > 0


def test_coordination_metrics_facade_mirrors_stats():
    config = SimulationConfig(
        seed=5,
        gc=GcConfig(**GC),
        network=NetworkConfig(**NETWORK),
        parallel_workers=2,
    )
    sim = Simulation.create(config)
    sim.add_sites(SITES, auto_gc=True)
    sim.run_for(150.0)
    stats = sim.coordination_stats()
    recorder = sim.coordination_metrics()
    merged = sim.merged_metrics()
    sim.close()

    assert recorder.count(names.PAR_WINDOWS) == stats["windows"]
    assert recorder.count(names.PAR_ALIGNS) == stats["aligns"]
    assert recorder.count(names.PAR_EOT_JUMPS) == stats["eot_jumps"]
    assert (
        recorder.count(names.PAR_QUIESCENCE_JUMPS)
        == stats["quiescence_jumps"]
    )
    assert (
        recorder.count(names.PAR_PIPELINED_WINDOWS)
        == stats["pipelined_windows"]
    )
    assert (
        recorder.count(names.PAR_CROSS_SHARD_MESSAGES)
        == stats["cross_shard_messages"]
    )
    # The coordination counters must never leak into the simulation's own
    # metrics -- merged metrics stay comparable to the sequential twin's.
    assert not any(
        name.startswith("parallel.") for name in merged._counters
    )
