"""Cross-cutting integration checks: report-phase participant sets, and the
insert barrier operating through the deferral layer."""

from repro import GcConfig
from repro.analysis import Oracle
from repro.core.backtrace.messages import BackOutcome
from repro.workloads import GraphBuilder, build_ring_cycle

from ..conftest import collect_until_clean, make_sim


def test_outcome_reports_reach_exactly_the_participants():
    """A confirming trace over a 3-site ring reports to the two non-initiator
    participants and nobody else."""
    sites = ["a", "b", "c", "d"]  # d is a bystander
    sim = make_sim(sites=sites)
    workload = build_ring_cycle(sim, ["a", "b", "c"])
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=60)
    outcome_targets = {
        key.split(".")[2]
        for key, value in sim.metrics.counts_with_prefix("involve.BackOutcome.").items()
        if value
    }
    assert "d" not in outcome_targets
    assert outcome_targets <= {"a", "b", "c"}
    assert sim.metrics.count("messages.BackOutcome") == 2


def test_insert_barrier_pin_survives_deferral():
    """With deferral on, the RemoteCopy and its eventual insert are queued;
    the pins must hold across the (longer) in-flight window."""
    gc = GcConfig(defer_messages=True, defer_delay=4.0)
    sim = make_sim(sites=("X", "Y", "Z"), gc=gc)
    b = GraphBuilder(sim)
    z_obj = b.obj("Z", "z")
    x_holder = b.obj("X", "xh", root=True)
    b.link(x_holder, z_obj)
    y_dest = b.obj("Y", "yd", root=True)
    for site_id in ("X", "Y", "Z"):
        sim.sites[site_id].run_local_trace()
    sim.settle()
    sim.site("X").mutator_send_ref("Y", b["z"], y_dest)
    sim.site("X").mutator_remove_ref(x_holder, b["z"])
    # Trace X immediately: the pinned outref must survive even though the
    # copy is still sitting in X's deferral queue.
    sim.site("X").run_local_trace()
    assert b["z"] in sim.site("X").outrefs
    sim.settle()
    Oracle(sim).check_safety()
    assert sim.site("Y").heap.get(y_dest).holds_ref(b["z"])
    assert "Y" in sim.site("Z").inrefs.require(b["z"]).sources
    # Pins all released once the protocol completed.
    assert sim.site("X").outrefs.require(b["z"]).pin_count == 0


def test_deferred_outcome_still_flags_participants():
    gc = GcConfig(defer_messages=True, defer_delay=2.0)
    sim = make_sim(sites=("a", "b"), gc=gc)
    workload = build_ring_cycle(sim, ["a", "b"])
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    oracle = Oracle(sim)
    collect_until_clean(sim, oracle, max_rounds=60)
    # The outcome may have travelled inside a Bundle; it still worked.
    assert sim.metrics.count("backtrace.completed_garbage") >= 1
