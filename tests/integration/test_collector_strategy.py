"""Twin-run byte-identity: the Collector strategy boundary is inert.

The strategy extraction moved the back tracer's wiring out of ``Site`` and
behind the ``GcConfig.collector`` registry; these twins prove the boundary
itself changes nothing.  One e13-shaped scenario (doomed ring + live ring +
churn + explicit GC rounds) runs per backend on the sequential engine, on
2- and 4-worker parallel shards, and under a chaos storm plan, and every
pair must produce byte-identical JSON snapshots and trace outcomes.  The
sequential twin is oracle-audited, so snapshot equality transfers the
safety audit to every other leg.

The termination backend runs the same twins: it was born behind the
boundary, so its determinism under the parallel engine and fault plans is
the direct evidence that the boundary's contract (sequenced payloads,
quiet prediction, barrier hooks) is sufficient for a backend with
in-flight distributed state.
"""

import json

import pytest

from repro.analysis import Oracle
from repro.analysis.export import graph_snapshot as export_snapshot
from repro.api import (
    CollectorSpec,
    FaultPlan,
    GcConfig,
    NetworkConfig,
    ParallelSimulation,
    Simulation,
    SimulationConfig,
    register_collector,
)
from repro.core.collector import _REGISTRY, BackTracingCollector
from repro.workloads import ChurnConfig, SiteChurn, build_ring_cycle

SITES = [f"s{i}" for i in range(8)]

GC = dict(
    local_trace_period=100.0,
    local_trace_period_jitter=25.0,
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
)
NETWORK = dict(min_latency=5.0, max_latency=20.0, pair_rng_streams=True)

#: Pure network mayhem (loss + duplication + reorder): applied inside the
#: Network identically on both engines, unlike crash/partition edges which
#: a driver applies from outside.
STORM = (
    FaultPlan.loss(0.15, start=400.0, end=700.0)
    .merge(
        FaultPlan.duplication(0.10, copies=2, lag=15.0, start=400.0, end=700.0),
        FaultPlan.reorder_burst(0.25, delay=30.0, start=400.0, end=700.0),
    )
    .named("storm")
)


def _snapshot_bytes(sim):
    if isinstance(sim, ParallelSimulation):
        snap = sim.snapshot()
    else:
        snap = export_snapshot(sim)
    return json.dumps(snap, sort_keys=True)


def _run(collector, workers, seed, plan=None):
    config = SimulationConfig(
        seed=seed,
        gc=GcConfig(collector=collector, **GC),
        network=NetworkConfig(**NETWORK),
        parallel_workers=workers,
    )
    sim = Simulation.create(config, fault_plan=plan)
    sim.add_sites(SITES, auto_gc=True)
    doomed = build_ring_cycle(sim, SITES[:6])
    build_ring_cycle(sim, SITES[::2])  # live bait: must survive every twin
    churn = SiteChurn(sim, SITES, ChurnConfig(mean_interval=6.0))
    churn.start(until=200.0)
    oracle = Oracle(sim) if workers == 1 else None

    sim.run_for(800.0)  # churn ends, storm window (if any) opens and heals
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    doomed.make_garbage(sim)
    for _ in range(12):
        sim.run_gc_round()
        if oracle is not None:
            oracle.check_safety()
    sim.settle(quiet_time=30.0, max_rounds=3000)

    if oracle is not None:
        oracle.check_safety()
        if plan is None:
            # Faultless runs must actually collect, or the twins only
            # witness an idle collector.
            for member in doomed.cycle:
                assert sim.site(member.site).heap.maybe_get(member) is None
    result = (_snapshot_bytes(sim), sim.trace_outcomes)
    close = getattr(sim, "close", None)
    if close is not None:
        close()
    return result


_SEQUENTIAL = {}


def _sequential(collector, seed, plan=None):
    key = (collector, seed, plan.name if plan is not None else None)
    if key not in _SEQUENTIAL:
        _SEQUENTIAL[key] = _run(collector, 1, seed, plan)
    return _SEQUENTIAL[key]


@pytest.mark.parametrize("workers", [2, 4])
def test_backtrace_parallel_twin_is_byte_identical(workers):
    assert _run("backtrace", workers, seed=17) == _sequential("backtrace", 17)


@pytest.mark.parametrize("workers", [2, 4])
def test_termination_parallel_twin_is_byte_identical(workers):
    assert _run("termination", workers, seed=17) == _sequential(
        "termination", 17
    )


@pytest.mark.parametrize("collector", ["backtrace", "termination"])
def test_chaos_storm_twin_is_byte_identical(collector):
    assert _run(collector, 4, seed=29, plan=STORM) == _sequential(
        collector, 29, STORM
    )


def test_registry_indirection_is_inert():
    # An alias spec wired straight to the class -- the old hard-coded
    # construction, minus the name lookup -- must be indistinguishable from
    # resolving "backtrace" through the registry.
    register_collector(
        CollectorSpec(name="backtrace-inline", site_factory=BackTracingCollector)
    )
    try:
        assert _run("backtrace-inline", 1, seed=17) == _sequential(
            "backtrace", 17
        )
    finally:
        _REGISTRY.pop("backtrace-inline", None)
