"""Tests for the four baseline cycle collectors (section 7; benchmark E6).

Each baseline must (a) collect a distributed garbage cycle, (b) preserve
safety (oracle-checked), and (c) exhibit the drawback the paper cites.
"""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.baselines import (
    GlobalTraceCollector,
    GroupTraceCollector,
    HughesCollector,
    MigrationCollector,
)
from repro.workloads import GraphBuilder, build_ring_cycle

from ..conftest import make_sim

NO_BT = GcConfig(enable_backtracing=False)


def cycle_sim(sites, seed=0, gc=NO_BT):
    sim = make_sim(seed=seed, sites=sites, gc=gc)
    workload = build_ring_cycle(sim, list(sites))
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    return sim, workload


class TestGlobalTrace:
    def test_collects_cycle(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        oracle = Oracle(sim)
        collector = GlobalTraceCollector(sim, coordinator="a")
        collector.start_round()
        sim.settle()
        oracle.check_safety()
        assert not oracle.garbage_set()
        assert collector.rounds_completed == 1

    def test_safety_preserves_live_objects(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        collector = GlobalTraceCollector(sim, coordinator="a")
        collector.start_round()
        sim.settle()
        assert sim.site("a").heap.contains(workload.root)
        assert sim.site("a").heap.contains(workload.anchor)

    def test_crashed_site_stalls_round_globally(self):
        """The paper's drawback: one dead site blocks all collection."""
        sim, workload = cycle_sim(["a", "b", "c", "d"])
        sim.site("d").crash()  # d does not even contain the cycle
        oracle = Oracle(sim)
        collector = GlobalTraceCollector(sim, coordinator="a")
        collector.start_round()
        sim.run_for(5000.0)
        assert collector.round_in_progress  # never terminates
        assert collector.rounds_completed == 0
        # The cycle is still there.
        assert any(
            sim.site(m.site).heap.contains(m) for m in workload.cycle
        )

    def test_messages_scale_with_all_intersite_refs(self):
        """Global tracing pays for every inter-site reference, garbage or
        not -- unlike back tracing, whose cost scales with the cycle."""
        sim, workload = cycle_sim(["a", "b", "c"])
        b = GraphBuilder(sim)
        # Add a live inter-site chain unrelated to the cycle: marking must
        # walk it hop by hop, paying one batch per hop.
        root2 = b.obj("a", "root2", root=True)
        previous = root2
        for site_id in ("b", "c", "b", "c", "b", "c"):
            extra = b.obj(site_id)
            b.link(previous, extra)
            previous = extra
        before = sim.metrics.snapshot()
        collector = GlobalTraceCollector(sim, coordinator="a")
        collector.start_round()
        sim.settle()
        delta = sim.metrics.snapshot().diff(before)
        # Mark batches cover the live chain too (plus every site pays the
        # start/ack round trip even when it holds no garbage at all).
        assert delta.get("messages.MarkBatch", 0) >= 6
        assert delta.get("messages.StartGlobalMark", 0) == 3


class TestHughes:
    def test_collects_cycle(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        oracle = Oracle(sim)
        collector = HughesCollector(sim, coordinator="a")
        for _ in range(6):
            collector.run_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()

    def test_live_objects_keep_rising_stamps(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        collector = HughesCollector(sim, coordinator="a")
        for _ in range(6):
            collector.run_round()
        assert sim.site("a").heap.contains(workload.root)
        assert sim.site("a").heap.contains(workload.anchor)

    def test_crashed_site_holds_down_threshold(self):
        sim, workload = cycle_sim(["a", "b", "c", "d"])
        collector = HughesCollector(sim, coordinator="a")
        collector.run_round()
        frozen = collector.last_trace_time["d"]
        sim.site("d").crash()
        # The coordinator cannot even complete a poll (d never replies), so
        # the announced threshold stays at its last value.
        old_threshold = collector.threshold
        for _ in range(4):
            collector.run_round()
        assert collector.threshold == old_threshold
        # The cycle (which became garbage after the last threshold rise)
        # survives everywhere -- the system-wide stall the paper describes.
        assert any(sim.site(m.site).heap.contains(m) for m in workload.cycle)


class TestMigration:
    def test_collects_cycle_by_convergence(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        oracle = Oracle(sim)
        collector = MigrationCollector(sim)
        for _ in range(30):
            collector.run_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()
        assert collector.objects_migrated >= 1

    def test_migration_pays_object_sized_messages(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        # Make cycle objects fat so migration cost is visible.
        for member in workload.cycle:
            sim.site(member.site).heap.get(member).payload_size = 50
        collector = MigrationCollector(sim)
        oracle = Oracle(sim)
        for _ in range(30):
            collector.run_round()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()
        assert collector.units_migrated >= 50  # at least one fat object moved

    def test_live_suspects_migrate_wastefully(self):
        """A live-but-suspected object gets migrated even though back
        tracing would have left it in place."""
        sim = make_sim(sites=("a", "b"), gc=NO_BT)
        b = GraphBuilder(sim)
        target = b.obj("b", "t")
        holder = b.obj("a", "h", root=True)
        b.link(holder, target)
        # Stale suspicion: force a big distance.
        sim.site("b").inrefs.require(target).sources["a"] = 99
        collector = MigrationCollector(sim)
        collector.check_migrations("b")
        sim.settle()
        assert collector.objects_migrated == 1
        # The object now lives at a (under a new id) and is still reachable.
        Oracle(sim).check_safety()
        assert len(sim.site("a").heap) == 2  # the rooted holder + the migrant
        assert len(sim.site("b").heap) == 0


class TestGroupTrace:
    def test_collects_cycle(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        oracle = Oracle(sim)
        collector = GroupTraceCollector(sim)
        for _ in range(30):
            collector.run_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()
        assert collector.groups_completed >= 1

    def test_group_can_exceed_cycle_sites(self):
        """A cycle pointing into a live chain drags the chain's sites into
        the group -- the locality failure the paper cites."""
        sim = make_sim(sites=("a", "b", "c", "d"), gc=NO_BT)
        b = GraphBuilder(sim)
        b.obj("a", "root", root=True)
        p, q = b.obj("a", "p"), b.obj("b", "q")
        b.link_cycle([p, q])
        # The cycle points into a live chain spanning c and d.
        chain_c, chain_d = b.obj("c"), b.obj("d")
        b.link(q, chain_c)
        b.link(chain_c, chain_d)
        keeper = b.obj("c", "keeper", root=True)
        b.link(keeper, chain_c)
        for _ in range(2):
            sim.run_gc_round()
        oracle = Oracle(sim)
        collector = GroupTraceCollector(sim)
        for _ in range(30):
            collector.run_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()
        assert max(collector.group_sizes) >= 3  # cycle spans only 2 sites
        assert sim.site("c").heap.contains(chain_c)
        assert sim.site("d").heap.contains(chain_d)

    def test_crashed_member_stalls_group(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        collector = GroupTraceCollector(sim)
        # Grow suspicion first.
        for _ in range(14):
            sim.run_gc_round()
        sim.site("c").crash()
        for site_id in ("a", "b"):
            if collector.maybe_initiate(site_id):
                break
        sim.run_for(5000.0)
        assert collector.group_in_progress or collector.groups_completed == 0
        assert any(sim.site(m.site).heap.contains(m) for m in workload.cycle if m.site != "c")
