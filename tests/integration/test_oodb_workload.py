"""Integration tests for the object-database workload (the Thor scenario)."""

from repro.analysis import Oracle
from repro.workloads import build_object_database

from ..conftest import collect_until_clean, make_sim

SITES = ("customers", "orders", "products")


def build(sim, **kwargs):
    return build_object_database(
        sim, "customers", "orders", "products", seed=1, **kwargs
    )


def test_schema_is_fully_live_initially():
    sim = make_sim(sites=SITES)
    build(sim)
    assert Oracle(sim).garbage_set() == set()


def test_bidirectional_association_is_cross_site_cycle():
    sim = make_sim(sites=SITES)
    db = build(sim)
    oracle = Oracle(sim)
    db.delete_customer(sim, 0)
    cluster = set(db.customer_cluster_objects(0))
    assert cluster <= oracle.garbage_set()
    # ...and it is *cyclic* distributed garbage: local tracing can't touch it.
    assert cluster <= oracle.distributed_cyclic_garbage()


def test_deleted_customer_cluster_collected_by_backtracing():
    sim = make_sim(sites=SITES)
    db = build(sim)
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    db.delete_customer(sim, 1)
    collect_until_clean(sim, oracle, max_rounds=60)
    for oid in db.customer_cluster_objects(1):
        assert not sim.site(oid.site).heap.contains(oid)
    # Other customers untouched.
    for oid in db.customer_cluster_objects(0):
        assert sim.site(oid.site).heap.contains(oid)


def test_discontinued_product_is_acyclic_garbage():
    """A product still referenced by orders survives; once its orders die,
    it goes via plain local tracing -- no back trace required."""
    sim = make_sim(sites=SITES)
    db = build(sim, n_products=4, products_per_order=1)
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    product = db.discontinue_product(sim, 0)
    sim.run_gc_round()
    # May be live (an order references it) -- the oracle decides.
    if product in oracle.garbage_set():
        collect_until_clean(sim, oracle, max_rounds=10)
        assert sim.metrics.count("backtrace.started") == 0


def test_cascading_churn_all_customers_deleted():
    sim = make_sim(sites=SITES)
    db = build(sim, n_customers=4, orders_per_customer=2)
    oracle = Oracle(sim)
    for _ in range(2):
        sim.run_gc_round()
    for index in range(4):
        db.delete_customer(sim, index)
        sim.run_gc_round()
        oracle.check_safety()
    collect_until_clean(sim, oracle, max_rounds=80)
    # Extents and products-in-extent survive.
    assert sim.site("customers").heap.contains(db.customer_extent)
    assert sim.site("orders").heap.contains(db.order_extent)
