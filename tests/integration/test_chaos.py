"""Chaos property tests: oracle-audited GC under seeded fault plans.

These are the acceptance checks behind the section 4.6 claims: any mix of
message loss, duplication, reordering bursts, crash/recover, and partitions
may *delay* collection but never breaks safety, and once the plan heals every
garbage cycle is reclaimed.  The last test runs a sequential/parallel twin
under the same link-fault plan and compares final snapshots byte for byte --
the fault RNG streams are per-ordered-pair, so sharding must not change a
single draw.
"""

import json

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.harness.chaos import (
    FAULT_END,
    FAULT_START,
    run_chaos_case,
    run_chaos_matrix,
    standard_plans,
)
from repro.metrics import graph_snapshot
from repro.net.faults import FaultPlan
from repro.sim.parallel import ParallelSimulation
from repro.workloads import build_ring_cycle


def _failures(results):
    return [
        f"seed={r.seed} plan={r.plan}: {'; '.join(r.violations)}"
        for r in results
        if not r.ok
    ]


def test_link_fault_matrix_is_safe_and_eventually_collects():
    plans = [
        plan
        for plan in standard_plans([f"s{i}" for i in range(4)])
        if not plan.crashes and not plan.partitions
    ]
    results = run_chaos_matrix(range(1, 5), plans, n_sites=4, garbage_rings=2)
    assert not _failures(results), _failures(results)
    # The matrix must actually exercise faults, not vacuously pass.
    assert any(r.dropped > 0 for r in results)
    assert any(r.duplicated > 0 for r in results)
    assert any(r.retransmits > 0 for r in results)


def test_crash_and_partition_plans_recover():
    plans = [
        plan
        for plan in standard_plans([f"s{i}" for i in range(6)])
        if plan.crashes or plan.partitions
    ]
    assert len(plans) == 2
    results = run_chaos_matrix([3, 4], plans)
    assert not _failures(results), _failures(results)


def test_chaos_case_counters_reconcile_per_kind():
    plan = standard_plans([f"s{i}" for i in range(4)])[4]  # the storm
    result = run_chaos_case(9, plan, n_sites=4, garbage_rings=2)
    assert result.counters_ok, result.violations
    assert result.safety_ok and result.collected


def test_unhealing_plan_is_flagged():
    plan = FaultPlan.loss(1.0, start=FAULT_START)  # end=None: never heals
    result = run_chaos_case(1, plan, n_sites=3, garbage_rings=1)
    assert any("never heals" in v for v in result.violations)


# -- sequential/parallel twin under the same fault plan ----------------------

SITES = [f"s{i:02d}" for i in range(8)]
GC = GcConfig(
    local_trace_period=100.0,
    local_trace_period_jitter=25.0,
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
)
NETWORK = NetworkConfig(min_latency=5.0, max_latency=20.0, pair_rng_streams=True)
TWIN_PLAN = FaultPlan.loss(0.15, start=50.0, end=250.0).merge(
    FaultPlan.duplication(0.2, copies=1, lag=10.0, start=50.0, end=250.0),
    FaultPlan.reorder_burst(0.3, delay=15.0, start=50.0, end=250.0),
).named("twin-storm")


def _twin_run(workers, seed):
    config = SimulationConfig(
        seed=seed, gc=GC, network=NETWORK, parallel_workers=workers
    )
    sim = Simulation.create(config, fault_plan=TWIN_PLAN)
    sim.add_sites(SITES, auto_gc=True)
    doomed = build_ring_cycle(sim, SITES[:4])
    sim.run_for(300.0)
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    doomed.make_garbage(sim)
    for _ in range(10):
        sim.run_gc_round()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    if isinstance(sim, ParallelSimulation):
        snap = sim.snapshot()
        sim.close()
    else:
        snap = graph_snapshot(sim)
    snap.pop("time", None)
    return json.dumps(snap, sort_keys=True)


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_twin_is_byte_identical_under_fault_plan(workers):
    assert _twin_run(1, seed=17) == _twin_run(workers, seed=17)
