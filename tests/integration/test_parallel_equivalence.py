"""Sharded parallel engine vs sequential engine: byte-for-byte equivalence.

The headline requirement of :mod:`repro.sim.parallel`: a parallel run must
produce the same final heap contents, inref/outref tables, and collection
survivors as a sequential run of the same seed.  These tests run twin
scenarios -- steady-state churn with auto GC plus explicit collection
rounds, with and without a mid-run site crash -- once on the sequential
engine and once sharded across worker processes, then compare the full
JSON-serialized snapshots for equality.  The sequential twin is additionally
audited by the oracle, so snapshot equality transfers the safety audit to
the parallel run.

Both twins set ``pair_rng_streams`` (the parallel engine forces it; the
sequential twin must opt in for its network draws to line up).
"""

import json

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.analysis import Oracle
from repro.analysis.export import graph_snapshot as export_snapshot
from repro.errors import SimulationError
from repro.sim.parallel import ParallelSimulation
from repro.workloads import ChurnConfig, SiteChurn, build_ring_cycle

SITES = [f"s{i:02d}" for i in range(16)]
CHURN_UNTIL = 400.0

# Low thresholds (as in test_cache_equivalence) so the doomed ring's
# distances cross the back threshold within a few explicit GC rounds.
GC = dict(
    local_trace_period=100.0,
    local_trace_period_jitter=25.0,
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
)
NETWORK = dict(min_latency=5.0, max_latency=20.0, pair_rng_streams=True)


def _build(workers, seed, **overrides):
    config = SimulationConfig(
        seed=seed,
        gc=GcConfig(**GC),
        network=NetworkConfig(**NETWORK),
        parallel_workers=workers,
        **overrides,
    )
    sim = Simulation.create(config)
    sim.add_sites(SITES, auto_gc=True)
    return sim


def _crash(sim, site_id):
    if isinstance(sim, ParallelSimulation):
        sim.crash_site(site_id)
    else:
        sim.site(site_id).crash()


def _recover(sim, site_id):
    if isinstance(sim, ParallelSimulation):
        sim.recover_site(site_id)
    else:
        sim.site(site_id).recover()


def _snapshot_bytes(sim):
    if isinstance(sim, ParallelSimulation):
        snap = sim.snapshot()
    else:
        snap = export_snapshot(sim)
    return json.dumps(snap, sort_keys=True)


def _run_scenario(workers, seed, crash=False, **overrides):
    """The e13-shaped workload: churn + doomed ring + GC rounds.

    Returns (snapshot_json, trace_outcomes, churn_ops).  The sequential twin
    (workers == 1) is oracle-audited along the way.
    """
    sim = _build(workers, seed, **overrides)
    doomed = build_ring_cycle(sim, SITES[:6])
    build_ring_cycle(sim, SITES[::2])  # a live ring that must survive
    churn = SiteChurn(sim, SITES, ChurnConfig(mean_interval=4.0))
    churn.start(until=CHURN_UNTIL)
    oracle = Oracle(sim) if workers == 1 else None

    sim.run_for(200.0)
    if crash:
        # A bystander off the doomed ring: its crash drops messages (and its
        # heap) but must not change what the collector decides elsewhere.
        _crash(sim, "s09")
        sim.run_for(120.0)
        _recover(sim, "s09")
    sim.run_for(CHURN_UNTIL)  # churn deadline passes; queues drain

    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    doomed.make_garbage(sim)
    for _ in range(12):
        sim.run_gc_round()
        if oracle is not None:
            oracle.check_safety()
    sim.settle(quiet_time=30.0, max_rounds=3000)

    if oracle is not None:
        oracle.check_safety()
        # The doomed ring must actually have been collected: the run is only
        # a meaningful equivalence witness if the collector did real work.
        for member in doomed.cycle:
            assert sim.site(member.site).heap.maybe_get(member) is None
        if not crash:
            assert not oracle.garbage_set()
        else:
            # A crashed-and-recovered bystander may retain a few objects
            # conservatively (inref sources lost with the crash); residual
            # garbage elsewhere would be a real bug.
            assert all(oid.site == "s09" for oid in oracle.garbage_set())
    result = (
        _snapshot_bytes(sim),
        sim.trace_outcomes,
        sim.merged_metrics().count("churn.ops")
        if isinstance(sim, ParallelSimulation)
        else sim.metrics.count("churn.ops"),
    )
    if isinstance(sim, ParallelSimulation):
        sim.close()
    return result


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_matches_sequential_byte_for_byte(workers):
    seq_snapshot, seq_outcomes, seq_ops = _run_scenario(1, seed=11)
    par_snapshot, par_outcomes, par_ops = _run_scenario(workers, seed=11)
    assert par_snapshot == seq_snapshot
    assert par_outcomes == seq_outcomes
    assert par_ops == seq_ops


def test_parallel_fault_injection_matches_sequential():
    seq_snapshot, seq_outcomes, seq_ops = _run_scenario(1, seed=23, crash=True)
    par_snapshot, par_outcomes, par_ops = _run_scenario(4, seed=23, crash=True)
    assert par_snapshot == seq_snapshot
    assert par_outcomes == seq_outcomes
    assert par_ops == seq_ops


# -- fallback and guardrail behaviour ----------------------------------------


def test_zero_min_latency_falls_back_to_sequential_with_warning():
    config = SimulationConfig(
        network=NetworkConfig(min_latency=0.0, max_latency=10.0),
        parallel_workers=4,
    )
    with pytest.warns(RuntimeWarning, match="min_latency"):
        sim = Simulation.create(config)
    assert isinstance(sim, ParallelSimulation)
    assert not sim.parallel_active
    sim.add_sites(["P", "Q"], auto_gc=False)
    # Runs fine on the inherited sequential path; nothing ever forks.
    sim.site("P").heap.alloc(persistent_root=True)
    sim.run_for(10.0)
    assert not sim._forked


def test_single_shard_degrades_to_sequential_with_warning():
    config = SimulationConfig(
        network=NetworkConfig(**NETWORK), parallel_workers=4
    )
    sim = Simulation.create(config)
    sim.add_site("only", auto_gc=False)
    with pytest.warns(RuntimeWarning, match="one shard"):
        sim.run_for(5.0)
    assert not sim.parallel_active and not sim._forked


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_workers_one_is_byte_identical_to_sequential_engine():
    # Deliberate direct construction (hence the warning filter): the subject
    # is the ParallelSimulation class itself on the workers=1 path, which
    # Simulation.create would never hand back.
    # parallel_workers=1 must take the existing sequential path unchanged:
    # same classes, same RNG streams (pair_rng_streams stays at its default),
    # hence byte-identical final state against a plain Simulation.
    def run(cls):
        sim = cls(SimulationConfig(seed=5))
        sim.add_sites(SITES[:6], auto_gc=True)
        doomed = build_ring_cycle(sim, SITES[:4])
        sim.run_for(150.0)
        doomed.make_garbage(sim)
        for _ in range(4):
            sim.run_gc_round()
        assert not getattr(sim, "_forked", False)
        return _snapshot_bytes(sim)

    assert run(ParallelSimulation) == run(Simulation)


def test_post_fork_guardrails():
    sim = _build(2, seed=1)
    sim.run_for(20.0)  # forks
    assert sim._forked
    with pytest.raises(SimulationError, match="step"):
        sim.step()
    with pytest.raises(SimulationError, match="add sites"):
        sim.add_site("late")
    proxy = sim.site(SITES[0])
    with pytest.raises(AttributeError, match="snapshot"):
        proxy.heap
    assert proxy.crashed is False
    with pytest.raises(SimulationError, match="max_events"):
        sim.run_for(10.0, max_events=100)
    sim.close()
    with pytest.raises(SimulationError, match="closed"):
        sim.run_for(10.0)
    sim.close()  # idempotent


# -- wire modes and numpy availability ---------------------------------------


def test_legacy_wire_mode_is_byte_identical():
    # packed_wire=False / shared_arena=False is the pickled-list baseline the
    # e19 bench compares against; it must stay a perfect twin too.
    seq = _run_scenario(1, seed=31)
    legacy = _run_scenario(4, seed=31, packed_wire=False, shared_arena=False)
    assert legacy == seq


def test_numpy_free_workers_are_byte_identical(monkeypatch):
    # Simulate the no-numpy install: the vector kernel and CSR mirror are
    # gone, the packed wire and arena degrade gracefully (the arena itself
    # is pure stdlib), and the twins must still match a numpy-enabled
    # sequential run.  Patching before the fork makes every worker inherit
    # the numpy-free view.
    import repro.core.distance as distance_mod
    import repro.store.heap as heap_mod

    seq = _run_scenario(1, seed=41)
    monkeypatch.setattr(distance_mod, "np", None)
    monkeypatch.setattr(heap_mod, "np", None)
    numpy_free = _run_scenario(4, seed=41)
    assert numpy_free == seq


def test_coordination_stats_count_packed_traffic():
    sim = _build(4, seed=3)
    churn = SiteChurn(sim, SITES, ChurnConfig(mean_interval=4.0))
    churn.start(until=250.0)
    sim.run_for(300.0)
    stats = sim.coordination_stats()
    sim.close()
    assert stats["packed_wire"] == 1
    assert stats["windows"] > 0
    assert stats["bytes_sent"] > 0 and stats["bytes_recv"] > 0
    # Every routed message is accounted exactly once: through the rings or
    # (spills and ring-off runs) through the pipe packers.
    assert stats["cross_shard_messages"] == (
        stats["ring_messages"]
        + stats["payloads_packed"]
        + stats["payloads_pickled"]
    )
    # Every hot-path payload kind in this workload has a packed encoding.
    assert stats["payloads_pickled"] == 0


# -- persistent pool lifecycle -----------------------------------------------


def test_worker_crash_mid_run_raises_cleanly():
    import os
    import signal

    sim = _build(4, seed=5)
    sim.run_for(20.0)  # forks
    assert sim._forked
    victim = sim._pool.workers[1].process
    os.kill(victim.pid, signal.SIGKILL)
    with pytest.raises(SimulationError, match="died"):
        # The dead pipe raises EOFError on the next exchange -- a prompt,
        # attributable error instead of a hang.
        sim.run_for(500.0)
    # Every worker was reaped with the failure.
    for worker in sim._pool.workers:
        assert not worker.process.is_alive()
    sim.close()  # idempotent after a crash teardown


def test_close_reaps_children_and_context_manager_closes():
    sim = _build(2, seed=6)
    sim.run_for(20.0)
    processes = [worker.process for worker in sim._pool.workers]
    assert all(process.is_alive() for process in processes)
    sim.close()
    assert all(not process.is_alive() for process in processes)

    with _build(2, seed=6) as sim2:
        sim2.run_for(20.0)
        processes = [worker.process for worker in sim2._pool.workers]
    assert all(not process.is_alive() for process in processes)
    with pytest.raises(SimulationError, match="closed"):
        sim2.run_for(1.0)
