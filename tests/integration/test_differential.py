"""Differential harness: backtrace vs termination must agree, oracle-audited.

The acceptance bar of the second-backend work: across the full seed x
workload matrix both collectors reclaim **exactly** the oracle's garbage
set -- same objects, nothing live, nothing left behind -- differing only in
the round they reclaim it.  These tests run the same matrix the CI smoke
step samples (``python -m repro diff``), in full.
"""

import pytest

from repro.harness.differential import (
    BACKENDS,
    DEFAULT_SEEDS,
    WORKLOADS,
    run_differential_case,
    run_differential_matrix,
)


@pytest.fixture(scope="module")
def matrix():
    return run_differential_matrix()


def test_matrix_shape(matrix):
    assert len(matrix) == len(DEFAULT_SEEDS) * len(WORKLOADS)
    assert len(DEFAULT_SEEDS) >= 8 and len(WORKLOADS) == 3


def test_every_cell_agrees(matrix):
    failures = [
        (
            result.seed,
            result.workload,
            result.violations
            + [v for run in result.runs.values() for v in run.violations],
        )
        for result in matrix
        if not result.agreed
    ]
    assert not failures, failures


def test_matrix_exercises_real_garbage(matrix):
    # Agreement on empty cells is vacuous; the matrix must contain real
    # collection work in every workload flavour.
    for workload in WORKLOADS:
        cells = [r for r in matrix if r.workload == workload]
        assert any(r.expected_garbage > 0 for r in cells), workload
    assert sum(1 for r in matrix if r.expected_garbage > 0) >= len(matrix) // 2


def test_nonempty_cells_fully_reclaim_and_report_latency(matrix):
    for result in matrix:
        if not result.expected_garbage:
            continue
        for name in BACKENDS:
            run = result.runs[name]
            assert run.rounds_to_clear is not None, (result.seed, result.workload)
            assert len(run.reclaimed) == result.expected_garbage
            assert run.residual_garbage == 0
            assert set(run.reclaim_round) == run.reclaimed
        assert result.latency_gap is not None


def test_reclaim_sets_match_across_backends(matrix):
    for result in matrix:
        bt, tm = (result.runs[name] for name in BACKENDS)
        assert bt.reclaimed == tm.reclaimed, (result.seed, result.workload)


def test_unknown_workload_rejected():
    with pytest.raises(ValueError, match="unknown workload"):
        run_differential_case(0, "nonsense")
