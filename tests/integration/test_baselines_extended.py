"""Tests for the central-service and trial-deletion baselines (section 7)."""

import pytest

from repro import GcConfig
from repro.analysis import Oracle
from repro.baselines import CentralServiceCollector, TrialDeletionCollector
from repro.workloads import GraphBuilder, build_ring_cycle

from ..conftest import make_sim

NO_BT = GcConfig(enable_backtracing=False)


def cycle_sim(sites, seed=0):
    sim = make_sim(seed=seed, sites=sites, gc=NO_BT)
    workload = build_ring_cycle(sim, list(sites))
    for _ in range(2):
        sim.run_gc_round()
    workload.make_garbage(sim)
    return sim, workload


class TestCentralService:
    def test_collects_cycle(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        oracle = Oracle(sim)
        collector = CentralServiceCollector(sim, service="a")
        for _ in range(6):
            collector.run_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()
        assert collector.inrefs_flagged >= 3

    def test_live_objects_survive(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        collector = CentralServiceCollector(sim, service="a")
        for _ in range(4):
            collector.run_round()
        assert sim.site("a").heap.contains(workload.root)
        assert sim.site("a").heap.contains(workload.anchor)
        Oracle(sim).check_safety()

    def test_crashed_site_stalls_every_round(self):
        sim, workload = cycle_sim(["a", "b", "c", "d"])
        sim.site("d").crash()  # a bystander, not on the cycle
        oracle = Oracle(sim)
        collector = CentralServiceCollector(sim, service="a")
        for _ in range(4):
            collector.run_round()
        assert collector.rounds_completed == 0
        assert oracle.garbage_set()  # nothing collected anywhere

    def test_crashed_service_stalls_everything(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        collector = CentralServiceCollector(sim, service="a")
        sim.site("a").crash()
        collector.start_round()
        sim.run_for(3000.0)
        assert collector.rounds_completed == 0

    def test_service_is_message_hotspot(self):
        """Summaries scale with the system's ioref population, all of it
        converging on one site."""
        sim, workload = cycle_sim(["a", "b", "c", "d"])
        # Extra live inter-site structure: the service pays for it too.
        b = GraphBuilder(sim)
        root = b.obj("b", root=True)
        previous = root
        for site_id in ("c", "d", "c", "d"):
            nxt = b.obj(site_id)
            b.link(previous, nxt)
            previous = nxt
        before = sim.metrics.snapshot()
        collector = CentralServiceCollector(sim, service="a")
        collector.run_round()
        delta = sim.metrics.snapshot().diff(before)
        # Every site sent a summary; every site got a request.
        assert delta.get("messages.SummaryRequest", 0) == 4
        assert delta.get("messages.SummaryReply", 0) == 4
        # Summary volume (units) reflects all iorefs, live ones included.
        units = sum(
            v for k, v in delta.items() if k == "messages.units"
        )
        assert units > 8

    def test_epoch_guard_skips_stale_flags(self):
        sim, workload = cycle_sim(["a", "b"])
        collector = CentralServiceCollector(sim, service="a")
        collector.start_round()
        # While summaries are in flight, run an extra local trace at b: its
        # epoch moves on, so b must skip the flag command.
        sim.run_for(3.0)
        sim.site("b").run_local_trace()
        sim.settle()
        # Nothing at b was flagged this round (epoch mismatch) -- but the
        # cycle is still collected by later rounds.
        oracle = Oracle(sim)
        for _ in range(6):
            collector.run_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()


class TestTrialDeletion:
    def test_collects_cycle(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        oracle = Oracle(sim)
        collector = TrialDeletionCollector(sim)
        for _ in range(30):
            collector.run_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()
        assert collector.trials_completed >= 1

    def test_live_cycle_survives_trial(self):
        """A trial on a live structure must rescue everything (green)."""
        sim = make_sim(sites=("a", "b"), gc=NO_BT)
        b = GraphBuilder(sim)
        root = b.obj("a", "root", root=True)
        p, q = b.obj("a", "p"), b.obj("b", "q")
        b.link(root, p)
        b.link_cycle([p, q])
        # Force a trial despite liveness (stale suspicion).
        sim.site("a").inrefs.require(p).sources["b"] = 99
        collector = TrialDeletionCollector(sim)
        assert collector.maybe_initiate("a")
        sim.settle()
        assert collector.trials_completed == 1
        assert sim.site("a").heap.contains(p)
        assert sim.site("b").heap.contains(q)
        Oracle(sim).check_safety()

    def test_subgraph_includes_live_structure_no_locality(self):
        """The paper's criticism: the red phase spreads into live objects
        reachable from the cycle, dragging their sites into the subgraph."""
        sim = make_sim(sites=("a", "b", "c", "d"), gc=NO_BT)
        b = GraphBuilder(sim)
        b.obj("a", "root", root=True)
        p, q = b.obj("a", "p"), b.obj("b", "q")
        b.link_cycle([p, q])
        # The cycle points into a live chain over c and d.
        keeper_root = b.obj("c", root=True)
        live_c, live_d = b.obj("c"), b.obj("d")
        b.link(keeper_root, live_c)
        b.link(q, live_c)
        b.link(live_c, live_d)
        for _ in range(2):
            sim.run_gc_round()
        oracle = Oracle(sim)
        collector = TrialDeletionCollector(sim)
        for _ in range(30):
            collector.run_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()
        # The 2-site cycle's trial touched at least 4 objects on 4 sites.
        assert max(collector.subgraph_sizes) >= 4
        assert max(collector.subgraph_site_counts) >= 4
        # And the live chain survived the trial.
        assert sim.site("c").heap.contains(live_c)
        assert sim.site("d").heap.contains(live_d)

    def test_garbage_tail_collected_with_cycle(self):
        sim = make_sim(sites=("a", "b", "c"), gc=NO_BT)
        b = GraphBuilder(sim)
        b.obj("a", "root", root=True)
        p, q = b.obj("a", "p"), b.obj("b", "q")
        b.link_cycle([p, q])
        tail = b.obj("c")
        b.link(q, tail)
        oracle = Oracle(sim)
        collector = TrialDeletionCollector(sim)
        for _ in range(30):
            collector.run_round()
            oracle.check_safety()
            if not oracle.garbage_set():
                break
        assert not oracle.garbage_set()

    def test_crashed_member_stalls_trial(self):
        sim, workload = cycle_sim(["a", "b", "c"])
        collector = TrialDeletionCollector(sim)
        for _ in range(14):
            sim.run_gc_round()
        sim.site("c").crash()
        started = any(
            collector.maybe_initiate(site_id) for site_id in ("a", "b")
        )
        sim.run_for(3000.0)
        if started:
            assert collector.trial_in_progress or collector.trials_completed == 0
        # Survivor members intact; nothing unsafe happened.
        for member in workload.cycle:
            if member.site != "c":
                assert sim.site(member.site).heap.contains(member)
