"""Hot-path overhaul vs frozen legacy engine: byte-for-byte equivalence.

The per-event overhaul (tuple-keyed scheduler heap, per-link send caches,
interned counter cells, type-keyed site dispatch) is a pure mechanical
rewrite: RNG draw order, event firing order, counter names/values *and
insertion order*, snapshots, and trace outcomes must all be unchanged.
These tests run twin scenarios -- once on the frozen pre-overhaul layers
(:mod:`repro.sim.legacy_hot_path`), once on the current engine -- and
compare everything observable:

- the clean steady-state scenario (churn + doomed ring + explicit GC
  rounds, deferred-send bundles enabled so the ``Bundle`` dispatch path
  runs);
- the chaos scenario: a loss+duplication+reorder fault plan plus mid-run
  crash/recover and partition/heal edges, which walks every link-cache
  invalidation rule (crash, recover, partition, heal) against the legacy
  recompute-per-send semantics;
- a 2-worker parallel twin, where shard workers inherit whichever engine
  classes the coordinator constructed before the fork.

Counter dicts are compared as ordered item lists: interned cells must not
even reorder first-touch counter creation.
"""

import json
from contextlib import nullcontext

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.analysis.export import graph_snapshot
from repro.net.faults import FaultPlan
from repro.sim.legacy_hot_path import use_legacy_hot_path
from repro.sim.parallel import ParallelSimulation
from repro.workloads import ChurnConfig, SiteChurn, build_ring_cycle

SITES = [f"s{i:02d}" for i in range(8)]
GC = dict(
    local_trace_period=100.0,
    local_trace_period_jitter=25.0,
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
)
NETWORK = dict(min_latency=5.0, max_latency=20.0, pair_rng_streams=True)
CHAOS_PLAN = FaultPlan.loss(0.15, start=40.0, end=220.0).merge(
    FaultPlan.duplication(0.2, copies=1, lag=10.0, start=40.0, end=220.0),
    FaultPlan.reorder_burst(0.3, delay=15.0, start=40.0, end=220.0),
).named("hot-path-storm")


def _run(legacy, workers=1, chaos=False, seed=13, defer=False):
    """One twin leg; returns every observable the twins must share."""
    engine = use_legacy_hot_path() if legacy else nullcontext()
    with engine:
        config = SimulationConfig(
            seed=seed,
            gc=GcConfig(defer_messages=defer, **GC),
            network=NetworkConfig(**NETWORK),
            parallel_workers=workers,
        )
        sim = Simulation.create(config, fault_plan=CHAOS_PLAN if chaos else None)
        sim.add_sites(SITES, auto_gc=True)
        doomed = build_ring_cycle(sim, SITES[:4])
        churn = SiteChurn(sim, SITES, ChurnConfig(mean_interval=5.0))
        churn.start(until=200.0)
        parallel = isinstance(sim, ParallelSimulation)

        sim.run_for(100.0)
        if chaos:
            # Crash/recover (and, sequentially, partition/heal) mid-run: every
            # link-cache invalidation edge fires while traffic is in flight.
            if parallel:
                sim.crash_site("s05")
            else:
                sim.site("s05").crash()
            sim.run_for(60.0)
            if parallel:
                sim.recover_site("s05")
            else:
                sim.site("s05").recover()
            if not parallel:
                sim.network.partition(set(SITES[:4]), set(SITES[4:]))
                sim.run_for(40.0)
                sim.network.heal_partition()
        sim.run_for(250.0)

        sim.quiesce_auto_gc()
        sim.settle(quiet_time=30.0, max_rounds=3000)
        doomed.make_garbage(sim)
        for _ in range(8):
            sim.run_gc_round()
        sim.settle(quiet_time=30.0, max_rounds=3000)

        if parallel:
            snapshot = sim.snapshot()
            counters = sim.merged_metrics().snapshot().counters
            events_fired = None  # per-worker counts live off-process
        else:
            snapshot = graph_snapshot(sim)
            counters = sim.metrics.snapshot().counters
            events_fired = sim.scheduler.events_fired
        snapshot.pop("time", None)
        outcomes = sim.trace_outcomes
        if parallel:
            sim.close()
    return {
        "snapshot": json.dumps(snapshot, sort_keys=True),
        # Ordered items: values AND first-touch creation order must match.
        "counters": list(counters.items()),
        "outcomes": outcomes,
        "events_fired": events_fired,
    }


def _assert_twin(new, old):
    assert new["snapshot"] == old["snapshot"]
    assert new["counters"] == old["counters"]
    assert new["outcomes"] == old["outcomes"]
    assert new["events_fired"] == old["events_fired"]


def test_clean_run_is_byte_identical_to_legacy_engine():
    _assert_twin(_run(legacy=False, defer=True), _run(legacy=True, defer=True))


def test_chaos_run_is_byte_identical_to_legacy_engine():
    # The storm leg: fault-plan rolls, duplicate suppression, crash/partition
    # drops at send and in flight -- with link caches invalidated mid-run.
    _assert_twin(
        _run(legacy=False, chaos=True, seed=29),
        _run(legacy=True, chaos=True, seed=29),
    )


def test_parallel_run_is_byte_identical_to_legacy_engine():
    _assert_twin(
        _run(legacy=False, workers=2, seed=17),
        _run(legacy=True, workers=2, seed=17),
    )


def test_legacy_patching_is_scoped_and_restored():
    from repro.sim import simulation
    from repro.sim.legacy_hot_path import (
        LegacyNetwork,
        LegacyScheduler,
        LegacySite,
    )

    saved = (simulation.Scheduler, simulation.Network, simulation.Site)
    with use_legacy_hot_path():
        assert simulation.Scheduler is LegacyScheduler
        assert simulation.Network is LegacyNetwork
        assert simulation.Site is LegacySite
        sim = Simulation.create(SimulationConfig(seed=1))
        sim.add_sites(["P", "Q"], auto_gc=False)
        assert isinstance(sim.scheduler, LegacyScheduler)
        assert isinstance(sim.network, LegacyNetwork)
        assert isinstance(sim.site("P"), LegacySite)
    assert (simulation.Scheduler, simulation.Network, simulation.Site) == saved
    # Instances constructed inside the block keep their legacy classes and
    # keep working after restoration.
    sim.site("P").heap.alloc(persistent_root=True)
    sim.run_for(10.0)
