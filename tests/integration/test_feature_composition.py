"""Feature-composition stress: every optional mechanism enabled at once.

Adaptive threshold tuning + message deferral/piggybacking + non-atomic local
traces + aggressive suspicion + random mutators + seeded cycles, with the
oracle auditing safety continuously and completeness checked after quiesce.
Optional features must compose, not merely work in isolation.
"""

import pytest

from repro import GcConfig, NetworkConfig
from repro.analysis import Oracle, TraceLog
from repro.mutator import RandomWorkload, WorkloadConfig
from repro.workloads import build_random_clustered_graph, build_ring_cycle

from ..conftest import make_sim

ALL_FEATURES_GC = GcConfig(
    suspicion_threshold=1,
    assumed_cycle_length=4,
    local_trace_period=60.0,
    local_trace_period_jitter=20.0,
    local_trace_duration=5.0,
    backtrace_timeout=200.0,
    enable_threshold_tuning=True,
    defer_messages=True,
    defer_delay=2.0,
)


def run_composed(seed, network=None, duration=2500.0):
    sites = [f"s{i}" for i in range(4)]
    sim = make_sim(seed=seed, sites=sites, auto_gc=True, gc=ALL_FEATURES_GC,
                   network=network)
    log = TraceLog(sim)
    graph = build_random_clustered_graph(sim, sites, objects_per_site=20, seed=seed)
    rings = [build_ring_cycle(sim, sites[k:] + sites[:k]) for k in range(2)]
    oracle = Oracle(sim)
    mutators = [
        RandomWorkload(sim, f"m{i}", graph.roots[i % len(graph.roots)],
                       config=WorkloadConfig(mean_interval=3.0))
        for i in range(2)
    ]
    for mutator in mutators:
        mutator.start()
    for step in range(10):
        sim.run_for(duration / 10)
        if step == 4:
            for ring in rings:
                ring.make_garbage(sim)
        oracle.check_safety()
    for mutator in mutators:
        mutator.stop()
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=5000)
    oracle.check_safety()
    for _ in range(120):
        sim.run_gc_round()
        oracle.check_safety()
        if not oracle.garbage_set():
            break
    assert not oracle.garbage_set()
    return sim, log


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_all_features_compose_safely(seed):
    sim, log = run_composed(seed)
    # Evidence each feature actually ran.
    assert sim.metrics.count("deferral.queued") > 0        # deferral active
    assert sim.metrics.count("backtrace.completed_garbage") >= 2
    assert log.of_kind("local-trace")                      # non-atomic traces
    # Tuning may or may not have adjusted (depends on Live verdicts), but
    # the machinery is attached at every site.
    assert all(site.tuner is not None for site in sim.sites.values())


def test_all_features_with_nonfifo_network_still_safe():
    sim, _ = run_composed(seed=5, network=NetworkConfig(fifo_per_pair=False))
    assert sim.metrics.count("backtrace.completed_garbage") >= 1


def test_all_features_with_lossy_network_still_safe():
    sim, _ = run_composed(
        seed=6, network=NetworkConfig(drop_probability=0.05)
    )
    # With loss, pins may leak and timeouts fire -- but safety held (the
    # oracle ran inside) and cycles still died once messages got through.
    assert sim.metrics.count("backtrace.completed_garbage") >= 1
