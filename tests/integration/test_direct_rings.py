"""Direct shard-to-shard rings: byte-identity and data-path accounting.

The coordinator-free data path (``SimulationConfig.direct_rings``) moves
cross-shard records out of the coordinator pipes into per-ordered-pair SPSC
rings in shared memory.  Which path a record takes must never change what
executes: a rings-on run must be byte-identical to a rings-off run and to
the sequential engine -- same snapshots, same trace outcomes, same merged
metrics -- at any worker count and under a fault-plan storm.  The
accounting must also be airtight: every routed message is counted exactly
once (ring or pipe), rings-on runs actually move the payload traffic off
the pipes, and the delta control plane changes nothing observable.
"""

import json

import pytest

from repro import GcConfig, NetworkConfig, Simulation, SimulationConfig
from repro.net.faults import FaultPlan
from repro.sim.parallel import ParallelSimulation
from repro.workloads import ChurnConfig, SiteChurn, build_ring_cycle

SITES = [f"s{i:02d}" for i in range(12)]
CHURN_UNTIL = 250.0
GC = dict(
    local_trace_period=100.0,
    local_trace_period_jitter=25.0,
    suspicion_threshold=2,
    assumed_cycle_length=2,
    back_threshold_increment=1,
    full_trace_every_n=6,
    full_update_period=3,
)
NETWORK = dict(min_latency=5.0, max_latency=20.0, pair_rng_streams=True)

STORM = (
    FaultPlan.loss(0.15, start=50.0, end=200.0)
    .merge(
        FaultPlan.duplication(0.2, copies=1, lag=10.0, start=50.0, end=200.0),
        FaultPlan.reorder_burst(0.3, delay=15.0, start=50.0, end=200.0),
    )
    .named("ring-storm")
)


def _run(workers, direct_rings, seed, fault_plan=None, delta_exports=True,
         ring_bytes=65536):
    """One full scenario; returns (snapshot_json, outcomes, metrics, stats)."""
    config = SimulationConfig(
        seed=seed,
        gc=GcConfig(**GC),
        network=NetworkConfig(**NETWORK),
        parallel_workers=workers,
        direct_rings=direct_rings,
        delta_exports=delta_exports,
        ring_bytes_per_pair=ring_bytes,
    )
    sim = Simulation.create(config, fault_plan=fault_plan)
    sim.add_sites(SITES, auto_gc=True)
    doomed = build_ring_cycle(sim, SITES[:4])
    churn = SiteChurn(sim, SITES, ChurnConfig(mean_interval=4.0))
    churn.start(until=CHURN_UNTIL)

    sim.run_for(1200.0)
    sim.quiesce_auto_gc()
    sim.settle(quiet_time=30.0, max_rounds=3000)
    doomed.make_garbage(sim)
    for _ in range(6):
        sim.run_gc_round()
    sim.settle(quiet_time=30.0, max_rounds=3000)

    if isinstance(sim, ParallelSimulation) and sim.parallel_active:
        snapshot = json.dumps(sim.snapshot(), sort_keys=True)
        outcomes = sim.trace_outcomes
        metrics = dict(sim.merged_metrics()._counters)
        stats = sim.coordination_stats()
        sim.close()
    else:
        from repro.analysis.export import graph_snapshot

        snapshot = json.dumps(graph_snapshot(sim), sort_keys=True)
        outcomes = sim.trace_outcomes
        metrics = {k: v for k, v in sim.metrics._counters.items() if v}
        stats = None
    return snapshot, outcomes, metrics, stats


@pytest.mark.parametrize("workers", [2, 4])
def test_ring_and_pipe_twins_are_byte_identical(workers):
    seq_snap, seq_outcomes, seq_metrics, _ = _run(1, None, seed=19)
    piped = _run(workers, False, seed=19)
    ringed = _run(workers, True, seed=19)

    for snap, outcomes, metrics, _ in (piped, ringed):
        assert snap == seq_snap
        assert outcomes == seq_outcomes
        assert metrics == seq_metrics

    pipe_stats, ring_stats = piped[3], ringed[3]
    assert pipe_stats["direct_rings"] == 0
    assert ring_stats["direct_rings"] == 1
    # Exactly the same messages were routed, whichever path carried them.
    assert (
        ring_stats["cross_shard_messages"]
        == pipe_stats["cross_shard_messages"]
    )
    # Conservation: every routed message took exactly one path.
    assert ring_stats["cross_shard_messages"] == (
        ring_stats["ring_messages"]
        + ring_stats["payloads_packed"]
        + ring_stats["payloads_pickled"]
    )
    # The rings actually carried the traffic, and the payload bytes moved
    # off the pipes with it: what remains on the pipe per window is the
    # command/reply framing, not record payloads.
    assert ring_stats["ring_messages"] > 0
    assert ring_stats["ring_bytes"] > 0
    assert ring_stats["payload_bytes"] < pipe_stats["payload_bytes"]
    # The rings-off baseline stays pure.
    assert pipe_stats["ring_messages"] == 0
    assert pipe_stats["ring_bytes"] == 0
    assert pipe_stats["ring_spills"] == 0


def test_chaos_storm_twins_across_data_paths():
    seq_snap, seq_outcomes, _, _ = _run(1, None, seed=23, fault_plan=STORM)
    for direct_rings in (False, True):
        snap, outcomes, _, stats = _run(
            4, direct_rings, seed=23, fault_plan=STORM
        )
        assert snap == seq_snap
        assert outcomes == seq_outcomes
        assert stats["windows"] > 0


def _run_dense(workers, direct_rings, ring_bytes):
    """A deliberately chatty workload: frequent full updates over many
    interlocked cycles, dense churn -- enough traffic per window to overflow
    a minimum-size ring."""
    config = SimulationConfig(
        seed=37,
        gc=GcConfig(
            local_trace_period=20.0,
            local_trace_period_jitter=5.0,
            suspicion_threshold=2,
            assumed_cycle_length=2,
            back_threshold_increment=1,
            full_trace_every_n=2,
            full_update_period=1,
        ),
        network=NetworkConfig(**NETWORK),
        parallel_workers=workers,
        direct_rings=direct_rings,
        ring_bytes_per_pair=ring_bytes,
    )
    sim = Simulation.create(config)
    sim.add_sites(SITES, auto_gc=True)
    for offset in range(6):
        build_ring_cycle(sim, SITES[offset:] + SITES[:offset])
    churn = SiteChurn(sim, SITES, ChurnConfig(mean_interval=0.5))
    churn.start(until=300.0)
    sim.run_for(400.0)
    if isinstance(sim, ParallelSimulation) and sim.parallel_active:
        snapshot = json.dumps(sim.snapshot(), sort_keys=True)
        stats = sim.coordination_stats()
        sim.close()
    else:
        from repro.analysis.export import graph_snapshot

        snapshot = json.dumps(graph_snapshot(sim), sort_keys=True)
        stats = None
    return snapshot, stats


def test_tiny_rings_spill_to_the_pipe_and_stay_identical():
    # A ring too small for a window's worth of records forces the overflow
    # path: records spill to the coordinator-routed pipe, and the run must
    # still be byte-identical -- the two paths are interchangeable per
    # message.
    seq_snap, _ = _run_dense(1, None, 1024)
    snap, stats = _run_dense(2, True, 1024)
    assert snap == seq_snap
    assert stats["ring_spills"] > 0
    assert stats["ring_messages"] > 0
    assert stats["cross_shard_messages"] == (
        stats["ring_messages"]
        + stats["payloads_packed"]
        + stats["payloads_pickled"]
    )


def test_full_exports_twin_the_delta_control_plane():
    # delta_exports changes how snapshots/metrics travel, never what they
    # contain.
    delta = _run(2, True, seed=43, delta_exports=True)
    full = _run(2, True, seed=43, delta_exports=False)
    assert delta[0] == full[0]
    assert delta[1] == full[1]
    assert delta[2] == full[2]
    assert delta[3]["delta_exports"] == 1
    assert full[3]["delta_exports"] == 0


def test_snapshot_and_metrics_broadcasts_are_cached_between_advances():
    # Delta control plane: polling the same quiescent state again must not
    # touch the workers at all -- the second snapshot()/merged_metrics()
    # pair is served from the version-gated cache.  Advancing the clock
    # bumps the state version and forces exactly one fresh broadcast each.
    config = SimulationConfig(
        seed=7,
        gc=GcConfig(**GC),
        network=NetworkConfig(**NETWORK),
        parallel_workers=2,
    )
    sim = Simulation.create(config)
    sim.add_sites(SITES, auto_gc=True)
    build_ring_cycle(sim, SITES[:4])
    sim.run_for(100.0)
    assert isinstance(sim, ParallelSimulation) and sim.parallel_active
    try:
        first_snap = sim.snapshot()
        first_metrics = dict(sim.merged_metrics()._counters)
        before = sim.coordination_stats()["broadcasts"]
        again_snap = sim.snapshot()
        again_metrics = dict(sim.merged_metrics()._counters)
        unchanged = sim.coordination_stats()["broadcasts"]
        # Identical answers, zero new broadcasts.
        assert again_snap == first_snap
        assert again_metrics == first_metrics
        assert unchanged == before
        # An advance invalidates both caches: one broadcast per export kind.
        sim.run_for(50.0)
        baseline = sim.coordination_stats()["broadcasts"]
        sim.snapshot()
        sim.merged_metrics()
        after_refresh = sim.coordination_stats()["broadcasts"]
        assert after_refresh == baseline + 2
        sim.snapshot()
        sim.merged_metrics()
        assert sim.coordination_stats()["broadcasts"] == after_refresh
    finally:
        sim.close()
